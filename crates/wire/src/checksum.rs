//! The Internet checksum (RFC 1071) and the pseudo-header variants used by
//! UDP, TCP and ICMP.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Incremental ones-complement sum accumulator.
///
/// The accumulator can be fed data in arbitrary chunks as long as each chunk
/// other than the last has even length; `finish` folds the carries and
/// complements the result.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a chunk of bytes. An odd trailing byte is padded with zero, so
    /// only the final chunk may have odd length.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feed a single big-endian u16.
    pub fn add_u16(&mut self, value: u16) {
        self.sum += u32::from(value);
    }

    /// Feed a u32 as two big-endian u16 words.
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16(value as u16);
    }

    /// Fold carries and return the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the RFC 1071 checksum of a buffer in one shot.
pub fn of(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: a correct
/// buffer sums (including the stored checksum) to zero.
pub fn verify(data: &[u8]) -> bool {
    of(data) == 0
}

/// Start a checksum with the IPv4 pseudo-header used by UDP/TCP.
pub fn pseudo_v4(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(u16::from(protocol));
    c.add_u16(length);
    c
}

/// Start a checksum with the IPv6 pseudo-header used by UDP/TCP.
pub fn pseudo_v6(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, length: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(length);
    c.add_u16(u16::from(next_header));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // Sum is 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
        assert_eq!(c.finish(), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(of(&[0xab]), !0xab00);
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let cks = of(&data);
        data[10] = (cks >> 8) as u8;
        data[11] = cks as u8;
        assert!(verify(&data));
        data[3] ^= 0xff;
        assert!(!verify(&data));
    }

    #[test]
    fn chunked_equals_oneshot() {
        let data: Vec<u8> = (0..128u8).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..64]);
        c.add_bytes(&data[64..]);
        assert_eq!(c.finish(), of(&data));
    }

    #[test]
    fn all_zero_checksums_to_ffff() {
        assert_eq!(of(&[0u8; 32]), 0xffff);
    }
}
