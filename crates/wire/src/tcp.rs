//! TCP segments (RFC 793), with MSS and window-scale options.

use crate::udp::PseudoHeader;
use crate::{be16, be32, Error, Result};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// The control flags relevant to flow tracking, as a compact enum for the
/// common shapes plus access to the raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TcpControl {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub psh: bool,
    pub urg: bool,
}

impl TcpControl {
    /// A bare SYN, as sent by a connecting client.
    pub const SYN: TcpControl = TcpControl {
        syn: true, ack: false, fin: false, rst: false, psh: false, urg: false,
    };
    /// SYN+ACK, as sent by an accepting server.
    pub const SYN_ACK: TcpControl = TcpControl {
        syn: true, ack: true, fin: false, rst: false, psh: false, urg: false,
    };
    /// A plain ACK.
    pub const ACK: TcpControl = TcpControl {
        syn: false, ack: true, fin: false, rst: false, psh: false, urg: false,
    };
    /// FIN+ACK closing a connection.
    pub const FIN_ACK: TcpControl = TcpControl {
        syn: false, ack: true, fin: true, rst: false, psh: false, urg: false,
    };
    /// A reset.
    pub const RST: TcpControl = TcpControl {
        syn: false, ack: false, fin: false, rst: true, psh: false, urg: false,
    };

    fn from_bits(bits: u8) -> Self {
        TcpControl {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
            urg: bits & 0x20 != 0,
        }
    }

    fn to_bits(self) -> u8 {
        u8::from(self.fin)
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
            | (u8::from(self.urg) << 5)
    }
}

/// A parsed/parseable TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub control: TcpControl,
    pub window: u16,
    /// MSS option, only meaningful on SYN segments.
    pub mss: Option<u16>,
    /// Window-scale option, only meaningful on SYN segments.
    pub window_scale: Option<u8>,
}

impl TcpRepr {
    /// Header length including options, padded to a multiple of four.
    pub fn header_len(&self) -> usize {
        let mut opts = 0usize;
        if self.mss.is_some() {
            opts += 4;
        }
        if self.window_scale.is_some() {
            opts += 3;
        }
        TCP_HEADER_LEN + opts.div_ceil(4) * 4
    }

    /// Parse a segment, verifying the checksum against the pseudo-header.
    /// Returns the header and payload slice.
    pub fn parse<'a>(data: &'a [u8], pseudo: &PseudoHeader) -> Result<(TcpRepr, &'a [u8])> {
        if data.len() < TCP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let data_offset = usize::from(data[12] >> 4) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > data.len() {
            return Err(Error::BadLength);
        }
        let mut c = match pseudo {
            PseudoHeader::V4 { src, dst } => {
                crate::checksum::pseudo_v4(*src, *dst, 6, data.len() as u16)
            }
            PseudoHeader::V6 { src, dst } => {
                crate::checksum::pseudo_v6(*src, *dst, 6, data.len() as u32)
            }
        };
        c.add_bytes(data);
        if c.finish() != 0 {
            return Err(Error::BadChecksum);
        }
        let mut mss = None;
        let mut window_scale = None;
        let mut opt = &data[TCP_HEADER_LEN..data_offset];
        while !opt.is_empty() {
            match opt[0] {
                0 => break,                 // end of options
                1 => opt = &opt[1..],       // nop
                2 => {
                    if opt.len() < 4 || opt[1] != 4 {
                        return Err(Error::BadLength);
                    }
                    mss = Some(be16(opt, 2));
                    opt = &opt[4..];
                }
                3 => {
                    if opt.len() < 3 || opt[1] != 3 {
                        return Err(Error::BadLength);
                    }
                    window_scale = Some(opt[2]);
                    opt = &opt[3..];
                }
                _ => {
                    // Unknown option: skip by its declared length.
                    if opt.len() < 2 {
                        return Err(Error::BadLength);
                    }
                    let len = usize::from(opt[1]);
                    if len < 2 || len > opt.len() {
                        return Err(Error::BadLength);
                    }
                    opt = &opt[len..];
                }
            }
        }
        let repr = TcpRepr {
            src_port: be16(data, 0),
            dst_port: be16(data, 2),
            seq: be32(data, 4),
            ack: be32(data, 8),
            control: TcpControl::from_bits(data[13]),
            window: be16(data, 14),
            mss,
            window_scale,
        };
        Ok((repr, &data[data_offset..]))
    }

    /// Append header, options and payload to `buf` with a correct checksum.
    pub fn emit(&self, buf: &mut Vec<u8>, payload: &[u8], pseudo: &PseudoHeader) {
        let start = buf.len();
        let header_len = self.header_len();
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(((header_len / 4) as u8) << 4);
        buf.push(self.control.to_bits());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            buf.push(2);
            buf.push(4);
            buf.extend_from_slice(&mss.to_be_bytes());
        }
        if let Some(ws) = self.window_scale {
            buf.push(3);
            buf.push(3);
            buf.push(ws);
        }
        while (buf.len() - start) < header_len {
            buf.push(0); // end-of-options padding
        }
        buf.extend_from_slice(payload);
        let seg_len = header_len + payload.len();
        let mut c = match pseudo {
            PseudoHeader::V4 { src, dst } => {
                crate::checksum::pseudo_v4(*src, *dst, 6, seg_len as u16)
            }
            PseudoHeader::V6 { src, dst } => {
                crate::checksum::pseudo_v6(*src, *dst, 6, seg_len as u32)
            }
        };
        c.add_bytes(&buf[start..start + seg_len]);
        let cks = c.finish();
        buf[start + 16] = (cks >> 8) as u8;
        buf[start + 17] = cks as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pseudo() -> PseudoHeader {
        PseudoHeader::V4 {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 0, 2, 7),
        }
    }

    fn syn() -> TcpRepr {
        TcpRepr {
            src_port: 49152,
            dst_port: 443,
            seq: 0x1000_0000,
            ack: 0,
            control: TcpControl::SYN,
            window: 65535,
            mss: Some(1460),
            window_scale: Some(7),
        }
    }

    #[test]
    fn round_trip_with_options() {
        let repr = syn();
        let mut buf = Vec::new();
        repr.emit(&mut buf, &[], &pseudo());
        assert_eq!(buf.len(), repr.header_len());
        let (parsed, payload) = TcpRepr::parse(&buf, &pseudo()).unwrap();
        assert_eq!(parsed, repr);
        assert!(payload.is_empty());
    }

    #[test]
    fn round_trip_data_segment() {
        let repr = TcpRepr {
            control: TcpControl { psh: true, ..TcpControl::ACK },
            mss: None,
            window_scale: None,
            ..syn()
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"GET / HTTP/1.1\r\n", &pseudo());
        let (parsed, payload) = TcpRepr::parse(&buf, &pseudo()).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"GET / HTTP/1.1\r\n");
    }

    #[test]
    fn control_bits_round_trip() {
        for ctl in [
            TcpControl::SYN,
            TcpControl::SYN_ACK,
            TcpControl::ACK,
            TcpControl::FIN_ACK,
            TcpControl::RST,
        ] {
            assert_eq!(TcpControl::from_bits(ctl.to_bits()), ctl);
        }
    }

    #[test]
    fn corrupt_segment_is_rejected() {
        let mut buf = Vec::new();
        syn().emit(&mut buf, &[], &pseudo());
        buf[4] ^= 0x80; // flip a sequence-number bit
        assert_eq!(TcpRepr::parse(&buf, &pseudo()).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn header_len_is_padded() {
        // window_scale alone occupies 3 bytes, padded to 4.
        let repr = TcpRepr { mss: None, ..syn() };
        assert_eq!(repr.header_len(), 24);
        // both options: 7 bytes, padded to 8.
        assert_eq!(syn().header_len(), 28);
        // no options.
        let plain = TcpRepr { mss: None, window_scale: None, ..syn() };
        assert_eq!(plain.header_len(), 20);
    }

    #[test]
    fn unknown_options_are_skipped() {
        let repr = TcpRepr { mss: Some(1400), window_scale: None, ..syn() };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &[], &pseudo());
        // Rewrite the MSS option (kind 2, len 4) as SACK-permitted (kind 4,
        // len 2) followed by two NOPs, then fix the checksum.
        buf[20] = 4;
        buf[21] = 2;
        buf[22] = 1;
        buf[23] = 1;
        buf[16] = 0;
        buf[17] = 0;
        let mut c = crate::checksum::pseudo_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 7),
            6,
            buf.len() as u16,
        );
        c.add_bytes(&buf);
        let cks = c.finish();
        buf[16] = (cks >> 8) as u8;
        buf[17] = cks as u8;
        let (parsed, _) = TcpRepr::parse(&buf, &pseudo()).unwrap();
        assert_eq!(parsed.mss, None);
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(
            TcpRepr::parse(&[0u8; 19], &pseudo()).unwrap_err(),
            Error::Truncated
        );
    }
}
