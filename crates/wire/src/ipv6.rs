//! IPv6 headers (RFC 8200), without extension headers.

use crate::ipv4::IpProtocol;
use crate::{be16, Error, Result};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// A parsed/parseable IPv6 fixed header.
///
/// Extension headers are not modelled; a packet whose next-header field is
/// an extension header parses with `protocol = IpProtocol::Other(..)` and an
/// opaque payload, which is what a border monitor would record anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ipv6Repr {
    pub src: Ipv6Addr,
    pub dst: Ipv6Addr,
    pub protocol: IpProtocol,
    pub hop_limit: u8,
    /// Length of the payload that follows the fixed header, in bytes.
    pub payload_len: usize,
    pub traffic_class: u8,
    pub flow_label: u32,
}

impl Ipv6Repr {
    /// Parse a fixed header; returns the header and the payload slice
    /// trimmed to the declared payload length.
    pub fn parse(data: &[u8]) -> Result<(Ipv6Repr, &[u8])> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let version = data[0] >> 4;
        if version != 6 {
            return Err(Error::BadVersion);
        }
        let payload_len = usize::from(be16(data, 4));
        if IPV6_HEADER_LEN + payload_len > data.len() {
            return Err(Error::BadLength);
        }
        let traffic_class = (data[0] << 4) | (data[1] >> 4);
        let flow_label =
            (u32::from(data[1] & 0x0f) << 16) | (u32::from(data[2]) << 8) | u32::from(data[3]);
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        dst.copy_from_slice(&data[24..40]);
        let repr = Ipv6Repr {
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            protocol: IpProtocol::from(data[6]),
            hop_limit: data[7],
            payload_len,
            traffic_class,
            flow_label,
        };
        Ok((repr, &data[IPV6_HEADER_LEN..IPV6_HEADER_LEN + payload_len]))
    }

    /// Append the fixed header to `buf`. The caller appends exactly
    /// `payload_len` bytes of payload afterwards.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        buf.push(0x60 | (self.traffic_class >> 4));
        buf.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8 & 0x0f));
        buf.push((self.flow_label >> 8) as u8);
        buf.push(self.flow_label as u8);
        buf.extend_from_slice(&(self.payload_len as u16).to_be_bytes());
        buf.push(u8::from(self.protocol));
        buf.push(self.hop_limit);
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
    }

    /// Total on-wire length of header plus payload.
    pub fn total_len(&self) -> usize {
        IPV6_HEADER_LEN + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Repr {
        Ipv6Repr {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8:0:1::42".parse().unwrap(),
            protocol: IpProtocol::Udp,
            hop_limit: 64,
            payload_len: 16,
            traffic_class: 0xb8,
            flow_label: 0xabcde,
        }
    }

    #[test]
    fn round_trip() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&[0x11; 16]);
        let (parsed, payload) = Ipv6Repr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload.len(), 16);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0; 16]);
        buf[0] = 0x45;
        assert_eq!(Ipv6Repr::parse(&buf).unwrap_err(), Error::BadVersion);
    }

    #[test]
    fn short_payload_is_rejected() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0; 8]); // declared 16, supplied 8
        assert_eq!(Ipv6Repr::parse(&buf).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert_eq!(Ipv6Repr::parse(&[0u8; 39]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn flow_label_boundaries_round_trip() {
        for fl in [0u32, 1, 0xfffff] {
            let mut repr = sample();
            repr.flow_label = fl;
            repr.payload_len = 0;
            let mut buf = Vec::new();
            repr.emit(&mut buf);
            let (parsed, _) = Ipv6Repr::parse(&buf).unwrap();
            assert_eq!(parsed.flow_label, fl);
        }
    }
}
