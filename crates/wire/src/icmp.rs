//! ICMPv4 (RFC 792): echo, destination-unreachable and time-exceeded, the
//! message types that matter for campus monitoring.

use crate::checksum;
use crate::{be16, Error, Result};

/// The ICMPv4 messages CampusLab distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IcmpType {
    EchoReply,
    EchoRequest,
    /// Destination unreachable with its code (0 = net, 1 = host, 3 = port...).
    DestinationUnreachable(u8),
    /// Time exceeded with its code (0 = TTL in transit).
    TimeExceeded(u8),
    /// Anything else, as (type, code).
    Other(u8, u8),
}

impl IcmpType {
    fn to_wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::DestinationUnreachable(code) => (3, code),
            IcmpType::TimeExceeded(code) => (11, code),
            IcmpType::Other(ty, code) => (ty, code),
        }
    }

    fn from_wire(ty: u8, code: u8) -> Self {
        match (ty, code) {
            (0, 0) => IcmpType::EchoReply,
            (8, 0) => IcmpType::EchoRequest,
            (3, code) => IcmpType::DestinationUnreachable(code),
            (11, code) => IcmpType::TimeExceeded(code),
            (ty, code) => IcmpType::Other(ty, code),
        }
    }
}

/// A parsed/parseable ICMPv4 message.
///
/// For echo messages `rest` carries identifier/sequence in its first four
/// bytes; for error messages it carries the offending datagram's prefix.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IcmpRepr {
    pub icmp_type: IcmpType,
    /// The "rest of header" word (identifier/sequence for echo, unused for
    /// unreachable).
    pub rest_of_header: u32,
    /// Message body following the 8-byte ICMP header.
    pub payload: Vec<u8>,
}

impl IcmpRepr {
    /// Build an echo request with identifier and sequence number.
    pub fn echo_request(ident: u16, seq: u16, payload: &[u8]) -> Self {
        IcmpRepr {
            icmp_type: IcmpType::EchoRequest,
            rest_of_header: (u32::from(ident) << 16) | u32::from(seq),
            payload: payload.to_vec(),
        }
    }

    /// Build the matching echo reply.
    pub fn echo_reply(ident: u16, seq: u16, payload: &[u8]) -> Self {
        IcmpRepr {
            icmp_type: IcmpType::EchoReply,
            rest_of_header: (u32::from(ident) << 16) | u32::from(seq),
            payload: payload.to_vec(),
        }
    }

    /// Echo identifier (high half of the rest-of-header word).
    pub fn ident(&self) -> u16 {
        (self.rest_of_header >> 16) as u16
    }

    /// Echo sequence number (low half of the rest-of-header word).
    pub fn seq(&self) -> u16 {
        self.rest_of_header as u16
    }

    /// Parse a message, verifying the checksum over the whole buffer.
    pub fn parse(data: &[u8]) -> Result<IcmpRepr> {
        if data.len() < 8 {
            return Err(Error::Truncated);
        }
        if !checksum::verify(data) {
            return Err(Error::BadChecksum);
        }
        Ok(IcmpRepr {
            icmp_type: IcmpType::from_wire(data[0], data[1]),
            rest_of_header: ((u32::from(be16(data, 4))) << 16) | u32::from(be16(data, 6)),
            payload: data[8..].to_vec(),
        })
    }

    /// Append the message (with a correct checksum) to `buf`.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        let (ty, code) = self.icmp_type.to_wire();
        buf.push(ty);
        buf.push(code);
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.rest_of_header.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        let cks = checksum::of(&buf[start..]);
        buf[start + 2] = (cks >> 8) as u8;
        buf[start + 3] = cks as u8;
    }

    /// On-wire length.
    pub fn total_len(&self) -> usize {
        8 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let repr = IcmpRepr::echo_request(0x1234, 7, b"ping payload");
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        let parsed = IcmpRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(parsed.ident(), 0x1234);
        assert_eq!(parsed.seq(), 7);
    }

    #[test]
    fn reply_matches_request_fields() {
        let reply = IcmpRepr::echo_reply(9, 1, b"abc");
        assert_eq!(reply.icmp_type, IcmpType::EchoReply);
        assert_eq!(reply.ident(), 9);
        assert_eq!(reply.seq(), 1);
    }

    #[test]
    fn unreachable_round_trip() {
        let repr = IcmpRepr {
            icmp_type: IcmpType::DestinationUnreachable(3),
            rest_of_header: 0,
            payload: vec![0x45, 0, 0, 20],
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        assert_eq!(IcmpRepr::parse(&buf).unwrap(), repr);
    }

    #[test]
    fn corruption_is_rejected() {
        let mut buf = Vec::new();
        IcmpRepr::echo_request(1, 1, b"x").emit(&mut buf);
        buf[0] = 0; // request -> reply without updating checksum
        assert_eq!(IcmpRepr::parse(&buf).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(IcmpRepr::parse(&[8, 0, 0]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn type_mapping_round_trips() {
        for ty in [
            IcmpType::EchoReply,
            IcmpType::EchoRequest,
            IcmpType::DestinationUnreachable(1),
            IcmpType::TimeExceeded(0),
            IcmpType::Other(42, 3),
        ] {
            let (t, c) = ty.to_wire();
            assert_eq!(IcmpType::from_wire(t, c), ty);
        }
    }
}
