//! ARP for IPv4 over Ethernet (RFC 826).

use crate::ethernet::EthernetAddress;
use crate::{be16, Error, Result};
use std::net::Ipv4Addr;

const ARP_PACKET_LEN: usize = 28;

/// ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOperation {
    Request,
    Reply,
}

impl ArpOperation {
    fn from_u16(v: u16) -> Result<Self> {
        match v {
            1 => Ok(ArpOperation::Request),
            2 => Ok(ArpOperation::Reply),
            _ => Err(Error::Unsupported),
        }
    }

    fn as_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
        }
    }
}

/// An ARP packet for the only hardware/protocol pair campus networks use:
/// Ethernet + IPv4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpRepr {
    pub operation: ArpOperation,
    pub source_hardware: EthernetAddress,
    pub source_protocol: Ipv4Addr,
    pub target_hardware: EthernetAddress,
    pub target_protocol: Ipv4Addr,
}

impl ArpRepr {
    /// Build a broadcast who-has request.
    pub fn request(
        source_hardware: EthernetAddress,
        source_protocol: Ipv4Addr,
        target_protocol: Ipv4Addr,
    ) -> Self {
        ArpRepr {
            operation: ArpOperation::Request,
            source_hardware,
            source_protocol,
            target_hardware: EthernetAddress::default(),
            target_protocol,
        }
    }

    /// Parse an ARP packet. Only Ethernet/IPv4 ARP is accepted.
    pub fn parse(data: &[u8]) -> Result<ArpRepr> {
        if data.len() < ARP_PACKET_LEN {
            return Err(Error::Truncated);
        }
        if be16(data, 0) != 1 || be16(data, 2) != 0x0800 {
            return Err(Error::Unsupported);
        }
        if data[4] != 6 || data[5] != 4 {
            return Err(Error::BadLength);
        }
        let operation = ArpOperation::from_u16(be16(data, 6))?;
        let mut sha = [0u8; 6];
        sha.copy_from_slice(&data[8..14]);
        let spa = Ipv4Addr::new(data[14], data[15], data[16], data[17]);
        let mut tha = [0u8; 6];
        tha.copy_from_slice(&data[18..24]);
        let tpa = Ipv4Addr::new(data[24], data[25], data[26], data[27]);
        Ok(ArpRepr {
            operation,
            source_hardware: EthernetAddress(sha),
            source_protocol: spa,
            target_hardware: EthernetAddress(tha),
            target_protocol: tpa,
        })
    }

    /// Append the packet to `buf`.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&1u16.to_be_bytes()); // htype: ethernet
        buf.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: ipv4
        buf.push(6); // hlen
        buf.push(4); // plen
        buf.extend_from_slice(&self.operation.as_u16().to_be_bytes());
        buf.extend_from_slice(&self.source_hardware.0);
        buf.extend_from_slice(&self.source_protocol.octets());
        buf.extend_from_slice(&self.target_hardware.0);
        buf.extend_from_slice(&self.target_protocol.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let repr = ArpRepr {
            operation: ArpOperation::Reply,
            source_hardware: EthernetAddress::from_host_id(3),
            source_protocol: Ipv4Addr::new(10, 0, 0, 3),
            target_hardware: EthernetAddress::from_host_id(9),
            target_protocol: Ipv4Addr::new(10, 0, 0, 9),
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        assert_eq!(buf.len(), 28);
        assert_eq!(ArpRepr::parse(&buf).unwrap(), repr);
    }

    #[test]
    fn request_helper_zeroes_target_hardware() {
        let req = ArpRepr::request(
            EthernetAddress::from_host_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        assert_eq!(req.operation, ArpOperation::Request);
        assert_eq!(req.target_hardware, EthernetAddress::default());
    }

    #[test]
    fn non_ethernet_arp_is_rejected() {
        let repr = ArpRepr::request(
            EthernetAddress::from_host_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf[1] = 6; // bogus hardware type
        assert_eq!(ArpRepr::parse(&buf).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(ArpRepr::parse(&[0u8; 27]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let repr = ArpRepr::request(
            EthernetAddress::from_host_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf[7] = 99;
        assert_eq!(ArpRepr::parse(&buf).unwrap_err(), Error::Unsupported);
    }
}
