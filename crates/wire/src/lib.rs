//! # campuslab-wire
//!
//! Wire-format parsing and emission for the protocols that cross a campus
//! network's border: Ethernet II, ARP, IPv4, IPv6, UDP, TCP, ICMPv4 and DNS.
//!
//! The design follows the smoltcp idiom: every protocol has a plain-old-data
//! `*Repr` struct that can be `parse`d from a byte slice (with full
//! validation, including checksums) and `emit`ted into a byte vector
//! (generating correct checksums). There are no clever type tricks; the goal
//! is simplicity and robustness.
//!
//! `campuslab-netsim` moves owned `Repr` values around for speed, and
//! serializes them through this crate whenever real bytes are needed — for
//! the capture plane, pcap dumps, or payload inspection.
//!
//! ```
//! use campuslab_wire::{Ipv4Repr, IpProtocol};
//! use std::net::Ipv4Addr;
//!
//! let repr = Ipv4Repr {
//!     src: Ipv4Addr::new(10, 1, 2, 3),
//!     dst: Ipv4Addr::new(192, 0, 2, 1),
//!     protocol: IpProtocol::Udp,
//!     ttl: 64,
//!     payload_len: 8,
//!     dscp: 0,
//!     identification: 0x42,
//!     dont_fragment: true,
//! };
//! let mut buf = Vec::new();
//! repr.emit(&mut buf);
//! buf.extend_from_slice(&[0u8; 8]); // payload
//! let (parsed, payload) = Ipv4Repr::parse(&buf).unwrap();
//! assert_eq!(parsed, repr);
//! assert_eq!(payload.len(), 8);
//! ```

pub mod checksum;
pub mod ethernet;
pub mod arp;
pub mod ipv4;
pub mod ipv6;
pub mod udp;
pub mod tcp;
pub mod icmp;
pub mod dns;

pub use ethernet::{EtherType, EthernetAddress, EthernetRepr, ETHERNET_HEADER_LEN};
pub use arp::{ArpOperation, ArpRepr};
pub use ipv4::{IpProtocol, Ipv4Repr, IPV4_HEADER_LEN};
pub use ipv6::{Ipv6Repr, IPV6_HEADER_LEN};
pub use udp::{UdpRepr, UDP_HEADER_LEN};
pub use tcp::{TcpControl, TcpRepr, TCP_HEADER_LEN};
pub use icmp::{IcmpRepr, IcmpType};
pub use dns::{
    DnsFlags, DnsMessage, DnsOpcode, DnsQuestion, DnsRcode, DnsRecord, DnsRecordData, DnsType,
};

/// Errors that can occur while parsing or emitting a wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the protocol's minimum header.
    Truncated,
    /// A length field disagrees with the amount of data present.
    BadLength,
    /// A checksum did not verify.
    BadChecksum,
    /// A version field holds an unexpected value.
    BadVersion,
    /// A field holds a value this implementation does not support.
    Unsupported,
    /// A DNS name is malformed (bad label length, compression loop, ...).
    BadName,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::BadLength => "inconsistent length field",
            Error::BadChecksum => "checksum mismatch",
            Error::BadVersion => "unexpected version",
            Error::Unsupported => "unsupported field value",
            Error::BadName => "malformed DNS name",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the wire crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Read a big-endian u16 at `offset`; the caller guarantees bounds.
#[inline]
pub(crate) fn be16(data: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([data[offset], data[offset + 1]])
}

/// Read a big-endian u32 at `offset`; the caller guarantees bounds.
#[inline]
pub(crate) fn be32(data: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(Error::Truncated.to_string(), "buffer truncated");
        assert_eq!(Error::BadChecksum.to_string(), "checksum mismatch");
        assert_eq!(Error::BadName.to_string(), "malformed DNS name");
    }

    #[test]
    fn be_readers() {
        let data = [0x12, 0x34, 0x56, 0x78];
        assert_eq!(be16(&data, 0), 0x1234);
        assert_eq!(be16(&data, 2), 0x5678);
        assert_eq!(be32(&data, 0), 0x1234_5678);
    }
}
