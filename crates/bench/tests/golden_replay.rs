//! Golden-replay suite: the canonical Observatory bundle (table +
//! Prometheus dump + sim-time trace) of each instrumented experiment is
//! pinned byte-for-byte against a committed golden file, under both the
//! sequential and the parallel runner.
//!
//! This is the determinism contract's enforcement point: metrics are
//! stamped in sim-time and event sequence, never wall clock, so thread
//! scheduling must not be able to move a single byte. If an intentional
//! change shifts an experiment's output, regenerate with
//! `cargo run -p campuslab-bench --bin gen_golden` and commit the diff.

use std::sync::Mutex;

/// `CAMPUSLAB_JOBS` is process-global, so replays take turns.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn replay(id: &str, golden: &str) {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = campuslab_bench::observed(id).expect("id not in observed registry");
    std::env::set_var("CAMPUSLAB_JOBS", "1");
    let sequential = run().canonical();
    std::env::set_var("CAMPUSLAB_JOBS", "4");
    let parallel = run().canonical();
    std::env::remove_var("CAMPUSLAB_JOBS");
    assert_eq!(
        sequential, parallel,
        "{id}: sequential and parallel runners produced different bytes"
    );
    assert_eq!(
        sequential, golden,
        "{id}: output drifted from the committed golden file \
         (if intentional: cargo run -p campuslab-bench --bin gen_golden)"
    );
}

#[test]
fn e1_confidence_gate_replays_byte_for_byte() {
    replay("E1", include_str!("../golden/E1.golden"));
}

#[test]
fn e7_cross_campus_replays_byte_for_byte() {
    replay("E7", include_str!("../golden/E7.golden"));
}

#[test]
fn e14_chaos_sweep_replays_byte_for_byte() {
    replay("E14", include_str!("../golden/E14.golden"));
}

#[test]
fn e15_rollout_guard_replays_byte_for_byte() {
    replay("E15", include_str!("../golden/E15.golden"));
}

#[test]
fn e16_resolver_replays_byte_for_byte() {
    replay("E16", include_str!("../golden/E16.golden"));
}

#[test]
fn e17_driftpilot_replays_byte_for_byte() {
    replay("E17", include_str!("../golden/E17.golden"));
}

#[test]
fn e18_tenant_plaza_replays_byte_for_byte() {
    replay("E18", include_str!("../golden/E18.golden"));
}

#[test]
fn e19_phoenix_replays_byte_for_byte() {
    replay("E19", include_str!("../golden/E19.golden"));
}
