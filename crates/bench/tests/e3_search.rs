//! E3 end-to-end: a small scenario collected at the border, landed in the
//! segment-indexed store through the sharded ingest path, and searched —
//! with the whole Observatory bundle pinned byte-for-byte against
//! `golden/E3.golden` under both the sequential and the parallel runner
//! (regen: `cargo run -p campuslab-bench --bin gen_golden`).

use campuslab::datastore::PacketQuery;
use campuslab::testbed::{build_store, collect, Scenario};
use std::sync::Mutex;

/// `CAMPUSLAB_JOBS` is process-global, so replays take turns.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn e3_bundle_replays_byte_for_byte() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = campuslab_bench::observed("E3").expect("E3 in observed registry");
    std::env::set_var("CAMPUSLAB_JOBS", "1");
    let sequential = run().canonical();
    std::env::set_var("CAMPUSLAB_JOBS", "4");
    let parallel = run().canonical();
    std::env::remove_var("CAMPUSLAB_JOBS");
    assert_eq!(
        sequential, parallel,
        "E3: sequential and parallel runners produced different bytes"
    );
    assert_eq!(
        sequential,
        include_str!("../golden/E3.golden"),
        "E3: output drifted from the committed golden file \
         (if intentional: cargo run -p campuslab-bench --bin gen_golden)"
    );
}

/// The search path end-to-end, independent of the golden bytes: everything
/// the tap captured is in the store, the indexed store finds the scenario's
/// ground truth, and the store's Observatory saw every step.
#[test]
fn e3_store_serves_scenario_ground_truth() {
    let data = collect(&Scenario::small());
    let mut ds = build_store(&data);
    // Capture → store conservation.
    assert_eq!(ds.packet_count(), data.packets.len());
    assert_eq!(ds.flow_count(), data.flows.len());
    assert_eq!(ds.obs.ingested_packets(), data.packets.len() as u64);
    // The victim's flood is findable by index and agrees with the scan.
    let victim = std::net::IpAddr::V4(data.victim.expect("victim"));
    let q = PacketQuery::for_host(victim).malicious();
    let (hits, stats) = {
        let (refs, stats) = ds.query_packets_observed(&q);
        (refs.into_iter().cloned().collect::<Vec<_>>(), stats)
    };
    assert!(!hits.is_empty(), "no attack traffic found at the victim");
    assert!(hits.iter().all(|r| r.is_malicious()));
    let scan: Vec<_> = ds.scan_packets(&q).into_iter().cloned().collect();
    assert_eq!(hits, scan);
    // The indexed plan did less work than the scan on a selective query.
    assert!(
        stats.records_examined < ds.packet_count(),
        "indexed path examined the whole table ({} of {})",
        stats.records_examined,
        ds.packet_count()
    );
    assert_eq!(ds.obs.queries_indexed(), 1);
    assert!(ds.obs.query_cost_total() >= stats.records_examined as u128);
}
