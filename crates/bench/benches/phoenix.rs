//! PhoenixRun checkpoint overhead: the wall-clock price of freezing a
//! mid-campaign checkpoint during the E17 drift run. The E19 experiment
//! pins the *bytes* of checkpoint/restore; this bench pins the *price*
//! — ci.sh reads `BENCH_phoenix.json` and gates the freeze-at-a-barrier
//! run within 5% of the checkpoint-free baseline, so durability never
//! quietly becomes the dominant cost of an always-on pipeline. The
//! envelope encode (pure serialization of an already-frozen image,
//! proportional to image size, off the simulation path) is priced
//! separately by `checkpoint_encode_9s`.

use campuslab::netsim::SimTime;
use campuslab::testbed::{encode_checkpoint, DriftRunConfig, DriftSession, Scenario};
use campuslab::Platform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Machine-readable results for CI and the perf history; the
    // BENCH_JSON environment variable still overrides the path.
    c.json_path("BENCH_phoenix.json");

    // The E17 lineage, trained once for both routines.
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);
    let scenario = Scenario::drift_rotation();
    let make = || {
        DriftSession::new(
            &scenario,
            dev.program.clone(),
            Box::new(model.clone()),
            DriftRunConfig::default(),
        )
    };

    c.bench_function("phoenix/drift_run_plain", |b| {
        b.iter(|| {
            let session = make();
            let outcome = session.finish();
            black_box(outcome.net.delivered)
        })
    });

    // The same run paying for durability: one mid-campaign checkpoint
    // frozen at a quiescent barrier (the non-destructive event-queue
    // drain + re-schedule plus every layer's freeze). This is the cost
    // the *simulation* pays; encoding the frozen image to bytes happens
    // off the hot path and is measured below.
    c.bench_function("phoenix/drift_run_checkpointed", |b| {
        b.iter(|| {
            let mut session = make();
            session.run_until(SimTime::from_secs(9));
            black_box(session.checkpoint().net.events.len());
            let outcome = session.finish();
            black_box(outcome.net.delivered)
        })
    });

    // The isolated checkpoint cost, for the perf history: freeze + encode
    // at the 9 s barrier, no simulation in the measured region.
    let mut parked = make();
    parked.run_until(SimTime::from_secs(9));
    c.bench_function("phoenix/checkpoint_encode_9s", |b| {
        b.iter(|| black_box(encode_checkpoint(&parked.checkpoint()).len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
