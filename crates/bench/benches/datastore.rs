//! Data-store search performance: the E3 "fast and flexible search" claim
//! as a tracked benchmark — indexed vs scan across query shapes, plus
//! sequential vs parallel batch ingest. Results land in
//! `BENCH_datastore.json`; `scripts/ci.sh` reruns the group and gates on
//! the indexed-vs-scan host-query ratio (≥5×).

use campuslab::capture::{Direction, PacketRecord, TcpFlags};
use campuslab::datastore::{DataStore, PacketQuery};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::net::IpAddr;

fn records(n: u64) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| PacketRecord {
            ts_ns: i * 10_000,
            direction: Direction::Inbound,
            src: IpAddr::from([10, 1, (i % 16) as u8 + 1, (i % 200) as u8 + 10]),
            dst: IpAddr::from([203, 0, 113, (i % 24) as u8 + 1]),
            protocol: if i % 4 == 0 { 17 } else { 6 },
            src_port: (1024 + (i * 31) % 60_000) as u16,
            dst_port: [443, 80, 53, 22][(i % 4) as usize],
            wire_len: 60 + (i % 1400) as u32,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: i / 20,
            label_app: (i % 7 + 1) as u16,
            label_attack: u16::from(i % 100 == 0),
        })
        .collect()
}

/// Split one capture into fixed-size batches for the sharded ingest path.
fn batches_of(recs: &[PacketRecord], batch: usize) -> Vec<Vec<PacketRecord>> {
    recs.chunks(batch).map(|c| c.to_vec()).collect()
}

fn bench(c: &mut Criterion) {
    // Machine-readable results for CI and the perf history; the
    // BENCH_JSON environment variable still overrides the path.
    c.json_path("BENCH_datastore.json");

    let n = 200_000u64;
    let mut ds = DataStore::new();
    ds.ingest_packets(records(n));
    let host_q = PacketQuery::for_host("10.1.5.14".parse().unwrap());
    let port_q = PacketQuery::default().port(53);
    let window_q =
        PacketQuery::for_host("10.1.5.14".parse().unwrap()).window(200_000_000, 400_000_000);
    let attack_q = PacketQuery::default().malicious();

    c.bench_function("datastore/indexed_host_query_200k", |b| {
        b.iter(|| black_box(ds.query_packets(&host_q).len()))
    });
    c.bench_function("datastore/scan_host_query_200k", |b| {
        b.iter(|| black_box(ds.scan_packets(&host_q).len()))
    });
    c.bench_function("datastore/indexed_port_query_200k", |b| {
        b.iter(|| black_box(ds.query_packets(&port_q).len()))
    });
    c.bench_function("datastore/indexed_host_window_200k", |b| {
        b.iter(|| black_box(ds.query_packets(&window_q).len()))
    });
    c.bench_function("datastore/indexed_attack_query_200k", |b| {
        b.iter(|| black_box(ds.query_packets(&attack_q).len()))
    });

    let batch = records(10_000);
    c.bench_function("datastore/ingest_10k", |b| {
        b.iter_batched(
            || batch.clone(),
            |batch| {
                let mut ds = DataStore::new();
                ds.ingest_packets(batch);
                black_box(ds.packet_count())
            },
            BatchSize::SmallInput,
        )
    });
    // Sequential vs parallel batch ingest over the same 80k records; the
    // stores they build are byte-identical, only wall-clock differs.
    let big = records(80_000);
    c.bench_function("datastore/ingest_80k_batches_seq", |b| {
        b.iter_batched(
            || batches_of(&big, 10_000),
            |batches| {
                let mut ds = DataStore::new();
                ds.ingest_packet_batches_with(batches, 1);
                black_box(ds.packet_count())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("datastore/ingest_80k_batches_par", |b| {
        b.iter_batched(
            || batches_of(&big, 10_000),
            |batches| {
                let mut ds = DataStore::new();
                ds.ingest_packet_batches_with(batches, 4);
                black_box(ds.packet_count())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
