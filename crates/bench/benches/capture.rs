//! Monitoring-plane hot paths: ring admission, flow-table updates, and
//! DNS metadata extraction per captured packet.

use campuslab::capture::{
    CaptureArray, Direction, DnsExtractor, FlowTable, FlowTableConfig, PacketRecord, RingConfig,
    TcpFlags,
};
use campuslab::netsim::{GroundTruth, PacketBuilder, Payload, SimTime};
use campuslab::wire::{DnsMessage, DnsType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};

fn record(i: u64) -> PacketRecord {
    PacketRecord {
        ts_ns: i * 1_000,
        direction: Direction::Inbound,
        src: IpAddr::from([203, 0, 113, (i % 200) as u8]),
        dst: IpAddr::from([10, 1, 1, (i % 100) as u8]),
        protocol: 6,
        src_port: (1024 + i % 50_000) as u16,
        dst_port: 443,
        wire_len: 1_000,
        ttl: 64,
        tcp_flags: TcpFlags::default(),
        flow_id: i / 10,
        label_app: 2,
        label_attack: 0,
    }
}

fn bench(c: &mut Criterion) {
    let recs: Vec<PacketRecord> = (0..4_096).map(record).collect();
    let mut arr = CaptureArray::new(8, RingConfig::default());
    let mut i = 0usize;
    c.bench_function("capture/ring_offer", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            black_box(arr.offer(SimTime(i as u64 * 1_000), &recs[i].flow_key()))
        })
    });

    let mut flows = FlowTable::new(FlowTableConfig::default());
    c.bench_function("capture/flow_table_observe", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            flows.observe(black_box(&recs[i]));
        })
    });

    // DNS extraction on a realistic response payload.
    let msg = DnsMessage::query(9, "cdn.example.org", DnsType::A);
    let mut payload = Vec::new();
    msg.emit(&mut payload).unwrap();
    let mut builder = PacketBuilder::new();
    let pkt = builder.udp_v4(
        Ipv4Addr::new(10, 1, 1, 10),
        Ipv4Addr::new(10, 1, 255, 53),
        40_000,
        53,
        Payload::Bytes(payload.into()),
        64,
        GroundTruth::default(),
    );
    let mut dns = DnsExtractor::new();
    c.bench_function("capture/dns_extract", |b| {
        b.iter(|| black_box(dns.extract(SimTime::ZERO, Direction::Outbound, &pkt)))
    });

    c.bench_function("capture/serialize_frame_1kB", |b| {
        b.iter(|| black_box(pkt.to_bytes()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
