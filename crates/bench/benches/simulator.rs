//! Simulator throughput: end-to-end packet events per second on the
//! canonical campus, which bounds how much traffic every experiment can
//! afford to push.

use campuslab::netsim::prelude::*;
use campuslab::traffic::{TrafficGenerator, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn small_campus() -> Campus {
    Campus::build(CampusConfig {
        dist_count: 2,
        access_per_dist: 2,
        hosts_per_access: 4,
        external_hosts: 8,
        ..CampusConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    c.bench_function("simulator/build_default_campus", |b| {
        b.iter(|| black_box(Campus::build(CampusConfig::default()).net.node_count()))
    });

    // One second of campus traffic, generated once, replayed per iteration.
    let campus = small_campus();
    let mut gen = TrafficGenerator::new(
        &campus,
        WorkloadConfig {
            duration: SimDuration::from_secs(1),
            sessions_per_sec: 20.0,
            ..WorkloadConfig::default()
        },
    );
    let schedule = gen.generate();
    let injections = schedule.clone().into_injections();
    c.bench_function("simulator/run_1s_campus_second", |b| {
        b.iter_batched(
            || {
                let campus = small_campus();
                (campus.net, injections.clone())
            },
            |(mut net, injections)| {
                for inj in injections {
                    net.inject(inj.at, inj.node, inj.packet);
                }
                black_box(net.run_to_completion().delivered)
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("simulator/generate_1s_workload", |b| {
        b.iter_batched(
            || {
                TrafficGenerator::new(
                    &campus,
                    WorkloadConfig {
                        duration: SimDuration::from_secs(1),
                        sessions_per_sec: 20.0,
                        ..WorkloadConfig::default()
                    },
                )
            },
            |mut gen| black_box(gen.generate().len()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
