//! Simulator throughput: end-to-end packet events per second on the
//! canonical campus, which bounds how much traffic every experiment can
//! afford to push.

use campuslab::netsim::prelude::*;
use campuslab::traffic::{TrafficGenerator, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn small_campus() -> Campus {
    Campus::build(CampusConfig {
        dist_count: 2,
        access_per_dist: 2,
        hosts_per_access: 4,
        external_hosts: 8,
        ..CampusConfig::default()
    })
}

/// src -- s1 ==(20 Mbps, 20 KB queue)== s2 -- dst: a burst into the
/// bottleneck backs the queue up and exercises both `forward` branches
/// (admit and hand-back-on-drop) with the tap observing every traversal.
fn congested_pair() -> (Network, NodeId, LinkId) {
    use std::net::Ipv4Addr;
    let mut b = TopologyBuilder::new(7);
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let src = b.host("src", Ipv4Addr::new(10, 0, 0, 1));
    let dst = b.host("dst", Ipv4Addr::new(10, 0, 1, 1));
    b.attach_host(src, s1, LinkSpec::gbps(1, SimDuration::from_micros(5)));
    b.attach_host(dst, s2, LinkSpec::gbps(1, SimDuration::from_micros(5)));
    let bottleneck = b.link(
        s1,
        s2,
        LinkSpec {
            rate_bps: 20_000_000,
            propagation: SimDuration::from_micros(50),
            queue: QueueDiscipline::DropTail { capacity_bytes: 20_000 },
        },
    );
    (b.build(), src, bottleneck)
}

/// Tap observer for the congested bench: counts instead of storing, so
/// hook overhead stays constant per packet.
struct TapCounter {
    taps: u64,
    drops: u64,
}

impl SimHooks for TapCounter {
    fn on_tap(&mut self, _now: SimTime, _link: LinkId, _dir: Dir, _packet: &Packet, _cmds: &mut Commands) {
        self.taps += 1;
    }
    fn on_drop(&mut self, _now: SimTime, _reason: DropReason, _packet: &Packet, _cmds: &mut Commands) {
        self.drops += 1;
    }
}

fn bench(c: &mut Criterion) {
    // Machine-readable results for CI and the perf history; the
    // BENCH_JSON environment variable still overrides the path.
    c.json_path("BENCH_netsim.json");

    c.bench_function("simulator/build_default_campus", |b| {
        b.iter(|| black_box(Campus::build(CampusConfig::default()).net.node_count()))
    });

    c.bench_function("simulator/congested_queue_tapped", |b| {
        use std::net::Ipv4Addr;
        b.iter_batched(
            || {
                let (mut net, src, bottleneck) = congested_pair();
                net.set_tap(bottleneck, true);
                let mut pb = PacketBuilder::new();
                // 900-byte datagrams every 2 us: ~3.6 Gbps offered into a
                // 20 Mbps bottleneck — the queue fills fast and stays full,
                // so most offers take the drop (hand-back) branch.
                for i in 0..1_000u64 {
                    let pkt = pb.udp_v4(
                        Ipv4Addr::new(10, 0, 0, 1),
                        Ipv4Addr::new(10, 0, 1, 1),
                        (1024 + i % 512) as u16,
                        53,
                        Payload::Synthetic(900),
                        64,
                        GroundTruth::default(),
                    );
                    net.inject(SimTime::from_micros(i * 2), src, pkt);
                }
                net
            },
            |mut net| {
                let mut hooks = TapCounter { taps: 0, drops: 0 };
                net.run(&mut hooks, None);
                assert!(hooks.drops > 0, "bench no longer congests the queue");
                black_box((net.stats.delivered, hooks.taps, hooks.drops))
            },
            BatchSize::LargeInput,
        )
    });

    // One second of campus traffic, generated once, replayed per iteration.
    let campus = small_campus();
    let mut gen = TrafficGenerator::new(
        &campus,
        WorkloadConfig {
            duration: SimDuration::from_secs(1),
            sessions_per_sec: 20.0,
            ..WorkloadConfig::default()
        },
    );
    let schedule = gen.generate();
    let injections = schedule.clone().into_injections();
    c.bench_function("simulator/run_1s_campus_second", |b| {
        b.iter_batched(
            || {
                let campus = small_campus();
                (campus.net, injections.clone())
            },
            |(mut net, injections)| {
                for inj in injections {
                    net.inject(inj.at, inj.node, inj.packet);
                }
                black_box(net.run_to_completion().delivered)
            },
            BatchSize::LargeInput,
        )
    });

    // The same second of traffic under the sharded engine with up to 8
    // shards (the campus partitions into its access/distribution
    // subtrees). CI compares this against run_1s_campus_second: byte-equal
    // stats are asserted inside the closure, and on multi-core runners the
    // median must beat the sequential engine by the gate's factor.
    c.bench_function("simulator/run_1s_campus_second_sharded", |b| {
        b.iter_batched(
            || {
                let campus = small_campus();
                (campus.net, injections.clone())
            },
            |(mut net, injections)| {
                for inj in injections {
                    net.inject(inj.at, inj.node, inj.packet);
                }
                net.run_sharded(&mut NullHooks, None, 8);
                black_box(net.stats.delivered)
            },
            BatchSize::LargeInput,
        )
    });

    // The same second of campus traffic with the Observatory sink gated
    // off: the pair pins the instrumentation overhead of the event loop.
    // CI compares the two medians and fails if enabled costs >5% over
    // disabled — the obs fast path must stay plain u64 bumps.
    c.bench_function("simulator/run_1s_campus_second_obs_off", |b| {
        b.iter_batched(
            || {
                let campus = small_campus();
                (campus.net, injections.clone())
            },
            |(mut net, injections)| {
                net.obs.sink.set_enabled(false);
                for inj in injections {
                    net.inject(inj.at, inj.node, inj.packet);
                }
                black_box(net.run_to_completion().delivered)
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("simulator/generate_1s_workload", |b| {
        b.iter_batched(
            || {
                TrafficGenerator::new(
                    &campus,
                    WorkloadConfig {
                        duration: SimDuration::from_secs(1),
                        sessions_per_sec: 20.0,
                        ..WorkloadConfig::default()
                    },
                )
            },
            |mut gen| black_box(gen.generate().len()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
