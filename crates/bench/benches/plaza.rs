//! Plaza service throughput: wall-clock cost of admitting and running a
//! fleet of identical probe tenants, at 1/4/16/64 tenants. The E18
//! sweep pins the *bytes* of these runs; this bench pins the *price* —
//! ci.sh reads `BENCH_plaza.json` and gates the per-tenant overhead of
//! the 64-tenant fleet against the solo baseline (amortized cost per
//! tenant must not balloon as the fleet grows).

use campuslab::plaza::{Plaza, PlazaConfig, TenantSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn probes(n: usize) -> Vec<TenantSpec> {
    (0..n).map(|i| TenantSpec::probe(format!("p{i}"))).collect()
}

fn bench(c: &mut Criterion) {
    // Machine-readable results for CI and the perf history; the
    // BENCH_JSON environment variable still overrides the path.
    c.json_path("BENCH_plaza.json");

    for n in [1usize, 4, 16, 64] {
        c.bench_function(&format!("plaza/run_tenants_{n}"), |b| {
            b.iter_batched(
                || probes(n),
                |specs| {
                    let mut plaza = Plaza::new(PlazaConfig::default());
                    for spec in specs {
                        plaza.submit(spec);
                    }
                    let report = plaza.run();
                    black_box((report.outcomes.len(), report.rounds))
                },
                // One plaza run per routine call: the 64-tenant fleet
                // takes seconds per iteration, so batching would blow
                // the bench far past any CI budget.
                BatchSize::PerIteration,
            )
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
