//! The fast control loop's per-packet decision cost: compiled pipeline vs
//! distilled tree vs the black-box teachers — the quantitative core of
//! Figure 2's fast/slow split.

use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::dataplane::fields_from_record;
use campuslab::features::{packet_dataset, packet_features, LabelMode};
use campuslab::ml::{Classifier, ForestConfig, RandomForest};
use campuslab::testbed::{collect, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = collect(&Scenario::small());
    let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
    let dataset = packet_dataset(&data.packets, LabelMode::BinaryAttack);
    let forest = RandomForest::fit(&dataset, ForestConfig::default());

    let rows: Vec<Vec<f64>> = data.packets.iter().take(4_096).map(packet_features).collect();
    let fields: Vec<_> = data.packets.iter().take(4_096).map(fields_from_record).collect();
    let mut runtime = dev.program.clone().into_runtime();
    let mut i = 0usize;

    c.bench_function("fastpath/pipeline_lookup", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            black_box(runtime.process(&fields[i]))
        })
    });
    c.bench_function("fastpath/distilled_tree_predict", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            black_box(dev.student.predict(&rows[i]))
        })
    });
    c.bench_function("fastpath/forest_predict", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            black_box(forest.predict(&rows[i]))
        })
    });
    c.bench_function("fastpath/teacher_blackbox_predict", |b| {
        b.iter(|| {
            i = (i + 1) & 4_095;
            black_box(dev.teacher.predict(&rows[i]))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
