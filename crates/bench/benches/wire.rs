//! Wire-format hot paths: parse and emit of the protocols the capture
//! plane touches for every border packet.

use campuslab::wire::udp::PseudoHeader;
use campuslab::wire::{
    DnsMessage, DnsType, EthernetRepr, IcmpRepr, Ipv4Repr, TcpControl, TcpRepr,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn frame() -> Vec<u8> {
    let src = Ipv4Addr::new(10, 1, 1, 10);
    let dst = Ipv4Addr::new(203, 0, 113, 1);
    let pseudo = PseudoHeader::V4 { src, dst };
    let tcp = TcpRepr {
        src_port: 50_000,
        dst_port: 443,
        seq: 12345,
        ack: 67890,
        control: TcpControl::ACK,
        window: 65535,
        mss: None,
        window_scale: None,
    };
    let mut l4 = Vec::new();
    tcp.emit(&mut l4, &[0xab; 1200], &pseudo);
    let ip = Ipv4Repr {
        src,
        dst,
        protocol: campuslab::wire::IpProtocol::Tcp,
        ttl: 64,
        payload_len: l4.len(),
        dscp: 0,
        identification: 7,
        dont_fragment: true,
    };
    let mut out = Vec::new();
    EthernetRepr {
        dst: campuslab::wire::EthernetAddress::from_host_id(1),
        src: campuslab::wire::EthernetAddress::from_host_id(2),
        ethertype: campuslab::wire::EtherType::Ipv4,
    }
    .emit(&mut out);
    ip.emit(&mut out);
    out.extend_from_slice(&l4);
    out
}

fn dns_bytes() -> Vec<u8> {
    let q = DnsMessage::query(7, "cdn.example.org", DnsType::A);
    let mut out = Vec::new();
    q.emit(&mut out).unwrap();
    out
}

fn bench(c: &mut Criterion) {
    let f = frame();
    c.bench_function("wire/parse_eth_ip_tcp_1200B", |b| {
        b.iter(|| {
            let (eth, l3) = EthernetRepr::parse(black_box(&f)).unwrap();
            let (ip, l4) = Ipv4Repr::parse(l3).unwrap();
            let pseudo = PseudoHeader::V4 { src: ip.src, dst: ip.dst };
            let (tcp, body) = TcpRepr::parse(l4, &pseudo).unwrap();
            black_box((eth, ip, tcp, body.len()));
        })
    });
    c.bench_function("wire/emit_eth_ip_tcp_1200B", |b| {
        b.iter(|| black_box(frame()))
    });
    let d = dns_bytes();
    c.bench_function("wire/parse_dns_query", |b| {
        b.iter(|| black_box(DnsMessage::parse(black_box(&d)).unwrap()))
    });
    c.bench_function("wire/emit_icmp_echo", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            IcmpRepr::echo_request(1, 2, &[0; 56]).emit(&mut out);
            black_box(out)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
