//! Development-loop stage costs: training, distillation and compilation —
//! the "slow" loop's budget, tracked.

use campuslab::dataplane::{compile_tree, CompileConfig};
use campuslab::features::{packet_dataset, LabelMode};
use campuslab::ml::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
use campuslab::testbed::{collect, Scenario};
use campuslab::xai::{distill, DistillConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = collect(&Scenario::small());
    let dataset = packet_dataset(&data.packets, LabelMode::BinaryAttack);
    let (train, _) = dataset.split_by_order(0.7);
    // A slimmed training set keeps per-iteration cost sane.
    let slim = train.subset(0..train.len().min(8_000));

    c.bench_function("learning/tree_fit_8k", |b| {
        b.iter(|| black_box(DecisionTree::fit(&slim, TreeConfig::shallow(6)).n_nodes()))
    });
    c.bench_function("learning/forest_fit_8k_10trees", |b| {
        b.iter(|| {
            black_box(
                RandomForest::fit(&slim, ForestConfig { n_trees: 10, ..Default::default() })
                    .total_nodes(),
            )
        })
    });
    let teacher = RandomForest::fit(&slim, ForestConfig { n_trees: 10, ..Default::default() });
    c.bench_function("learning/distill_depth5", |b| {
        b.iter(|| {
            let (student, _) = distill(
                &teacher,
                &slim,
                DistillConfig {
                    tree: TreeConfig::shallow(5),
                    rounds: 1,
                    samples_per_round: 500,
                    ..Default::default()
                },
            );
            black_box(student.n_nodes())
        })
    });
    let (student, _) = distill(&teacher, &slim, DistillConfig::default());
    c.bench_function("learning/compile_tree", |b| {
        b.iter(|| {
            let (program, _) = compile_tree(&student, CompileConfig::default(), "bench");
            black_box(program.n_entries())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
