//! Regenerates the `e7_cross_campus` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e7_cross_campus::run());
}
