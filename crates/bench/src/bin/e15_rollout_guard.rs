//! Regenerates the `e15_rollout_guard` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e15_rollout_guard::run());
}
