//! Regenerates the `e10_mitigation_styles` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e10_mitigation_styles::run());
}
