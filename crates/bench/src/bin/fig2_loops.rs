//! Regenerates the `fig2_loops` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::fig2_loops::run());
}
