//! Operator probe for PhoenixRun: stage-by-stage wall-clock and sizes
//! for the checkpoint path (run-to-barrier, freeze, envelope encode,
//! decode, restore, run-to-completion) on the small and drift-rotation
//! scenarios. Companion to `shard_probe`/`ingest_probe`: run it when a
//! kill-point sweep feels slow to see which stage is paying.

use campuslab::netsim::{SimDuration, SimTime};
use campuslab::testbed::{
    decode_checkpoint, encode_checkpoint, fingerprint, DriftRunConfig, DriftSession, Scenario,
};
use campuslab::Platform;
use std::time::Instant;

fn main() {
    let platform = Platform::new(Scenario::small());
    let t = Instant::now();
    let data = platform.collect();
    eprintln!("collect(small): {:.2?}", t.elapsed());
    let t = Instant::now();
    let dev = platform.develop(&data);
    eprintln!("develop: {:.2?}", t.elapsed());
    let t = Instant::now();
    let model = platform.train_window_model(&data);
    eprintln!("train_window_model: {:.2?}", t.elapsed());

    for (name, scenario, barrier) in [
        ("small-5s", {
            let mut s = Scenario::small();
            s.workload.duration = SimDuration::from_secs(5);
            s
        }, SimTime::from_millis(1_500)),
        ("drift_rotation", Scenario::drift_rotation(), SimTime::from_secs(6)),
    ] {
        eprintln!("--- {name} ---");
        let make = || {
            DriftSession::new(
                &scenario,
                dev.program.clone(),
                Box::new(model.clone()),
                DriftRunConfig::default(),
            )
        };
        let t = Instant::now();
        let mut session = make();
        eprintln!("  build: {:.2?}", t.elapsed());
        let t = Instant::now();
        session.run_until(barrier);
        eprintln!("  run_until({barrier:?}): {:.2?}", t.elapsed());
        let t = Instant::now();
        let cp = session.checkpoint();
        eprintln!("  checkpoint(): {:.2?}", t.elapsed());
        let t = Instant::now();
        let bytes = encode_checkpoint(&cp);
        eprintln!("  encode: {:.2?} ({} bytes)", t.elapsed(), bytes.len());
        let t = Instant::now();
        let back = decode_checkpoint(&bytes).expect("clean envelope decodes");
        eprintln!("  decode: {:.2?}", t.elapsed());
        let t = Instant::now();
        let mut revived = make();
        revived.restore(back);
        eprintln!("  build+restore: {:.2?}", t.elapsed());
        let t = Instant::now();
        let fp = fingerprint(&revived.finish());
        eprintln!("  finish: {:.2?} (timeline {} lines)", t.elapsed(), fp.0.len());

        // Grid-stepped driving (what CrashCart does) vs the single-shot
        // run above: equal bytes by contract, and this prints the price.
        let t = Instant::now();
        let mut stepped = make();
        let deadline = stepped.deadline();
        let step = SimDuration::from_secs(3);
        let mut at = SimTime::ZERO;
        let mut steps = 0u32;
        while at < deadline {
            at += step;
            let t1 = Instant::now();
            stepped.run_until(at);
            eprintln!("    step to {at:?}: {:.2?}", t1.elapsed());
            steps += 1;
        }
        let fp2 = fingerprint(&stepped.finish());
        eprintln!("  grid-stepped run ({steps} steps): {:.2?} (equal: {})", t.elapsed(), fp2 == fp);
    }
}
