//! Regenerates the `e16_resolver` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e16_resolver::run());
}
