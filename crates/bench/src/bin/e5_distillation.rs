//! Regenerates the `e5_distillation` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e5_distillation::run());
}
