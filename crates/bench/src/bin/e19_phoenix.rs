//! Regenerates the `e19_phoenix` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e19_phoenix::run());
}
