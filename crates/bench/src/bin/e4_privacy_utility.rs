//! Regenerates the `e4_privacy_utility` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e4_privacy_utility::run());
}
