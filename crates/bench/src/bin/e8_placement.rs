//! Regenerates the `e8_placement` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e8_placement::run());
}
