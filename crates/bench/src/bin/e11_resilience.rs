//! Regenerates the `e11_resilience` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e11_resilience::run());
}
