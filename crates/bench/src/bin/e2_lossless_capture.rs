//! Regenerates the `e2_lossless_capture` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e2_lossless_capture::run());
}
