//! Regenerate the committed golden-replay files under `crates/bench/golden/`.
//!
//! Each file is the canonical Observatory bundle of one instrumented
//! experiment: table, Prometheus dump, sim-time trace. The golden-replay
//! integration test asserts current runs — sequential *and* parallel —
//! reproduce these bytes exactly, so run this only when an intentional
//! change moves an experiment's output, and commit the diff with it.
//!
//! ```sh
//! cargo run --release -p campuslab-bench --bin gen_golden
//! ```

const GOLDEN_IDS: [&str; 9] = ["E1", "E3", "E7", "E14", "E15", "E16", "E17", "E18", "E19"];

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
    std::fs::create_dir_all(dir).expect("create golden dir");
    for id in GOLDEN_IDS {
        let run = campuslab_bench::observed(id).expect("golden id not in observed registry");
        let canonical = run().canonical();
        let path = format!("{dir}/{id}.golden");
        std::fs::write(&path, &canonical).expect("write golden file");
        eprintln!("{path}: {} bytes", canonical.len());
    }
}
