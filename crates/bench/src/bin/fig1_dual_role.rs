//! Regenerates the `fig1_dual_role` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::fig1_dual_role::run());
}
