//! Regenerates the `e12_multiclass` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e12_multiclass::run());
}
