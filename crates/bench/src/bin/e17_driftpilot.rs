//! Regenerates the `e17_driftpilot` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e17_driftpilot::run());
}
