//! Regenerates the `e18_tenant_plaza` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e18_tenant_plaza::run());
}
