//! Regenerates the `e13_perf_pinpoint` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e13_perf_pinpoint::run());
}
