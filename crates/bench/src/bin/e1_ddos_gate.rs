//! Regenerates the `e1_ddos_gate` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e1_ddos_gate::run());
}
