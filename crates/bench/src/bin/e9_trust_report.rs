//! Regenerates the `e9_trust_report` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e9_trust_report::run());
}
