//! Regenerates every figure/experiment table in report order and, when an
//! output path is given as the first argument, writes the combined report
//! there as well.
//!
//! Experiments fan out across cores (each is internally seeded, so the
//! tables are identical to a sequential run); set `CAMPUSLAB_JOBS=1` to
//! force sequential execution.
//!
//! ```sh
//! cargo run --release -p campuslab-bench --bin all_experiments -- results.txt
//! ```
use std::io::Write;

fn main() {
    let out_path = std::env::args().nth(1);
    let started = std::time::Instant::now();
    let reports = campuslab_bench::runner::run_all();
    let wall = started.elapsed();
    let mut combined = String::new();
    let mut cpu = std::time::Duration::ZERO;
    for report in &reports {
        let header = format!(
            "\n================ {}: {} ================\n\n",
            report.id, report.title
        );
        print!("{header}");
        println!("{}", report.body);
        println!("[{} regenerated in {:?}]", report.id, report.elapsed);
        combined.push_str(&header);
        combined.push_str(&report.body);
        combined.push('\n');
        cpu += report.elapsed;
    }
    eprintln!(
        "regenerated {} experiments in {wall:?} wall ({cpu:?} of experiment time)",
        reports.len()
    );
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create report file");
        f.write_all(combined.as_bytes()).expect("write report");
        eprintln!("combined report written to {path}");
    }
    // Observatory export: every instrumented experiment's metrics dump and
    // sim-time trace, as one JSON file (path via CAMPUSLAB_OBS_JSON).
    let bundles: Vec<_> = reports.iter().filter_map(|r| r.obs.as_ref()).collect();
    match campuslab_bench::obs_export::write_obs_json(&bundles) {
        Ok(path) => eprintln!(
            "observatory export ({} experiments) written to {path}",
            bundles.len()
        ),
        Err(e) => eprintln!("observatory export failed: {e}"),
    }
}
