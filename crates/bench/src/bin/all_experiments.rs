//! Regenerates every figure/experiment table in report order and, when an
//! output path is given as the first argument, writes the combined report
//! there as well.
//!
//! ```sh
//! cargo run --release -p campuslab-bench --bin all_experiments -- results.txt
//! ```
use std::io::Write;

fn main() {
    let out_path = std::env::args().nth(1);
    let mut combined = String::new();
    for (id, title, runner) in campuslab_bench::all() {
        let header = format!("\n================ {id}: {title} ================\n\n");
        print!("{header}");
        let started = std::time::Instant::now();
        let body = runner();
        println!("{body}");
        println!("[{id} regenerated in {:?}]", started.elapsed());
        combined.push_str(&header);
        combined.push_str(&body);
        combined.push('\n');
    }
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create report file");
        f.write_all(combined.as_bytes()).expect("write report");
        eprintln!("combined report written to {path}");
    }
}
