//! Regenerates the `e6_dataplane_compile` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e6_dataplane_compile::run());
}
