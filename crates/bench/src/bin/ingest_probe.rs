//! Quick A/B of sequential vs parallel batch ingest outside criterion:
//! best-of-N wall clock on the same 80k-record workload the datastore
//! bench uses, for chasing ingest regressions without sampling noise.

use campuslab::capture::{Direction, PacketRecord, TcpFlags};
use campuslab::datastore::DataStore;
use std::net::IpAddr;
use std::time::Instant;

fn records(n: u64) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| PacketRecord {
            ts_ns: i * 10_000,
            direction: Direction::Inbound,
            src: IpAddr::from([10, 1, (i % 16) as u8 + 1, (i % 200) as u8 + 10]),
            dst: IpAddr::from([203, 0, 113, (i % 24) as u8 + 1]),
            protocol: if i % 4 == 0 { 17 } else { 6 },
            src_port: (1024 + (i * 31) % 60_000) as u16,
            dst_port: [443, 80, 53, 22][(i % 4) as usize],
            wire_len: 60 + (i % 1400) as u32,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: i / 20,
            label_app: (i % 7 + 1) as u16,
            label_attack: u16::from(i % 100 == 0),
        })
        .collect()
}

fn batches_of(recs: &[PacketRecord], batch: usize) -> Vec<Vec<PacketRecord>> {
    recs.chunks(batch).map(|c| c.to_vec()).collect()
}

fn main() {
    let big = records(80_000);
    for workers in [1usize, 4] {
        let mut best = f64::MAX;
        for _ in 0..15 {
            let batches = batches_of(&big, 10_000);
            let t0 = Instant::now();
            let mut ds = DataStore::new();
            ds.ingest_packet_batches_with(batches, workers);
            std::hint::black_box(ds.packet_count());
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("workers={workers}: best {best:.2} ms");
    }
}
