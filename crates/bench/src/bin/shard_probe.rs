//! Shard-engine probe: runs the bench campus second sequentially and
//! under 1/2/4/8 shards, printing wall clock and the [`ShardReport`]
//! (windows, serial phases, cross-shard traffic) for each, and asserting
//! the final statistics are byte-identical throughout. The fastest way to
//! see what the coordinator is doing on a given machine.

use campuslab::netsim::prelude::*;
use campuslab::traffic::{TrafficGenerator, WorkloadConfig};
use std::time::Instant;

fn small_campus() -> Campus {
    Campus::build(CampusConfig {
        dist_count: 2,
        access_per_dist: 2,
        hosts_per_access: 4,
        external_hosts: 8,
        ..CampusConfig::default()
    })
}

fn main() {
    let campus = small_campus();
    let mut gen = TrafficGenerator::new(
        &campus,
        WorkloadConfig {
            duration: SimDuration::from_secs(1),
            sessions_per_sec: 20.0,
            ..WorkloadConfig::default()
        },
    );
    let injections = gen.generate().into_injections();

    let mut net = small_campus().net;
    for inj in injections.clone() {
        net.inject(inj.at, inj.node, inj.packet);
    }
    let t0 = Instant::now();
    net.run_sequential(&mut NullHooks, None);
    let seq = net.stats;
    println!("sequential: {:?} delivered={}", t0.elapsed(), seq.delivered);

    for shards in [1usize, 2, 4, 8] {
        let mut net = small_campus().net;
        for inj in injections.clone() {
            net.inject(inj.at, inj.node, inj.packet);
        }
        let t0 = Instant::now();
        net.run_sharded(&mut NullHooks, None, shards);
        let elapsed = t0.elapsed();
        println!(
            "sharded({shards}): {:?} delivered={} report={:?}",
            elapsed,
            net.stats.delivered,
            net.shard_report()
        );
        assert_eq!(net.stats, seq, "stats diverged at {shards} shards");
    }
}
