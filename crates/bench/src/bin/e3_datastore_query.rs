//! Regenerates the `e3_datastore_query` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e3_datastore_query::run());
}
