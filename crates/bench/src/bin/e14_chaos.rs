//! Regenerates the `e14_chaos` experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", campuslab_bench::e14_chaos::run());
}
