//! Minimal fixed-width table rendering for experiment reports.

/// A simple right-aligned table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column widths; first column left-aligned.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..n {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("  {:>width$}", cells[i], width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // All data lines equal length (alignment).
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.123), "12.3%");
    }
}
