//! **F2 — Figure 2, executable**: the slow offline development loop versus
//! the fast online control loop — wall-clock time and model size on one
//! side, per-packet decision latency on the other.

use crate::table::{f, pct, Table};
use campuslab::control::{run_development_loop, DevLoopConfig, TeacherKind};
use campuslab::dataplane::fields_from_record;
use campuslab::features::{packet_dataset, packet_features, LabelMode};
use campuslab::ml::{Classifier, ForestConfig, MlpConfig, RandomForest};
use campuslab::testbed::{collect, Scenario};
use std::time::Instant;

/// Median nanoseconds per call of `op` over the inputs.
fn ns_per_op<T>(inputs: &[T], mut op: impl FnMut(&T)) -> f64 {
    let warm = inputs.len().min(1_000);
    for x in &inputs[..warm] {
        op(x);
    }
    let start = Instant::now();
    for x in inputs {
        op(x);
    }
    start.elapsed().as_nanos() as f64 / inputs.len() as f64
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("F2: development loop (slow) vs control loop (fast)\n\n");
    let data = collect(&Scenario::small());

    // --- the slow loop, timed stage by stage --------------------------------
    let t0 = Instant::now();
    let dataset = packet_dataset(&data.packets, LabelMode::BinaryAttack);
    let featurize = t0.elapsed();
    let t0 = Instant::now();
    let forest = RandomForest::fit(&dataset, ForestConfig::default());
    let teach = t0.elapsed();
    let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
    let mlp_dev = run_development_loop(
        &data.packets,
        &DevLoopConfig {
            teacher: TeacherKind::Mlp(MlpConfig { epochs: 40, ..Default::default() }),
            ..Default::default()
        },
    );

    let mut t = Table::new(&["development loop stage", "wall time", "artifact"]);
    t.row(vec![
        "featurize capture".into(),
        format!("{featurize:?}"),
        format!("{} rows x {} features", dataset.len(), dataset.n_features()),
    ]);
    t.row(vec![
        "train black box (forest)".into(),
        format!("{teach:?}"),
        format!("{} trees, {} nodes", forest.n_trees(), forest.total_nodes()),
    ]);
    t.row(vec![
        "full loop w/ forest teacher".into(),
        format!("{:?}", dev.wall),
        format!(
            "tree depth {} ({} nodes) -> {} TCAM entries",
            dev.distillation.student_depth, dev.distillation.student_nodes,
            dev.program.n_entries()
        ),
    ]);
    t.row(vec![
        "full loop w/ MLP teacher".into(),
        format!("{:?}", mlp_dev.wall),
        format!("fidelity {}", pct(mlp_dev.fidelity)),
    ]);
    out.push_str(&t.render());

    // --- the fast loop: per-decision latency ---------------------------------
    let sample: Vec<_> = data.packets.iter().take(20_000).collect();
    let rows: Vec<Vec<f64>> = sample.iter().map(|r| packet_features(r)).collect();
    let field_rows: Vec<_> = sample.iter().map(|r| fields_from_record(r)).collect();
    let mut runtime = dev.program.clone().into_runtime();

    let pipeline_ns = ns_per_op(&field_rows, |fields| {
        std::hint::black_box(runtime.process(fields));
    });
    let tree_ns = ns_per_op(&rows, |row| {
        std::hint::black_box(dev.student.predict(row));
    });
    let forest_ns = ns_per_op(&rows, |row| {
        std::hint::black_box(forest.predict(row));
    });

    let mut t = Table::new(&["fast-loop inference path", "ns/packet", "deployable?"]);
    t.row(vec!["compiled pipeline (switch model)".into(), f(pipeline_ns, 0), "yes - match-action".into()]);
    t.row(vec!["distilled tree (controller CPU)".into(), f(tree_ns, 0), "yes - software".into()]);
    t.row(vec!["random forest (black box)".into(), f(forest_ns, 0), "no - too large for data plane".into()]);
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nshape check: the development loop costs seconds-to-minutes (offline, fine);\nthe deployed decision costs ~{:.0} ns vs the black box's ~{:.0} ns per packet,\nand only the distilled artifact compiles to the switch at all.\n",
        pipeline_ns.min(tree_ns),
        forest_ns
    ));
    out
}
