//! **F1 — Figure 1, executable**: the campus network serving its dual role.
//! Left half: privacy-preserving collection into the data store. Right
//! half: a deployable model road-tested on the same campus.

use crate::table::{pct, Table};
use campuslab::datastore::summarize;
use campuslab::privacy::{ScrubPolicy, Scrubber};
use campuslab::testbed::{deployment_decision, GateCriteria, Scenario};
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("F1: the campus network's dual role\n\n");
    let platform = Platform::new(Scenario::small());

    // --- data source half -------------------------------------------------
    let data = platform.collect();
    let store = platform.store(&data);
    let scrubber = Scrubber::new(0xF161, ScrubPolicy::internal_research());
    let scrubbed: Vec<_> = data
        .packets
        .iter()
        .map(|r| scrubber.scrub_packet(r.clone()))
        .collect();
    let anonymized = scrubbed.len();
    let summary = summarize(&store);
    let storage = store.storage();

    let mut t = Table::new(&["data-source stage", "value"]);
    t.row(vec!["packets scheduled".into(), data.scheduled.to_string()]);
    t.row(vec!["network delivery ratio".into(), pct(data.net.delivery_ratio())]);
    t.row(vec!["border packets observed".into(), data.monitor.observed.to_string()]);
    t.row(vec!["captured (lossless?)".into(), format!("{} (ring loss {})", data.monitor.captured, pct(data.ring.loss_rate()))]);
    t.row(vec!["flow records assembled".into(), data.flows.len().to_string()]);
    t.row(vec!["DNS metadata extracted".into(), data.dns.len().to_string()]);
    t.row(vec!["records anonymized (prefix-preserving)".into(), anonymized.to_string()]);
    t.row(vec!["store footprint (approx bytes)".into(), storage.approx_bytes.to_string()]);
    t.row(vec!["labeled attack packets in store".into(), summary.malicious_packets.to_string()]);
    t.row(vec!["mean border rate".into(), format!("{:.2} Mbps", summary.mean_bps() / 1e6)]);
    out.push_str(&t.render());

    // --- testbed half ------------------------------------------------------
    let dev = platform.develop(&data);
    let outcome = platform.road_test_switch(&dev);
    let decision = deployment_decision(&outcome, GateCriteria::default());

    let mut t = Table::new(&["testbed stage", "value"]);
    t.row(vec!["black-box (forest) attack F1".into(), crate::table::f(dev.teacher_eval.f1_attack, 3)]);
    t.row(vec!["deployable (tree) attack F1".into(), crate::table::f(dev.student_eval.f1_attack, 3)]);
    t.row(vec!["student/teacher fidelity".into(), pct(dev.fidelity)]);
    t.row(vec!["compiled TCAM entries".into(), dev.program.n_entries().to_string()]);
    t.row(vec!["road-test attack suppression".into(), pct(outcome.suppression())]);
    t.row(vec!["road-test benign collateral".into(), outcome.benign_packets_dropped.to_string()]);
    t.row(vec!["deployment gate".into(), if decision.approved { "APPROVED".into() } else { format!("REJECTED: {:?}", decision.reasons) }]);
    out.push('\n');
    out.push_str(&t.render());
    out.push_str("\nshape check: collection is lossless at campus scale; the distilled model\nkeeps the black box's accuracy, compiles to the switch, and passes the gate.\n");
    out
}
