//! **E4 — privacy-preserving collection**: verifies the prefix-preservation
//! invariant at scale, measures scrubbing throughput, and quantifies the
//! model-utility cost of training on anonymized rather than raw records.

use crate::table::{f, pct, Table};
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::privacy::{common_prefix_len_v4, PrefixPreservingAnon, ScrubPolicy, Scrubber};
use campuslab::testbed::{collect, Scenario};
use std::net::Ipv4Addr;
use std::time::Instant;

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E4: privacy-preserving data collection\n\n");

    // --- invariant verification at scale ------------------------------------
    let anon = PrefixPreservingAnon::new(0xE401_2345_6789_ABCD);
    let mut checked = 0u64;
    let mut violations = 0u64;
    for a in 0..200u32 {
        for b in 0..50u32 {
            let x = Ipv4Addr::from(0x0a01_0000 + a * 251 + 1);
            let y = Ipv4Addr::from(0x0a01_0000 + a * 251 + b * 13 + 7);
            let before = common_prefix_len_v4(x, y);
            let after = common_prefix_len_v4(anon.anonymize_v4(x), anon.anonymize_v4(y));
            checked += 1;
            if before != after {
                violations += 1;
            }
        }
    }
    out.push_str(&format!(
        "prefix-preservation invariant: {checked} random pairs checked, {violations} violations\n\n"
    ));

    // --- utility cost --------------------------------------------------------
    let data = collect(&Scenario::small());
    let scrubber = Scrubber::new(0xE4_5EED, ScrubPolicy::internal_research());
    let start = Instant::now();
    let scrubbed: Vec<_> = data
        .packets
        .iter()
        .map(|r| scrubber.scrub_packet(r.clone()))
        .collect();
    let scrub_rate = data.packets.len() as f64 / start.elapsed().as_secs_f64();

    let raw = run_development_loop(&data.packets, &DevLoopConfig::default());
    let anon_dev = run_development_loop(&scrubbed, &DevLoopConfig::default());

    let mut t = Table::new(&["training data", "teacher F1", "student F1", "fidelity", "TCAM entries"]);
    t.row(vec![
        "raw records (IT-only view)".into(),
        f(raw.teacher_eval.f1_attack, 3),
        f(raw.student_eval.f1_attack, 3),
        pct(raw.fidelity),
        raw.program.n_entries().to_string(),
    ]);
    t.row(vec![
        "anonymized records (researcher view)".into(),
        f(anon_dev.teacher_eval.f1_attack, 3),
        f(anon_dev.student_eval.f1_attack, 3),
        pct(anon_dev.fidelity),
        anon_dev.program.n_entries().to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nscrubbing throughput: {:.0} records/sec (well above capture rates)\n",
        scrub_rate
    ));
    out.push_str(
        "\nshape check: zero invariant violations; the researcher view loses little\nto no detection utility because the detector keys on ports, sizes and\nprotocol structure, which anonymization deliberately preserves.\n",
    );
    out
}
