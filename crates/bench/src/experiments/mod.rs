//! One module per figure/experiment. Every module exposes
//! `pub fn run() -> String` returning the rendered report section.

pub mod fig1_dual_role;
pub mod fig2_loops;
pub mod e1_ddos_gate;
pub mod e2_lossless_capture;
pub mod e3_datastore_query;
pub mod e4_privacy_utility;
pub mod e5_distillation;
pub mod e6_dataplane_compile;
pub mod e7_cross_campus;
pub mod e8_placement;
pub mod e9_trust_report;
pub mod e10_mitigation_styles;
pub mod e11_resilience;
pub mod e12_multiclass;
pub mod e13_perf_pinpoint;
pub mod e14_chaos;
pub mod e15_rollout_guard;
pub mod e16_resolver;
pub mod e17_driftpilot;
pub mod e18_tenant_plaza;
pub mod e19_phoenix;
