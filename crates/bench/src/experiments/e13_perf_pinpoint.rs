//! **E13 — performance pinpointing (§3)**: universities "experience
//! performance issues ... there is a need to be able to pinpoint
//! performance problems and notify the service or cloud provider(s)".
//! The tap's TCP handshake RTT measurements make congestion visible: the
//! same workload runs over progressively under-provisioned uplinks, and
//! the measured handshake RTT distribution shifts exactly where queueing
//! theory says it must.

use crate::table::{f, pct, Table};
use campuslab::testbed::{collect, AttackScenario, Scenario};

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e6
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E13: pinpointing upstream congestion from handshake RTTs\n\n");
    let mut t = Table::new(&[
        "uplink",
        "handshakes",
        "median RTT",
        "p95 RTT",
        "queue drops",
        "delivery",
    ]);
    for (label, gbps, mbps) in [
        ("10 Gbps (healthy)", 10u64, None),
        ("200 Mbps", 10, Some(200u64)),
        ("100 Mbps", 10, Some(100)),
        ("60 Mbps (degraded)", 10, Some(60)),
        ("40 Mbps (saturated)", 10, Some(40)),
    ] {
        let mut scenario = Scenario::small();
        scenario.attack = AttackScenario::None; // performance, not security
        scenario.campus.upstream_gbps = gbps;
        scenario.campus.upstream_mbps = mbps;
        let data = collect(&scenario);
        let mut rtts: Vec<u64> = data.rtts.iter().map(|r| r.rtt_ns).collect();
        rtts.sort_unstable();
        t.row(vec![
            label.to_string(),
            rtts.len().to_string(),
            format!("{:.2} ms", percentile(&rtts, 0.5)),
            format!("{:.2} ms", percentile(&rtts, 0.95)),
            data.net.dropped_queue.to_string(),
            pct(data.net.delivery_ratio()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n(the workload offers ~{} Mbps at the border; the synthesized external RTT is 15 ms)\n",
        f(45.0, 0)
    ));
    out.push_str(
        "\nshape check: at healthy provisioning the handshake RTT sits at the path\nlatency. As the uplink approaches the offered load, loss appears first\n(queue drops, shrinking delivery) with a mild RTT drift - the surviving\nhandshakes are the ones that dodged the bursts (survivorship). Once the\nlink saturates outright, the bufferbloated queue stays full and even the\nsurvivors carry tens of milliseconds of standing delay. Either signature,\nread passively at the tap, is the evidence an operator needs to 'notify\nthe provider' without sending a single active probe.\n",
    );
    out
}
