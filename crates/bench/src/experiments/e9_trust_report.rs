//! **E9 — §5 step (iv)**: the deployed model "routinely queried for the
//! list of pieces of evidence that the model used to arrive at its
//! decisions". Audits every flagged decision against analyst expectations
//! and prints sample evidence chains.

use crate::table::{pct, Table};
use campuslab::testbed::{trust_report, Scenario};
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E9: operator trust via evidence audits\n\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);

    let report = trust_report(&dev.student, &dev.feature_names, &data.packets, 1, 2);
    let mut t = Table::new(&["trust metric", "value"]);
    t.row(vec!["decisions audited".into(), report.decisions_audited.to_string()]);
    t.row(vec!["true positives".into(), report.true_positives.to_string()]);
    t.row(vec!["false positives".into(), report.false_positives.to_string()]);
    t.row(vec!["false negatives".into(), report.false_negatives.to_string()]);
    t.row(vec![
        "evidence cites expected features".into(),
        pct(report.evidence_match_rate),
    ]);
    out.push_str(&t.render());

    out.push_str("\nsample evidence chains (what the operator sees on query):\n\n");
    for sample in &report.samples {
        out.push_str(&format!(
            "[{}{}] {}",
            if sample.truly_attack { "attack" } else { "benign" },
            if sample.evidence_matches { ", evidence matches expectation" } else { "" },
            sample.rendered
        ));
        out.push('\n');
    }
    out.push_str(
        "shape check: (near) every true detection justifies itself with the features\nan analyst would check by hand - the paper's mechanism for converting\noperator distrust into de-facto knowledge transfer.\n",
    );
    out
}
