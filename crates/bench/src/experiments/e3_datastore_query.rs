//! **E3 — the §5 data-store claim**: stored data is "linked and indexed to
//! provide fast and flexible search capabilities". Measures indexed versus
//! full-scan latency across query shapes on a sizable store.

use crate::table::{f, Table};
use campuslab::capture::{Direction, PacketRecord, TcpFlags};
use campuslab::datastore::{DataStore, PacketQuery};
use std::net::IpAddr;
use std::time::Instant;

fn synthetic_store(n: u64) -> DataStore {
    let mut batch = Vec::with_capacity(n as usize);
    for i in 0..n {
        batch.push(PacketRecord {
            ts_ns: i * 10_000,
            direction: if i % 3 == 0 { Direction::Inbound } else { Direction::Outbound },
            src: IpAddr::from([10, 1, (i % 16) as u8 + 1, (i % 200) as u8 + 10]),
            dst: IpAddr::from([203, 0, 113, (i % 24) as u8 + 1]),
            protocol: if i % 4 == 0 { 17 } else { 6 },
            src_port: (1024 + (i * 31) % 60_000) as u16,
            dst_port: [443, 80, 53, 22, 25, 123][(i % 6) as usize],
            wire_len: 60 + (i % 1400) as u32,
            ttl: 64,
            tcp_flags: TcpFlags { syn: i % 50 == 0, ..Default::default() },
            flow_id: i / 20,
            label_app: (i % 7 + 1) as u16,
            label_attack: u16::from(i % 100 == 0),
        });
    }
    let mut ds = DataStore::new();
    ds.ingest_packets(batch);
    ds
}

fn measure(ds: &DataStore, q: &PacketQuery, indexed: bool, reps: u32) -> (f64, usize) {
    let mut hits = 0;
    let start = Instant::now();
    for _ in 0..reps {
        hits = if indexed {
            ds.query_packets(q).len()
        } else {
            ds.scan_packets(q).len()
        };
    }
    (start.elapsed().as_secs_f64() * 1e6 / f64::from(reps), hits)
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let n = 500_000u64;
    let mut out = format!("E3: indexed vs full-scan search over {n} packet records\n\n");
    let ds = synthetic_store(n);
    let queries: Vec<(&str, PacketQuery)> = vec![
        (
            "host lookup",
            PacketQuery::for_host("10.1.5.14".parse().unwrap()),
        ),
        (
            "host + time window",
            PacketQuery::for_host("10.1.5.14".parse().unwrap()).window(1_000_000_000, 3_000_000_000),
        ),
        ("service port (dst 53)", PacketQuery::default().port(53)),
        ("attack packets only", PacketQuery::default().malicious()),
        (
            "attack in window",
            PacketQuery::default().malicious().window(0, 2_000_000_000),
        ),
        (
            "time window only",
            PacketQuery::in_window(1_000_000_000, 1_200_000_000),
        ),
    ];
    let mut t = Table::new(&["query shape", "hits", "scan us", "indexed us", "speedup"]);
    for (name, q) in &queries {
        let (scan_us, scan_hits) = measure(&ds, q, false, 5);
        let (idx_us, idx_hits) = measure(&ds, q, true, 5);
        assert_eq!(scan_hits, idx_hits, "index disagrees with scan for {name}");
        t.row(vec![
            name.to_string(),
            idx_hits.to_string(),
            f(scan_us, 1),
            f(idx_us, 1),
            format!("{:.0}x", scan_us / idx_us.max(0.001)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: selective queries accelerate by orders of magnitude; the\ntime-window query is near-free either way because the table is time-sorted.\nIndexes return exactly what the scan returns (asserted in the harness).\n",
    );
    out
}
