//! **E3 — the §5 data-store claim**: stored data is "linked and indexed to
//! provide fast and flexible search capabilities". Runs query shapes
//! against the *real* store built from a collected scenario and against a
//! campus-scale synthetic store, reporting deterministic work metrics —
//! records examined, segments pruned — instead of wall time, so the whole
//! bundle golden-replays byte-for-byte (wall-clock speedups live in the
//! `datastore` criterion bench, `BENCH_datastore.json`).
//!
//! Trace spans use the work metric as their extent: span `e3[<shape>]`
//! runs from 0 to `records_examined` "ns" — a sim-cost ruler, not a
//! clock, and exactly as deterministic as the rest of the bundle.

use crate::obs_export::ObsBundle;
use crate::table::{f, Table};
use campuslab::capture::{Direction, PacketRecord, TcpFlags};
use campuslab::datastore::{DataStore, PacketQuery};
use campuslab::obs::Tracer;
use campuslab::testbed::{build_store, collect, Scenario};
use std::net::IpAddr;

/// Campus-scale synthetic capture: deterministic by construction, ingested
/// through the sharded parallel batch path (one batch per 50k records).
fn synthetic_store(n: u64) -> DataStore {
    let mut batches: Vec<Vec<PacketRecord>> = Vec::new();
    let mut batch = Vec::new();
    for i in 0..n {
        batch.push(PacketRecord {
            ts_ns: i * 10_000,
            direction: if i % 3 == 0 { Direction::Inbound } else { Direction::Outbound },
            src: IpAddr::from([10, 1, (i % 16) as u8 + 1, (i % 200) as u8 + 10]),
            dst: IpAddr::from([203, 0, 113, (i % 24) as u8 + 1]),
            protocol: if i % 4 == 0 { 17 } else { 6 },
            src_port: (1024 + (i * 31) % 60_000) as u16,
            dst_port: [443, 80, 53, 22, 25, 123][(i % 6) as usize],
            wire_len: 60 + (i % 1400) as u32,
            ttl: 64,
            tcp_flags: TcpFlags { syn: i % 50 == 0, ..Default::default() },
            flow_id: i / 20,
            label_app: (i % 7 + 1) as u16,
            label_attack: u16::from(i % 100 == 0),
        });
        if batch.len() == 50_000 {
            batches.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    let mut ds = DataStore::new();
    ds.ingest_packet_batches(batches);
    ds
}

/// Run every shape through indexed and scan paths (both Observatory-
/// booked), assert agreement, and append one table row per shape.
fn sweep(
    t: &mut Table,
    tracer: &mut Tracer,
    ds: &mut DataStore,
    store_label: &str,
    shapes: Vec<(&str, PacketQuery)>,
) {
    for (name, q) in shapes {
        let (idx_hits, idx) = {
            let (hits, stats) = ds.query_packets_observed(&q);
            (hits.iter().map(|r| r.ts_ns).collect::<Vec<u64>>(), stats)
        };
        let (scan_hits, scan) = {
            let (hits, stats) = ds.scan_packets_observed(&q);
            (hits.iter().map(|r| r.ts_ns).collect::<Vec<u64>>(), stats)
        };
        assert_eq!(idx_hits, scan_hits, "index disagrees with scan for {name}");
        tracer.record(
            format!("e3[{store_label}/{name}]"),
            0,
            idx.records_examined as u64,
        );
        t.row(vec![
            format!("{store_label}: {name}"),
            idx.hits.to_string(),
            scan.records_examined.to_string(),
            idx.records_examined.to_string(),
            format!("{}/{}", idx.segments_pruned, idx.segments_total),
            format!("{}x", f(idx.work_reduction_vs(&scan), 0)),
        ]);
    }
}

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle.
pub fn run_observed() -> ObsBundle {
    let mut out = String::from(
        "E3: segment-indexed search vs full scan (deterministic work metrics)\n\n",
    );
    let mut tracer = Tracer::new();
    let mut t = Table::new(&[
        "query shape",
        "hits",
        "scan recs",
        "indexed recs",
        "segs pruned",
        "work reduction",
    ]);

    // (a) The real store: a collected scenario landed through the
    // Figure-1 ingest path, queried for its ground truth.
    let scenario = Scenario::small();
    let data = collect(&scenario);
    let mut real = build_store(&data);
    let victim = std::net::IpAddr::V4(data.victim.expect("small scenario has a victim"));
    let span_ns = data.packets.last().map(|p| p.ts_ns).unwrap_or(0);
    let real_shapes = vec![
        ("victim host", PacketQuery::for_host(victim)),
        (
            "victim in attack window",
            PacketQuery::for_host(victim).window(span_ns / 4, span_ns / 2),
        ),
        ("dns responses (port 53)", PacketQuery::default().port(53)),
        ("attack packets", PacketQuery::default().malicious()),
        (
            "first quarter",
            PacketQuery::in_window(0, span_ns / 4),
        ),
    ];
    sweep(&mut t, &mut tracer, &mut real, "real", real_shapes);

    // (b) Campus scale: 500k synthetic records, parallel batch ingest.
    let n = 500_000u64;
    let mut synth = synthetic_store(n);
    let synth_shapes = vec![
        ("host lookup", PacketQuery::for_host("10.1.5.14".parse().unwrap())),
        (
            "host + time window",
            PacketQuery::for_host("10.1.5.14".parse().unwrap())
                .window(1_000_000_000, 3_000_000_000),
        ),
        ("service port (dst 53)", PacketQuery::default().port(53)),
        ("attack packets only", PacketQuery::default().malicious()),
        (
            "attack in window",
            PacketQuery::default().malicious().window(0, 2_000_000_000),
        ),
        ("time window only", PacketQuery::in_window(1_000_000_000, 1_200_000_000)),
    ];
    sweep(&mut t, &mut tracer, &mut synth, "500k", synth_shapes);

    out.push_str(&t.render());
    out.push_str(&format!(
        "\nreal store: {} packets in {} segments; synthetic: {} packets in {} segments.\n",
        real.packet_count(),
        real.packet_segment_count(),
        synth.packet_count(),
        synth.packet_segment_count(),
    ));
    out.push_str(
        "\nshape check: selective shapes examine orders of magnitude fewer records\nthan the scan (postings + segment pruning); window shapes prune whole\nsegments by time bounds. Work metrics are deterministic, so this table is\ngolden-pinned; wall-clock speedups are tracked by the datastore bench.\nIndexes return exactly what the scan returns (asserted in the harness).\n",
    );

    tracer.merge_from(&data.obs.tracer);
    let prom = format!(
        "# run: collect[small]\n{}# run: datastore[real]\n{}# run: datastore[500k]\n{}",
        data.obs.prom(),
        real.obs.render(),
        synth.obs.render()
    );
    ObsBundle { id: "E3", table: out, prom, trace: tracer.render_json() }
}
