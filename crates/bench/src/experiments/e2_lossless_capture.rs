//! **E2 — the §5 monitoring claim**: "continuous, lossless, full packet
//! capture at scale ... at link speeds of up to 100 Gbps or higher".
//! Sweeps offered load against appliance sizings and reports monitoring
//! loss, locating the lossless envelope relative to the campus range
//! (10–20 Gbps).

use crate::table::{pct, Table};
use campuslab::capture::{CaptureArray, FlowKey, RingConfig};
use campuslab::netsim::SimTime;

/// Mean packet size assumed when converting Gbps to packets/sec (IMIX-ish).
const MEAN_PACKET_BYTES: f64 = 800.0;

fn loss_at(gbps: f64, rings: usize, cfg: RingConfig) -> f64 {
    let pps = gbps * 1e9 / 8.0 / MEAN_PACKET_BYTES;
    let gap_ns = (1e9 / pps).max(1.0) as u64;
    let mut arr = CaptureArray::new(rings, cfg);
    let n = 300_000u64;
    for i in 0..n {
        let key = FlowKey {
            src: std::net::IpAddr::from([203, 0, 113, (i % 251) as u8]),
            dst: std::net::IpAddr::from([10, 1, (i % 17) as u8, (i % 97) as u8]),
            protocol: if i % 5 == 0 { 17 } else { 6 },
            src_port: (1024 + (i * 7919) % 60_000) as u16,
            dst_port: [53, 443, 80, 22][(i % 4) as usize],
        };
        arr.offer(SimTime(i * gap_ns), &key);
    }
    arr.stats().loss_rate()
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E2: the lossless capture envelope\n\n");
    out.push_str(&format!(
        "offered load converted at {MEAN_PACKET_BYTES:.0} B mean packet size; 300k packets per cell\n\n",
    ));
    let configs: Vec<(&str, usize, RingConfig)> = vec![
        ("1 ring, small (1024 @ 0.5 Mpps)", 1, RingConfig { capacity: 1024, drain_pps: 500_000.0 }),
        ("4 rings, default (4096 @ 1.5 Mpps)", 4, RingConfig::default()),
        ("8 rings, default (4096 @ 1.5 Mpps)", 8, RingConfig::default()),
        ("16 rings, big (8192 @ 2 Mpps)", 16, RingConfig { capacity: 8192, drain_pps: 2_000_000.0 }),
    ];
    let loads = [1.0f64, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0];

    let mut headers: Vec<&str> = vec!["appliance sizing"];
    let load_labels: Vec<String> = loads.iter().map(|g| format!("{g:.0} Gbps")).collect();
    headers.extend(load_labels.iter().map(String::as_str));
    let mut t = Table::new(&headers);
    let mut lossless_at_campus = 0;
    for (name, rings, cfg) in &configs {
        let mut cells = vec![name.to_string()];
        for &gbps in &loads {
            let loss = loss_at(gbps, *rings, *cfg);
            if (10.0..=20.0).contains(&gbps) && loss == 0.0 {
                lossless_at_campus += 1;
            }
            cells.push(pct(loss));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nshape check: every reasonably-sized appliance is lossless through the\ncampus range (10-20 Gbps; {lossless_at_campus} of {} campus-range cells lossless), and\nloss appears an order of magnitude higher - the paper's argument that a\ncampus is the right scale to capture *everything*.\n",
        2 * configs.len()
    ));
    out
}
