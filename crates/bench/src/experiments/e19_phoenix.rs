//! **E19 — PhoenixRun: crash-fault tolerance** (ISSUE 10): every earlier
//! experiment assumes the process survives its run. E19 kills it — at
//! every checkpoint boundary of the E17 drift campaign, and mid-append
//! in the datastore's write-ahead log — and proves recovery is exact.
//!
//! Three legs:
//!
//! 1. **Kill-point sweep.** A [`DriftSession`] (the resumable form of
//!    the E17 drift road test) is checkpointed on a fixed sim-time grid;
//!    at each boundary the process "dies" (only the encoded checkpoint
//!    bytes survive), a fresh session restores them and resumes. Every
//!    resumed fingerprint — timeline, Prometheus dump, trace JSON — must
//!    equal the uninterrupted run's byte for byte.
//! 2. **Envelope honesty.** The checkpoint decoder is a total function:
//!    truncation, bit flips and version skew each come back as a typed
//!    [`PhoenixError`], never a panic, never a silently wrong document.
//! 3. **WAL recovery.** A [`WalStore`] ingests the collected capture,
//!    seals segments, then has its tail torn mid-frame. Reopening must
//!    replay every sealed frame, cut the tail back to the last good
//!    prefix, surface the damage in the recovery report and on
//!    `ds_persist_corrupt_total` — and lose nothing that was durably
//!    appended before the torn frame.
//!
//! The whole bundle is golden-pinned byte-for-byte under sequential,
//! parallel, and sharded executors (ci.sh runs the sweep under
//! `CAMPUSLAB_SHARDS=1/4/8`), so the checkpoint images themselves are
//! pinned executor-independent.

use crate::obs_export::ObsBundle;
use crate::table::Table;
use campuslab::datastore::{PersistError, WalConfig, WalStore};
use campuslab::netsim::SimDuration;
use campuslab::testbed::{
    decode_checkpoint, encode_checkpoint, CrashCart, DriftRunConfig, DriftSession, PhoenixError,
    Scenario, PHOENIX_VERSION,
};
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle.
pub fn run_observed() -> ObsBundle {
    let mut out =
        String::from("E19: PhoenixRun crash-fault tolerance (checkpoint/restore + WAL)\n\n");

    // The E17 lineage: a program and window model developed offline, then
    // deployed into the rotating-reflection drift campaign.
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);
    let scenario = Scenario::drift_rotation();
    let program = dev.program.clone();
    let make = move || {
        DriftSession::new(
            &scenario,
            program.clone(),
            Box::new(model.clone()),
            DriftRunConfig::default(),
        )
    };

    // Leg 1: the kill-point sweep on a 3 s checkpoint grid. The baseline
    // is computed once and every kill is diffed against it (the same
    // comparison `CrashCart::sweep` makes, without re-running the
    // baseline for the bundle below).
    let cart = CrashCart::new(make, SimDuration::from_secs(3));
    let boundaries = cart.boundaries();
    let baseline = cart.uninterrupted();
    let mut mismatches = Vec::new();
    for k in 0..boundaries.len() {
        match cart.killed_at(k) {
            Ok(fp) if fp == baseline => {}
            _ => mismatches.push(k),
        }
    }

    // A representative checkpoint for the size row and the decoder leg:
    // taken mid-campaign, at the second boundary.
    let mut probe = cart.make_session();
    probe.run_until(boundaries[1]);
    let bytes = encode_checkpoint(&probe.checkpoint());
    drop(probe);

    let mut t = Table::new(&["leg", "boundaries", "kills", "mismatches", "checkpoint bytes"]);
    t.row(vec![
        "kill-point sweep".into(),
        boundaries.len().to_string(),
        boundaries.len().to_string(),
        mismatches.len().to_string(),
        bytes.len().to_string(),
    ]);
    out.push_str(&t.render());

    // Leg 2: the decoder on the three crash-shaped corruptions.
    let truncated = decode_checkpoint(&bytes[..bytes.len() / 2]).err();
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    let bitflip = decode_checkpoint(&flipped).err();
    let mut skew = bytes.clone();
    skew[4..8].copy_from_slice(&(PHOENIX_VERSION + 1).to_le_bytes());
    let version = decode_checkpoint(&skew).err();
    out.push_str("\ndecoder verdicts on crash-shaped inputs (typed, never a panic):\n");
    for (case, err) in [
        ("truncated at 50%", &truncated),
        ("one bit flipped", &bitflip),
        ("version skew", &version),
    ] {
        out.push_str(&format!(
            "  {case}: {}\n",
            err.as_ref().map(|e| e.to_string()).unwrap_or_else(|| "ACCEPTED (bug)".into())
        ));
    }

    // Leg 3: WAL append, seal, tear mid-frame, recover.
    let (wal_rows, wal_ok) = wal_leg(&data.packets);
    out.push_str("\nWAL mid-append crash recovery:\n");
    out.push_str(&wal_rows);

    let sweep_clean = mismatches.is_empty();
    let typed = matches!(truncated, Some(PhoenixError::Truncated { .. }))
        && matches!(bitflip, Some(PhoenixError::Checksum { .. }))
        && matches!(version, Some(PhoenixError::VersionSkew { .. }));
    out.push_str(&format!(
        "\nevery kill point resumed byte-identically: {}\n\
         corrupt checkpoints all map to typed errors: {}\n\
         torn WAL tail recovered to the last good prefix, sealed frames intact: {}\n\
         \nshape check: a checkpoint is only real if restore-and-resume is\n\
         indistinguishable from never having crashed; a log is only a log if\n\
         the crash it was built for cannot cost more than the frame being\n\
         written. E19 pins both, under every executor the campus has.\n",
        if sweep_clean { "yes" } else { "NO (bug)" },
        if typed { "yes" } else { "NO (bug)" },
        if wal_ok { "yes" } else { "NO (bug)" },
    ));

    // The bundle's prom + trace are the uninterrupted run's — the
    // baseline every kill must reproduce.
    let (_, prom, trace) = baseline;
    ObsBundle { id: "E19", table: out, prom, trace }
}

/// The WAL leg: append the capture in per-second batches, seal everything
/// but the final batch, crash mid-way through the final frame, reopen,
/// and check the recovery report and surviving contents. Returns
/// (rendered rows, all-good).
fn wal_leg(packets: &[campuslab::capture::PacketRecord]) -> (String, bool) {
    let dir = std::env::temp_dir().join(format!("campuslab-e19-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || -> Result<(String, bool), PersistError> {
        // Per-second batches: the same sharding unit the store's parallel
        // ingest uses.
        let mut batches: Vec<Vec<campuslab::capture::PacketRecord>> = Vec::new();
        for p in packets {
            let sec = (p.ts_ns / 1_000_000_000) as usize;
            if batches.len() <= sec {
                batches.resize_with(sec + 1, Vec::new);
            }
            batches[sec].push(p.clone());
        }
        batches.retain(|b| !b.is_empty());
        let last_batch = batches.pop().expect("capture is never empty");
        let last_len = last_batch.len();

        // Everything but the final batch, durably sealed (a small
        // threshold rolls several segments on the way).
        let (mut wal, _) = WalStore::open(&dir, WalConfig { seal_bytes: 64 << 10 })?;
        let mut durable = 0usize;
        for b in batches {
            durable += b.len();
            wal.append_packets(b)?;
        }
        wal.seal()?;
        let sealed = wal.sealed_segments().len();
        drop(wal);

        // A fresh process appends the final batch (one frame in a fresh
        // tail) and dies mid-write: the on-disk frame loses its last 11
        // bytes.
        let (mut wal, clean) = WalStore::open(&dir, WalConfig::default())?;
        let reopen_clean = !clean.was_lossy();
        wal.append_packets(last_batch)?;
        let tail_id = wal.tail_segment();
        drop(wal);
        let tail = dir.join(format!("wal-{tail_id:06}.seg"));
        let image = std::fs::read(&tail)?;
        std::fs::write(&tail, &image[..image.len().saturating_sub(11)])?;

        let (wal, report) = WalStore::open(&dir, WalConfig::default())?;
        let survived = wal.store().packet_count();
        let rows = format!(
            "  sealed segments: {sealed}  frames replayed: {}  torn tail: {}\n\
             \x20 packets durable before the torn frame: {durable}  \
             in the torn frame: {last_len}  recovered: {survived}\n",
            report.frames_replayed,
            match &report.torn_tail {
                Some((seg, off, why)) => format!("segment {seg} cut at byte {off} ({why})"),
                None => "none (bug)".into(),
            },
        );
        let ok = reopen_clean
            && report.was_lossy()
            && survived == durable
            && wal.store().obs.persist_corrupt() == 1;
        Ok((rows, ok))
    };
    let result = run().unwrap_or_else(|e| (format!("  WAL leg failed: {e}\n"), false));
    let _ = std::fs::remove_dir_all(&dir);
    result
}
