//! **E17 — always-on pipeline under drift** (the DriftPilot campaign;
//! ISSUE 8): the paper's Figure-2 loop is drawn as a cycle, but every
//! earlier experiment ran it exactly once — collect, train, distill,
//! compile, deploy, done. A real campus drifts: attackers rotate
//! reflector ports and prefixes, the traffic mix moves. This experiment
//! plays the rotating-reflection scenario twice. **Undefended**, the
//! stale program (trained on phase one's port-53 signature) rides the
//! ordinary mitigation controller and never sees phase two coming — the
//! port-123 answers sail through until the run ends. **Defended**, a
//! DriftPilot streams features off the same tap, scores each sealed
//! window for drift, retrains on fresh windows when the rotation fires
//! its threshold, and walks the re-distilled, re-compiled candidate
//! through the rollout guard's shadow → canary → full ladder. The
//! headline number is sim-time from drift onset to
//! mitigated-with-SLOs-green (`dp_drift_ttm_ms`), and the whole bundle
//! is golden-pinned byte-for-byte under sequential, parallel, and
//! sharded executors.

use crate::obs_export::ObsBundle;
use crate::table::Table;
use campuslab::control::RolloutEventKind;
use campuslab::netsim::{SimDuration, SimTime};
use campuslab::obs::Tracer;
use campuslab::testbed::{
    drift_road_test, road_test, AttackScenario, DriftRunConfig, RoadTestConfig, Scenario,
};
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle.
pub fn run_observed() -> ObsBundle {
    let mut out =
        String::from("E17: always-on learn->distill->compile->deploy under drift (DriftPilot)\n\n");
    let scenario = Scenario::drift_rotation();

    // The stale lineage: a program and window model developed offline on
    // the amplification scenario — phase one's exact signature, and the
    // last thing any one-shot pipeline would ever learn.
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);

    // When the attacker rotates (the last phase's start): drift onset for
    // the undefended run's censored clock.
    let rotation_onset = match &scenario.attack {
        AttackScenario::RotatingReflection { phases, .. } => {
            let span = scenario.workload.duration.as_secs_f64();
            let (_, frac, _) = *phases.last().expect("rotation scenario has phases");
            SimTime::ZERO + SimDuration::from_secs_f64(span * frac)
        }
        _ => unreachable!("drift_rotation is a rotating-reflection scenario"),
    };

    let undefended = road_test(
        &scenario,
        dev.program.clone(),
        Some(Box::new(model.clone())),
        RoadTestConfig::default(),
    );
    let defended = drift_road_test(
        &scenario,
        dev.program.clone(),
        Box::new(model),
        DriftRunConfig::default(),
    );

    let dobs = defended.obs.drift.as_ref().expect("drift runs carry drift obs");
    // The rotation episode: the drift episode that opened once the
    // attacker moved to the port-123 pool.
    let rotation_episode =
        defended.episodes.iter().find(|e| e.onset >= rotation_onset);
    let defended_ttm = rotation_episode.and_then(|e| e.mitigated.map(|m| m - e.onset));
    // Undefended there is no pilot: the drift is never mitigated, so its
    // TTM is censored at the end of the run.
    let run_end = SimTime(undefended.obs.tracer.spans().first().map(|s| s.end_ns).unwrap_or(0));
    let censored_ttm = run_end - rotation_onset;

    let mut t = Table::new(&[
        "run",
        "retrains p/d",
        "cand sub/com/veto",
        "episodes",
        "drift ttm",
        "attack passed",
        "benign dropped",
    ]);
    t.row(vec![
        "undefended".into(),
        "0/0".into(),
        "0/0/0".into(),
        "-".into(),
        format!(">{:.1}s (censored)", censored_ttm.as_secs_f64()),
        undefended.attack_packets_passed.to_string(),
        undefended.benign_packets_dropped.to_string(),
    ]);
    t.row(vec![
        "defended".into(),
        format!("{}/{}", dobs.retrains_periodic(), dobs.retrains_drift()),
        format!("{}/{}/{}", dobs.submitted(), dobs.committed(), dobs.vetoed()),
        defended.episodes.len().to_string(),
        defended_ttm
            .map(|d| format!("{:.1}s", d.as_secs_f64()))
            .unwrap_or_else(|| "-".into()),
        defended.filter.passed_attack.to_string(),
        defended.filter.dropped_benign.to_string(),
    ]);
    out.push_str(&t.render());

    out.push_str("\npipeline timeline (defended run, sim-time log):\n\n");
    out.push_str(&defended.timeline());

    let episode_after_rotation = rotation_episode.is_some();
    let candidate_committed = defended
        .events
        .iter()
        .any(|e| matches!(e.kind, RolloutEventKind::Committed))
        && defended.final_deployed != dev.program.fingerprint();
    let mitigated_green = defended_ttm.is_some();
    let beats_censored = defended_ttm.is_some_and(|d| d < censored_ttm);
    let leak_contained = defended.filter.passed_attack < undefended.attack_packets_passed;
    out.push_str(&format!(
        "\npilot opened a drift episode after the port rotation: {}\n\
         a retrained candidate was committed and the deployed lineage moved: {}\n\
         drift was mitigated with SLOs green before the run ended: {}\n\
         defended TTM beats the undefended (censored) TTM: {}\n\
         the defended campus passed fewer attack packets: {}\n\
         \nshape check: one-shot development is a snapshot, and the snapshot\n\
         goes stale the moment the attacker rotates. The always-on pilot turns\n\
         Figure 2 into the loop the paper drew: drift scored on the live tap,\n\
         retraining on fresh windows, re-distillation and re-compilation under\n\
         the same resource budget, and deployment only through the guarded\n\
         shadow -> canary -> full ladder that E15 proved safe.\n",
        if episode_after_rotation { "yes" } else { "NO (bug)" },
        if candidate_committed { "yes" } else { "NO (bug)" },
        if mitigated_green { "yes" } else { "NO (bug)" },
        if beats_censored { "yes" } else { "NO (bug)" },
        if leak_contained { "yes" } else { "NO (bug)" },
    ));

    let mut prom = String::new();
    let mut tracer = Tracer::new();
    for (name, obs) in [("undefended", &undefended.obs), ("defended", &defended.obs)] {
        prom.push_str(&format!("# run: {name}\n{}", obs.prom()));
        tracer.merge_from(&obs.tracer);
    }
    ObsBundle { id: "E17", table: out, prom, trace: tracer.render_json() }
}
