//! **E16 — resolver under water torture** (the ResolverLab campaign;
//! ISSUE 7): the campus recursive resolver is a live service actor inside
//! the simulation — positive/negative caching on sim-time TTLs, per-client
//! rate limiting, serve-stale on upstream starvation — and this experiment
//! floods it with random-subdomain NXDOMAIN queries (every junk name
//! defeats the cache and burns an upstream slot) plus an ANY/TXT
//! amplification burst. Two runs fan out in parallel: **undefended**, the
//! resolver rides out the flood on its own RFC-shaped degradation ladder
//! (rate-limit → stale answers → typed ServFail give-ups, never a panic),
//! and its abandoned clients feed the rollout guard as rollback-eligible
//! service-failure evidence; **defended**, the ordinary development loop
//! (collect → train → distill) plus the mitigation controller detect the
//! flood at the border tap and install rules that shed it before the
//! upstream path saturates. Cache-hit collapse and recovery are read from
//! the resolver's per-second Observatory windows, and the whole bundle is
//! golden-pinned byte-for-byte under the sequential, parallel, and sharded
//! executors.

use crate::obs_export::ObsBundle;
use crate::table::Table;
use campuslab::netsim::par::parallel_map;
use campuslab::obs::Tracer;
use campuslab::resolver::ResponseKind;
use campuslab::testbed::{resolver_run, ResolverRunConfig, ResolverRunOutcome, Scenario};
use campuslab::Platform;

/// The flood window of [`Scenario::resolver_lab`] in whole sim-seconds:
/// start 0.25 * 12 s, duration 0.5 * 12 s.
const FLOOD_SECS: std::ops::Range<u64> = 3..9;

/// Mean cache-hit rate over the windows inside `secs`.
fn hit_rate_over(outcome: &ResolverRunOutcome, secs: std::ops::Range<u64>) -> f64 {
    let picked: Vec<f64> = outcome
        .hit_rate_series()
        .into_iter()
        .filter(|(sec, _)| secs.contains(sec))
        .map(|(_, rate)| rate)
        .collect();
    if picked.is_empty() {
        return 0.0;
    }
    picked.iter().sum::<f64>() / picked.len() as f64
}

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle.
pub fn run_observed() -> ObsBundle {
    let mut out =
        String::from("E16: resolver under water torture (NXDOMAIN flood + amplification burst)\n\n");
    let scenario = Scenario::resolver_lab();
    let platform = Platform::new(scenario.clone());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);

    // Undefended and defended runs are independent simulations, so they
    // fan out over the parallel runner with byte-identical results.
    let specs: [&str; 2] = ["undefended", "defended"];
    let results: Vec<(&str, ResolverRunOutcome)> = parallel_map(&specs, |_, &name| {
        let cfg = if name == "defended" {
            ResolverRunConfig {
                defense: Some((dev.program.clone(), Box::new(model.clone()))),
                ..ResolverRunConfig::default()
            }
        } else {
            ResolverRunConfig::default()
        };
        (name, resolver_run(&scenario, cfg))
    });

    let mut t = Table::new(&[
        "run",
        "queries",
        "rrl-drop",
        "upstream",
        "timeouts",
        "stale",
        "servfail",
        "give-ups",
        "hit pre/flood/post",
        "mitigations",
    ]);
    for (name, o) in &results {
        let rsv = o.obs.resolver.as_ref().expect("resolver runs carry resolver obs");
        t.row(vec![
            name.to_string(),
            rsv.queries().to_string(),
            rsv.rrl_dropped().to_string(),
            rsv.upstream_queries().to_string(),
            rsv.upstream_timeouts().to_string(),
            rsv.responses(ResponseKind::Stale).to_string(),
            rsv.responses(ResponseKind::ServFail).to_string(),
            o.giveups_surfaced.to_string(),
            format!(
                "{:.2}/{:.2}/{:.2}",
                hit_rate_over(o, 0..FLOOD_SECS.start),
                hit_rate_over(o, FLOOD_SECS),
                hit_rate_over(o, FLOOD_SECS.end..u64::MAX)
            ),
            o.mitigations.len().to_string(),
        ]);
    }
    out.push_str(&t.render());

    let undef = &results[0].1;
    let def = &results[1].1;
    let undef_rsv = undef.obs.resolver.as_ref().expect("resolver obs");
    let def_rsv = def.obs.resolver.as_ref().expect("resolver obs");

    let shed_by_rrl = undef_rsv.rrl_dropped() > 1_000;
    let degraded_never_died = undef_rsv.upstream_timeouts() > 0
        && undef_rsv.responses(ResponseKind::Stale) + undef_rsv.giveups() > 0
        && undef_rsv.responses_total() > 0;
    let undef_pre = hit_rate_over(undef, 0..FLOOD_SECS.start);
    let undef_flood = hit_rate_over(undef, FLOOD_SECS);
    let undef_post = hit_rate_over(undef, FLOOD_SECS.end..u64::MAX);
    let collapsed_and_recovered = undef_flood < undef_pre && undef_post > undef_flood;
    let giveups_are_evidence = undef.giveups_surfaced == undef_rsv.giveups()
        && undef
            .obs
            .rollout
            .as_ref()
            .is_some_and(|r| r.giveups_observed() == undef.giveups_surfaced);
    let flood_mitigated = !def.mitigations.is_empty()
        && def.mitigations[0].victim == std::net::IpAddr::V4(def.victim.expect("victim"));
    let defense_helped = def_rsv.upstream_timeouts() < undef_rsv.upstream_timeouts()
        && def_rsv.giveups() <= undef_rsv.giveups()
        && hit_rate_over(def, FLOOD_SECS) > undef_flood;

    let ttm = def
        .mitigations
        .first()
        .zip(def.attack_start)
        .map(|(m, start)| format!("{:.1}s", (m.installed_at - start).as_secs_f64()))
        .unwrap_or_else(|| "-".into());
    out.push_str(&format!(
        "\nundefended hit rate {undef_pre:.2} -> {undef_flood:.2} -> {undef_post:.2}; \
         defended flood-window hit rate {:.2}; time to mitigation {ttm}\n",
        hit_rate_over(def, FLOOD_SECS),
    ));
    out.push_str(&format!(
        "\nper-client rate limiting shed the flood bulk: {}\n\
         starved resolver degraded (stale/ServFail), never died: {}\n\
         cache-hit rate collapsed under flood and recovered after: {}\n\
         abandoned clients became rollout-guard rollback evidence: {}\n\
         controller detected the flood and mitigated the resolver: {}\n\
         defense beat the undefended run on every starvation axis: {}\n\
         \nshape check: the resolver is the paper's service-under-test - the\n\
         flood defeats its cache by construction, so survival is a ladder of\n\
         typed degradation (rate-limit, stale, ServFail) plus the ordinary\n\
         detect-and-mitigate loop at the border, and every abandoned client\n\
         is rollback evidence in the deployment guard, not a silent loss.\n",
        if shed_by_rrl { "yes" } else { "NO (bug)" },
        if degraded_never_died { "yes" } else { "NO (bug)" },
        if collapsed_and_recovered { "yes" } else { "NO (bug)" },
        if giveups_are_evidence { "yes" } else { "NO (bug)" },
        if flood_mitigated { "yes" } else { "NO (bug)" },
        if defense_helped { "yes" } else { "NO (bug)" },
    ));

    let mut prom = String::new();
    let mut tracer = Tracer::new();
    for (name, o) in &results {
        prom.push_str(&format!("# run: {name}\n{}", o.obs.prom()));
        tracer.merge_from(&o.obs.tracer);
    }
    ObsBundle { id: "E16", table: out, prom, trace: tracer.render_json() }
}
