//! **E14 — robustness under chaos** (the ChaosLab campaign; ISSUE 2's
//! "E9 robustness-under-chaos", renumbered because E9 is the trust
//! report): the paper's §3 warns that campus networks "are also prone to
//! network faults and outages", so a defense that only works on a calm
//! network has not been road-tested at all. This experiment sweeps one
//! fault-intensity knob from 0 to 1 — link flaps, node crashes, rate
//! brownouts, Gilbert–Elliott bursty loss, tap blackouts and a flaky
//! rule-install channel all scale together — and reports the degradation
//! curve, then proves the whole sweep is byte-identical under the
//! parallel runner.

use crate::obs_export::ObsBundle;
use crate::table::{pct, Table};
use campuslab::obs::Tracer;
use campuslab::testbed::{chaos_sweep, chaos_sweep_observed, ChaosPoint, ChaosSweepConfig, Scenario};
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle: the
/// degradation table plus every intensity point's metrics dump and trace.
/// The table is derived from the same registries the dump renders (that is
/// the point of the Observatory routing), so they cannot disagree.
pub fn run_observed() -> ObsBundle {
    let mut out = String::from("E14: robustness under chaos (graceful degradation)\n\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);

    let sweep = ChaosSweepConfig::default();
    let (points, point_obs) = chaos_sweep_observed(
        &platform.scenario,
        &dev.program,
        || Box::new(model.clone()),
        &sweep,
    );
    // Determinism: the same sweep on one worker must serialize to the
    // same bytes as the fanned-out run above.
    let sequential = chaos_sweep(
        &platform.scenario,
        &dev.program,
        || Box::new(model.clone()),
        &ChaosSweepConfig { workers: 1, ..sweep },
    );
    let render = |pts: &[ChaosPoint]| serde_json::to_string(pts).unwrap_or_default();
    let deterministic = render(&points) == render(&sequential);

    let mut t = Table::new(&[
        "intensity",
        "suppression",
        "delivery",
        "time-to-mitigation",
        "installs",
        "give-ups",
        "fault drops",
        "node-down drops",
    ]);
    for p in &points {
        t.row(vec![
            format!("{:.2}", p.intensity),
            pct(p.suppression),
            pct(p.delivery_ratio),
            p.time_to_mitigation_ms
                .map(|ms| format!("{ms:.1}ms"))
                .unwrap_or_else(|| "never".into()),
            p.install_attempts.to_string(),
            p.giveups.to_string(),
            p.dropped_fault.to_string(),
            p.dropped_node_down.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let calm = points.first();
    let mayhem = points.last();
    let monotone = match (calm, mayhem) {
        (Some(c), Some(m)) => c.suppression >= m.suppression && c.delivery_ratio >= m.delivery_ratio,
        _ => false,
    };
    out.push_str(&format!(
        "\nparallel runner byte-identical to sequential: {}\n\
         calm bounds mayhem (suppression and delivery): {}\n\
         \nshape check: as the chaos knob turns, faults remove traffic (delivery\n\
         falls), tap blackouts blind detection windows, and install flakes cost\n\
         retries and give-ups - so suppression degrades and mitigation arrives\n\
         later, but it degrades *gracefully*: accounting stays conserved, no\n\
         panic, and the calm run upper-bounds every chaotic one.\n",
        if deterministic { "yes" } else { "NO (bug)" },
        if monotone { "yes" } else { "NO (bug)" },
    ));
    let mut prom = String::new();
    let mut tracer = Tracer::new();
    for (p, o) in points.iter().zip(&point_obs) {
        prom.push_str(&format!("# intensity: {:.2}\n{}", p.intensity, o.prom()));
        tracer.merge_from(&o.tracer);
    }
    ObsBundle { id: "E14", table: out, prom, trace: tracer.render_json() }
}
