//! **E6 — §5 step (iii) plus the §2 scale claim**: compile deployable
//! trees to the switch and measure the cost, then push on the resource
//! model until the "hundreds or thousands of concurrent tasks" the paper
//! says the data plane cannot host actually fail to fit.

use crate::table::{f, Table};
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::dataplane::{compile_tree, CompileConfig, PipelineProgram, SwitchModel};
use campuslab::ml::{Dataset, DecisionTree, TreeConfig};
use campuslab::testbed::{collect, Scenario};
use campuslab::xai::DistillConfig;

/// A synthetic detector task whose decision structure needs `bands`
/// distinct wire-length intervals — a knob for rule-set complexity.
fn synthetic_task(bands: u32, rows: usize) -> PipelineProgram {
    let mut x = Vec::with_capacity(rows);
    let mut y = Vec::with_capacity(rows);
    let names: Vec<String> = campuslab::dataplane::FIELD_ORDER
        .iter()
        .map(|f| f.name().to_string())
        .collect();
    let band_width = 1500 / bands.max(1);
    for i in 0..rows as u32 {
        let wire_len = 60 + (i * 37) % 1500;
        let mut row = vec![0.0; names.len()];
        row[0] = 17.0; // protocol
        row[3] = f64::from(wire_len);
        row[10] = 1.0; // is_udp
        x.push(row);
        y.push(usize::from((wire_len / band_width).is_multiple_of(2)));
    }
    let tree = DecisionTree::fit(
        &Dataset::new(x, y, names),
        TreeConfig { max_depth: 16, min_samples_leaf: 1, ..Default::default() },
    );
    compile_tree(
        &tree,
        CompileConfig { confidence_gate: 0.5, ..Default::default() },
        format!("synthetic-{bands}-bands"),
    )
    .0
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E6: compiling to the switch, and the concurrent-task ceiling\n\n");
    let switch = SwitchModel::default();
    out.push_str(&format!(
        "switch: {} stages x {} TCAM x {} tables/stage = {} total entries, {} slots\n\n",
        switch.stages,
        switch.tcam_entries_per_stage,
        switch.max_tables_per_stage,
        switch.total_tcam(),
        switch.total_slots()
    ));

    // --- (a) the real task: distilled amplification detector ----------------
    let data = collect(&Scenario::small());
    let mut t = Table::new(&["distilled depth", "student F1", "TCAM entries", "stage slots", "concurrent tasks"]);
    for depth in [1usize, 2, 4, 6, 8] {
        let dev = run_development_loop(
            &data.packets,
            &DevLoopConfig {
                distill: DistillConfig { tree: TreeConfig::shallow(depth), ..Default::default() },
                ..Default::default()
            },
        );
        let fp = switch.footprint(&dev.program);
        t.row(vec![
            depth.to_string(),
            f(dev.student_eval.f1_attack, 3),
            dev.program.n_entries().to_string(),
            fp.stage_slots.to_string(),
            switch.max_concurrent(&dev.program).to_string(),
        ]);
    }
    out.push_str(&t.render());

    // --- (b) task complexity drives TCAM consumption ------------------------
    out.push_str("\nsynthetic tasks of growing decision complexity:\n\n");
    let mut t = Table::new(&["decision bands", "TCAM entries", "stage slots", "concurrent tasks"]);
    let mut last_fit = usize::MAX;
    for bands in [2u32, 4, 8, 16, 32, 64] {
        let program = synthetic_task(bands, 3_000);
        let fp = switch.footprint(&program);
        let fit = switch.max_concurrent(&program);
        last_fit = fit;
        t.row(vec![
            bands.to_string(),
            program.n_entries().to_string(),
            fp.stage_slots.to_string(),
            fit.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // --- (c) explicit failure: pile on concurrent tasks ---------------------
    let task = synthetic_task(16, 3_000);
    let mut n = 1;
    let failure = loop {
        let refs: Vec<&PipelineProgram> = (0..n).map(|_| &task).collect();
        match switch.allocate(&refs) {
            Ok(_) => n += 1,
            Err(e) => break e,
        }
        if n > 10_000 {
            break campuslab::dataplane::ResourceError::OutOfSlots { needed: 0, available: 0 };
        }
    };
    out.push_str(&format!(
        "\npiling on copies of the 16-band task: {} fit; task {} fails with \"{}\"\n",
        n - 1,
        n,
        failure
    ));
    out.push_str(&format!(
        "\nshape check: the realistic detector fits tens of concurrent instances and\ncomplex tasks fit {last_fit} - tens to hundreds at best, never thousands, exactly\nthe paper's argument for moving the heavyweight learning off the switch.\n",
    ));
    out
}
