//! **E5 — model extraction (§5 steps (i)–(ii))**: replace the black box
//! with a model that is "explainable or interpretable, lightweight and
//! closely approximates the original model". Sweeps student depth against
//! two teachers and reports fidelity, accuracy, size and speed.

use crate::table::{f, pct, Table};
use campuslab::features::{packet_dataset, LabelMode};
use campuslab::ml::{
    fidelity, Classifier, ConfusionMatrix, ForestConfig, Mlp, MlpConfig, Normalizer, RandomForest,
    TreeConfig,
};
use campuslab::testbed::{collect, Scenario};
use campuslab::xai::{distill, DistillConfig};
use std::time::Instant;

fn ns_per_predict(model: &dyn Classifier, rows: &[Vec<f64>]) -> f64 {
    let start = Instant::now();
    for row in rows {
        std::hint::black_box(model.predict(row));
    }
    start.elapsed().as_nanos() as f64 / rows.len() as f64
}

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E5: distilling the black box into a deployable tree\n\n");
    let data = collect(&Scenario::small());
    let dataset = packet_dataset(&data.packets, LabelMode::BinaryAttack);
    let (train, test) = dataset.split_by_order(0.7);

    let forest = RandomForest::fit(&train, ForestConfig::default());
    let norm = Normalizer::fit(&train);
    let mlp = Mlp::fit(&norm.transform(&train), MlpConfig { epochs: 40, ..Default::default() });
    struct NormedMlp {
        norm: Normalizer,
        mlp: Mlp,
    }
    impl Classifier for NormedMlp {
        fn n_classes(&self) -> usize {
            self.mlp.n_classes()
        }
        fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
            self.mlp.predict_proba(&self.norm.transform_row(row))
        }
    }
    let mlp = NormedMlp { norm, mlp };

    let sample: Vec<Vec<f64>> = test.x.iter().take(10_000).cloned().collect();
    let teachers: Vec<(&str, &dyn Classifier, usize)> = vec![
        ("forest", &forest, forest.total_nodes()),
        ("mlp", &mlp, mlp.mlp.n_parameters()),
    ];

    let mut t = Table::new(&[
        "teacher",
        "depth",
        "fidelity(test)",
        "teacher F1",
        "student F1",
        "teacher size",
        "student nodes",
        "teacher ns/pkt",
        "student ns/pkt",
    ]);
    for (name, teacher, size) in &teachers {
        let teacher_cm = ConfusionMatrix::evaluate(*teacher, &test);
        let teacher_ns = ns_per_predict(*teacher, &sample);
        for depth in [1usize, 2, 3, 4, 6, 8] {
            let (student, _report) = distill(
                *teacher,
                &train,
                DistillConfig { tree: TreeConfig::shallow(depth), ..Default::default() },
            );
            let student_cm = ConfusionMatrix::evaluate(&student, &test);
            let fid = fidelity(*teacher, &student, &test);
            t.row(vec![
                name.to_string(),
                depth.to_string(),
                pct(fid),
                f(teacher_cm.f1(1), 3),
                f(student_cm.f1(1), 3),
                size.to_string(),
                student.n_nodes().to_string(),
                f(teacher_ns, 0),
                f(ns_per_predict(&student, &sample), 0),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: fidelity climbs with depth and saturates within a few levels;\nthe student is orders of magnitude smaller and faster than either teacher\nwhile matching its decisions - the premise of road-map step (ii).\n",
    );
    out
}
