//! **E18 — multi-tenant experimentation-as-a-service** (the TenantPlaza
//! campaign; ISSUE 9): the paper's democratization pitch only scales if
//! MANY research groups can road-test on the shared campus at once
//! without renting it whole. This experiment drives the plaza twice
//! over. First a **story cast** of eight tenants with wildly different
//! demands — probes, a capture tenant building a private datastore
//! view, a defended tenant running the mitigation controller, a guarded
//! tenant whose wildcard candidate must be vetoed in shadow, two TCAM
//! hogs that overflow the switch budget (one queued FIFO, drained when
//! a grant releases), an infeasible monster (typed rejection), and a
//! chaos-running neighbor — then diffs three tenants' entire byte
//! output (metrics, guard events, datastore accounting, trace) solo vs
//! co-scheduled. Second a **fleet sweep** (1 → 64 probe tenants)
//! measuring admission, scheduler rounds, and aggregate slice events,
//! with one tenant's bytes pinned identical at every fleet size. The
//! whole bundle is golden-pinned byte-for-byte under the sequential,
//! parallel, and sharded executors; wall-clock per-tenant overhead is
//! the `plaza` criterion bench's job (`BENCH_plaza.json`).

use crate::obs_export::ObsBundle;
use crate::table::Table;
use campuslab::control::RolloutEventKind;
use campuslab::dataplane::{
    Action, AdmissionDecision, PipelineProgram, TableEntry, TernaryMatch, FIELD_ORDER,
};
use campuslab::netsim::{Campus, ChaosPlan, SimTime};
use campuslab::obs::Tracer;
use campuslab::plaza::{Plaza, PlazaConfig, TenantJob, TenantOutcome, TenantSpec};
use campuslab::testbed::Scenario;
use campuslab::Platform;

/// The candidate the guarded tenant submits: a wildcard drop rule (the
/// distillation equivalent of "block everything"), which the shadow
/// stage must veto — proving each tenant gets a full private guard
/// ladder, not a shared one.
fn wildcard_drop() -> PipelineProgram {
    let matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
    PipelineProgram::new(
        "warden-wildcard",
        vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.5 }],
    )
}

/// A probe tenant whose own campus suffers a border-link flap mid-run:
/// the worst neighbor the plaza can host.
fn chaos_neighbor(name: &str) -> TenantSpec {
    let mut spec = TenantSpec::probe(name);
    let campus = Campus::build(spec.scenario.campus.clone());
    let mut plan = ChaosPlan::new();
    plan.link_flap(campus.border_link, SimTime::from_millis(600), SimTime::from_millis(1400));
    spec.chaos = Some(plan);
    spec
}

/// The story cast, rebuilt fresh for every plaza run (solo or crowded)
/// so each run starts from an identical spec sheet.
fn story_cast(program: &PipelineProgram, model: &campuslab::ml::DecisionTree) -> Vec<TenantSpec> {
    let mut beacon = TenantSpec::probe("beacon");
    beacon.capture = true;
    let mut cascade = TenantSpec::probe("cascade");
    cascade.reserved_tcam = 12_500;
    let mut drumlin = TenantSpec::probe("drumlin");
    drumlin.reserved_tcam = 12_500;
    let mut monster = TenantSpec::probe("monster");
    monster.reserved_tcam = 1_000_000;
    vec![
        TenantSpec::probe("atlas"),
        beacon,
        TenantSpec {
            name: "warden".into(),
            scenario: Scenario::tenant_probe(),
            program: program.clone(),
            window_model: Some(model.clone()),
            job: TenantJob::Guarded {
                submissions: vec![(SimTime::from_secs(1), wildcard_drop())],
            },
            chaos: None,
            capture: false,
            reserved_tcam: 0,
        },
        TenantSpec {
            name: "ranger".into(),
            scenario: Scenario::tenant_probe(),
            program: program.clone(),
            window_model: Some(model.clone()),
            job: TenantJob::Defend,
            chaos: None,
            capture: false,
            reserved_tcam: 0,
        },
        cascade,
        drumlin,
        monster,
        chaos_neighbor("gremlin"),
    ]
}

/// Run a plaza over `specs` and hand back the report.
fn run_plaza(specs: Vec<TenantSpec>) -> campuslab::plaza::PlazaReport {
    let mut plaza = Plaza::new(PlazaConfig::default());
    for spec in specs {
        plaza.submit(spec);
    }
    plaza.run()
}

/// One tenant's entire observable output, run alone on an empty plaza.
fn solo_fingerprint(spec: TenantSpec) -> String {
    let name = spec.name.clone();
    run_plaza(vec![spec])
        .outcomes
        .into_iter()
        .find(|o| o.name == name)
        .expect("solo tenant finished")
        .fingerprint()
}

fn events_of(o: &TenantOutcome) -> u64 {
    o.net.injected + o.net.delivered + o.net.dropped_total()
}

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle.
pub fn run_observed() -> ObsBundle {
    let mut out =
        String::from("E18: multi-tenant experimentation-as-a-service (TenantPlaza)\n\n");

    // One shared lineage for the defended/guarded tenants: the program
    // and window model developed offline in the fig-1/2 pipeline.
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);

    // --- Act 1: the story cast on one crowded plaza. ---
    let report = run_plaza(story_cast(&dev.program, &model));

    out.push_str("admission log (submission order):\n\n");
    out.push_str(&report.admission_log());

    let mut t = Table::new(&[
        "tenant",
        "decision",
        "rounds",
        "events",
        "mitig/giveups",
        "guard verdict",
        "store pkts",
    ]);
    for rec in &report.records {
        let decision = match &rec.decision {
            AdmissionDecision::Admitted { .. } => "admitted".to_string(),
            AdmissionDecision::Queued { position } => format!("queued@{position}"),
            AdmissionDecision::Rejected(_) => "rejected".to_string(),
        };
        let Some(o) = report.outcome(&rec.tenant) else {
            t.row(vec![
                rec.tenant.clone(),
                decision,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let verdict = o
            .events
            .iter()
            .rev()
            .find_map(|e| match &e.kind {
                RolloutEventKind::Vetoed(v) => Some(format!("vetoed ({v:?})")),
                RolloutEventKind::RolledBack(v) => Some(format!("rolled back ({v:?})")),
                RolloutEventKind::Committed => Some("committed".into()),
                _ => None,
            })
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            o.name.clone(),
            decision,
            o.rounds.to_string(),
            events_of(o).to_string(),
            format!("{}/{}", o.mitigations, o.giveups),
            verdict,
            o.store.as_ref().map(|s| s.packet_count().to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());

    // --- Act 2: the isolation differential, inline. Three tenants rerun
    // alone on an empty plaza; their bytes must not know the difference.
    let warden_solo = solo_fingerprint(story_cast(&dev.program, &model).remove(2));
    let beacon_solo = solo_fingerprint(story_cast(&dev.program, &model).remove(1));
    let drumlin_solo = solo_fingerprint(story_cast(&dev.program, &model).remove(5));

    let co_fp = |name: &str| {
        report.outcome(name).map(|o| o.fingerprint()).unwrap_or_default()
    };
    let warden_identical = warden_solo == co_fp("warden");
    let beacon_identical = beacon_solo == co_fp("beacon");
    let drumlin_identical = drumlin_solo == co_fp("drumlin");
    let warden_vetoed = report
        .outcome("warden")
        .is_some_and(|o| o.events.iter().any(|e| matches!(e.kind, RolloutEventKind::Vetoed(_))));
    let drumlin_queued_then_ran = report
        .records
        .iter()
        .any(|r| r.tenant == "drumlin" && matches!(r.decision, AdmissionDecision::Queued { .. }))
        && report.outcome("drumlin").is_some();
    let monster_rejected_never_ran = report
        .records
        .iter()
        .any(|r| r.tenant == "monster" && matches!(r.decision, AdmissionDecision::Rejected(_)))
        && report.outcome("monster").is_none();

    out.push_str(&format!(
        "\nwarden's private guard vetoed the wildcard candidate in shadow: {}\n\
         warden's bytes are identical solo vs co-scheduled: {}\n\
         beacon's capture + datastore view ignores the chaos neighbor: {}\n\
         drumlin was queued FIFO, drained on release, and still matches its solo bytes: {}\n\
         monster got a typed rejection and never touched the campus: {}\n",
        if warden_vetoed { "yes" } else { "NO (bug)" },
        if warden_identical { "yes" } else { "NO (bug)" },
        if beacon_identical { "yes" } else { "NO (bug)" },
        if drumlin_queued_then_ran && drumlin_identical { "yes" } else { "NO (bug)" },
        if monster_rejected_never_ran { "yes" } else { "NO (bug)" },
    ));

    // --- Act 3: the fleet sweep. Identical probe tenants at every
    // power-of-two fleet size; p0's bytes are pinned across all of them.
    let mut sweep = Table::new(&[
        "tenants",
        "admitted",
        "queued",
        "rejected",
        "sched rounds",
        "slice events",
        "p0 bytes stable",
    ]);
    let p0_reference = solo_fingerprint(TenantSpec::probe("p0"));
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let specs: Vec<TenantSpec> =
            (0..n).map(|i| TenantSpec::probe(format!("p{i}"))).collect();
        let rep = run_plaza(specs);
        let p0_stable = rep
            .outcome("p0")
            .is_some_and(|o| o.fingerprint() == p0_reference);
        let events: u64 = rep.outcomes.iter().map(events_of).sum();
        sweep.row(vec![
            n.to_string(),
            rep.obs.admitted().to_string(),
            rep.obs.queued().to_string(),
            rep.obs.rejected().to_string(),
            rep.rounds.to_string(),
            events.to_string(),
            if p0_stable { "yes".into() } else { "NO (bug)".into() },
        ]);
    }
    out.push_str("\nfleet sweep (identical probe tenants, shared switch budget):\n\n");
    out.push_str(&sweep.render());

    out.push_str(
        "\nshape check: admission is typed and budget-derived (96 stage slots,\n\
         24576 TCAM entries on the default switch), scheduling is a pure\n\
         function of each tenant's own spec, and every tenant's telemetry is\n\
         namespaced — so a 64-tenant fleet admits cleanly and no tenant's\n\
         bytes ever depend on who else is on the campus. Per-tenant\n\
         wall-clock overhead for the same sweep is pinned by the `plaza`\n\
         criterion bench into BENCH_plaza.json and gated in ci.sh.\n",
    );

    // Prom + trace: the crowded plaza's service-level obs, then each
    // story tenant's namespaced bundle.
    let mut prom = format!("# service\n{}", report.obs.render());
    let mut tracer = Tracer::new();
    for o in &report.outcomes {
        prom.push_str(&format!("# tenant: {}\n{}", o.name, o.obs.prom()));
        tracer.merge_from(&o.obs.tracer);
    }
    ObsBundle { id: "E18", table: out, prom, trace: tracer.render_json() }
}
