//! **E12 — beyond the running example**: the paper imagines *many*
//! concurrent automation tasks, one per network event class. This
//! experiment trains a single multi-class detector over a mixed attack
//! climate (all five campaign kinds at once), reports per-class detection
//! quality, then compiles one drop program per attack kind and asks the
//! switch model whether all five fit together.

use crate::table::{f, pct, Table};
use campuslab::dataplane::{compile_tree, CompileConfig, PipelineProgram, SwitchModel};
use campuslab::features::{packet_dataset, LabelMode};
use campuslab::ml::{ConfusionMatrix, ForestConfig, RandomForest, TreeConfig};
use campuslab::testbed::{collect, AttackScenario, Scenario};
use campuslab::xai::{distill, DistillConfig};
use rand::SeedableRng;

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E12: multi-class attack identification + five concurrent tasks\n\n");
    let mut scenario = Scenario::small();
    scenario.attack = AttackScenario::Mixed;
    scenario.workload.duration = campuslab::netsim::SimDuration::from_secs(10);
    let data = collect(&scenario);

    let dataset = packet_dataset(&data.packets, LabelMode::AttackKind);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE12);
    let (train, test) = dataset.split_shuffled(0.7, &mut rng);
    let train = train.balance(4.0, &mut rng);
    let teacher = RandomForest::fit(&train, ForestConfig::default());
    let (student, report) = distill(
        &teacher,
        &train,
        DistillConfig { tree: TreeConfig::shallow(8), ..Default::default() },
    );
    let cm = ConfusionMatrix::evaluate(&student, &test);

    let mut t = Table::new(&["class", "test rows", "precision", "recall", "F1"]);
    for class in 0..6usize {
        let rows = test.y.iter().filter(|&&y| y == class).count();
        if rows == 0 {
            continue;
        }
        t.row(vec![
            LabelMode::AttackKind.class_name(class),
            rows.to_string(),
            f(cm.precision(class), 3),
            f(cm.recall(class), 3),
            f(cm.f1(class), 3),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nstudent: depth {} / {} nodes, fidelity to forest {}\n",
        report.student_depth,
        report.student_nodes,
        pct(report.fidelity)
    ));

    // One deployable program per attack kind, all resident concurrently.
    let switch = SwitchModel::default();
    let programs: Vec<PipelineProgram> = (1..=5usize)
        .map(|kind| {
            compile_tree(
                &student,
                CompileConfig { drop_class: kind, confidence_gate: 0.8, min_support: 1 },
                LabelMode::AttackKind.class_name(kind),
            )
            .0
        })
        .collect();
    let refs: Vec<&PipelineProgram> = programs.iter().collect();
    let mut t = Table::new(&["task (drop class)", "TCAM entries", "stage slots"]);
    for p in &programs {
        let fp = switch.footprint(p);
        t.row(vec![p.name.clone(), p.n_entries().to_string(), fp.stage_slots.to_string()]);
    }
    out.push('\n');
    out.push_str(&t.render());
    match switch.allocate(&refs) {
        Ok(alloc) => out.push_str(&format!(
            "\nall five tasks co-resident: {} / {} TCAM entries, {} / {} slots ({:.0}% slot utilization)\n",
            alloc.tcam_used,
            alloc.tcam_available,
            alloc.slots_used,
            alloc.slots_available,
            alloc.slot_utilization() * 100.0
        )),
        Err(e) => out.push_str(&format!("\nallocation FAILED: {e}\n")),
    }
    out.push_str(
        "\nshape check: volumetric floods (amplification, SYN flood) detect near-\nperfectly; low-and-slow classes (brute force, exfiltration) are harder at\npacket granularity - which is the argument for the flow/window feature\ntiers. Five tasks fit one switch comfortably; the §2 wall is about\nhundreds, not handfuls.\n",
    );
    out
}
