//! **E11 — failure injection**: a production network is not a clean
//! testbed — links flap. The paper's §3 notes universities "are also prone
//! to network faults and outages"; a road-tested tool must behave sanely
//! through one. Injects a border outage during the attack and checks the
//! platform's conservation laws and mitigation behaviour.

use crate::table::{pct, Table};
use campuslab::control::Placement;
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::testbed::{road_test, RoadTestConfig, Scenario};

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E11: road-testing through a border outage\n\n");
    let scenario = Scenario::small();
    let data = campuslab::testbed::collect(&scenario);
    let dev = run_development_loop(&data.packets, &DevLoopConfig::default());

    let cases: Vec<(&str, Option<(f64, f64)>)> = vec![
        ("no outage", None),
        ("outage 30-40% of run", Some((0.3, 0.4))),
        ("outage 30-60% of run", Some((0.3, 0.6))),
    ];
    let mut t = Table::new(&[
        "condition",
        "delivered",
        "fault drops",
        "filter drops",
        "suppression",
        "conservation",
    ]);
    for (name, border_outage) in cases {
        let outcome = road_test(
            &scenario,
            dev.program.clone(),
            None,
            RoadTestConfig {
                placement: Placement::Switch,
                border_outage,
                ..Default::default()
            },
        );
        let conserved = outcome.net.injected
            == outcome.net.delivered + outcome.net.dropped_total();
        t.row(vec![
            name.to_string(),
            outcome.net.delivered.to_string(),
            outcome.net.dropped_fault.to_string(),
            outcome.net.dropped_filter.to_string(),
            pct(outcome.suppression()),
            if conserved { "holds".into() } else { "VIOLATED".into() },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: the outage removes traffic (fault drops rise, deliveries\nfall) without perturbing the mitigation's judgment on what does arrive -\nsuppression stays at its no-outage level and packet conservation holds in\nevery condition.\n",
    );
    out
}
