//! **E7 — the §5 reproducibility protocol**: the same open-sourced
//! algorithm trained privately at three differently-shaped campuses; every
//! resulting model evaluated on every campus's held-out data.

use crate::obs_export::ObsBundle;
use crate::table::{f, Table};
use campuslab::control::DevLoopConfig;
use campuslab::obs::Tracer;
use campuslab::testbed::{cross_campus_observed, CampusSite};

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle: the matrix
/// table plus each campus's private collection-run metrics dump and trace.
pub fn run_observed() -> ObsBundle {
    let mut out = String::from("E7: cross-campus reproducibility (train row, evaluate column)\n\n");
    let sites = CampusSite::default_trio();
    for site in &sites {
        out.push_str(&format!(
            "  {}: prefix {}, {} app classes in mix\n",
            site.name,
            site.scenario.campus.campus_prefix(),
            site.scenario.workload.mix.len()
        ));
    }
    out.push('\n');
    let (result, obs) = cross_campus_observed(&sites, &DevLoopConfig::default());
    let mut headers: Vec<&str> = vec!["trained at \\ evaluated at"];
    headers.extend(result.names.iter().map(String::as_str));
    headers.push("records");
    let mut t = Table::new(&headers);
    for (i, name) in result.names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for j in 0..result.names.len() {
            row.push(f(result.f1[i][j], 3));
        }
        row.push(result.records[i].to_string());
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmean in-campus F1 {:.3} vs mean cross-campus F1 {:.3}\n",
        result.mean_in_campus(),
        result.mean_cross_campus()
    ));
    out.push_str(
        "\nshape check: the structural amplification signature transfers across\ncampuses, with the best score on each campus's own data - supporting the\npaper's open-algorithms-private-data reproducibility path.\n",
    );
    let mut prom = String::new();
    let mut tracer = Tracer::new();
    for (site, site_obs) in sites.iter().zip(&obs) {
        prom.push_str(&format!("# site: {}\n{}", site.name, site_obs.prom()));
        tracer.merge_from(&site_obs.tracer);
    }
    ObsBundle { id: "E7", table: out, prom, trace: tracer.render_json() }
}
