//! **E15 — guarded deployment under chaos** (the RolloutGuard campaign;
//! ISSUE 5): the paper's premise — road-testing AI/ML tools on a live
//! campus — is only defensible if a bad model can never take the network
//! down. This experiment submits two deliberately-degraded candidate
//! programs to the guard. A grossly broken one (a wildcard drop rule, the
//! distillation equivalent of a model that learned "block everything")
//! is caught in **shadow**: its verdicts are mirrored against ground
//! truth and it is vetoed before a single packet is enforced. A subtly
//! broken one passes shadow, is promoted to **canary** — and meets a
//! chaos campaign with a dead rule-install channel, whose circuit-broken
//! give-ups are rollback-eligible SLO evidence: the guard rolls back to
//! the last known-good program and confirms SLO recovery within a
//! bounded sim-time. Both runs fan out over the parallel runner and the
//! whole bundle is golden-pinned byte-for-byte.

use crate::obs_export::ObsBundle;
use crate::table::Table;
use campuslab::control::{CircuitBreakerPolicy, InstallPolicy, Placement, RolloutEventKind};
use campuslab::dataplane::{Action, PipelineProgram, TableEntry, TernaryMatch, FIELD_ORDER};
use campuslab::netsim::par::parallel_map;
use campuslab::netsim::{SimDuration, SimTime};
use campuslab::obs::Tracer;
use campuslab::testbed::{
    chaos_road_test_config, guarded_road_test, GuardedRunConfig, GuardedRunOutcome, Scenario,
};
use campuslab::Platform;

/// Grossly degraded: a wildcard drop rule that matches every packet. The
/// live campus is mostly TCP, so anything narrower (a drop-all-UDP rule,
/// say) can sneak under the shadow FP gate — this one cannot.
fn grossly_degraded() -> PipelineProgram {
    let matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
    PipelineProgram::new(
        "degraded-wildcard",
        vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.5 }],
    )
}

/// Subtly degraded: collateral damage confined to DNS responses
/// (UDP, source port 53) — a slice small enough to pass the shadow FP
/// gate on mirrored traffic, so only the canary stage can judge it.
fn subtly_degraded() -> PipelineProgram {
    let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
    matches[1] = TernaryMatch::exact(53, 0xffff);
    matches[10] = TernaryMatch::exact(1, 1);
    PipelineProgram::new(
        "degraded-dns-collateral",
        vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.5 }],
    )
}

/// The fault-intensity knob for the canary-rollback run's chaos campaign.
const CHAOS_INTENSITY: f64 = 0.6;

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle: the
/// deployment timelines and verdict table plus each run's metrics dump
/// and trace. Both guarded runs are independent, self-seeded simulations,
/// so they fan out over [`parallel_map`] with byte-identical results.
pub fn run_observed() -> ObsBundle {
    let mut out = String::from("E15: guarded deployment under chaos (shadow -> canary -> full)\n\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    let model = platform.train_window_model(&data);

    // Two guarded road tests: a calm campus facing the grossly degraded
    // candidate, and a chaotic campus (link flaps, brownouts, a tap
    // blackout, and a rule-install channel that is fully down behind its
    // circuit breaker) facing the subtly degraded one.
    let specs: [(&str, f64); 2] = [("shadow-veto", 0.0), ("canary-rollback", CHAOS_INTENSITY)];
    let results: Vec<(&str, GuardedRunOutcome)> = parallel_map(&specs, |_, &(name, intensity)| {
        let mut cfg = GuardedRunConfig::default();
        if intensity > 0.0 {
            let mut road = chaos_road_test_config(
                &platform.scenario,
                intensity,
                0xE15,
                Placement::Controller,
            );
            road.install = InstallPolicy {
                failure_probability: 1.0,
                breaker: Some(CircuitBreakerPolicy::default()),
                ..road.install
            };
            cfg.road = road;
            cfg.submissions = vec![(SimTime::from_secs(1), subtly_degraded())];
        } else {
            cfg.submissions = vec![(SimTime::from_secs(1), grossly_degraded())];
        }
        let outcome = guarded_road_test(
            &platform.scenario,
            dev.program.clone(),
            Box::new(model.clone()),
            cfg,
        );
        (name, outcome)
    });

    let verdict = |o: &GuardedRunOutcome| {
        o.events
            .iter()
            .rev()
            .find_map(|e| match &e.kind {
                RolloutEventKind::Vetoed(v) => Some(format!("vetoed in shadow ({v:?})")),
                RolloutEventKind::RolledBack(v) => Some(format!("rolled back in canary ({v:?})")),
                RolloutEventKind::Committed => Some("committed".into()),
                _ => None,
            })
            .unwrap_or_else(|| "no verdict".into())
    };
    let mut t = Table::new(&[
        "run",
        "candidate",
        "verdict",
        "windows h/v/i",
        "give-ups",
        "benign drops",
        "recovery",
        "registry",
    ]);
    for (name, o) in &results {
        let robs = o.obs.rollout.as_ref().expect("guarded runs carry rollout obs");
        t.row(vec![
            name.to_string(),
            o.events.first().map(|e| e.program.to_string()).unwrap_or_default(),
            verdict(o),
            format!(
                "{}/{}/{}",
                robs.windows_healthy(),
                robs.windows_violated(),
                robs.windows_inconclusive()
            ),
            robs.giveups_observed().to_string(),
            o.filter.dropped_benign.to_string(),
            o.recovery_time
                .map(|d| format!("{:.1}s", d.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            o.registry_len.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\ndeployment timelines (sim-time decision log):\n");
    for (name, o) in &results {
        out.push_str(&format!("\n[{name}]\n{}", o.timeline()));
    }

    let veto = &results[0].1;
    let rollback = &results[1].1;
    let vetoed_in_shadow = veto
        .events
        .iter()
        .any(|e| matches!(e.kind, RolloutEventKind::Vetoed(_)))
        && !veto
            .events
            .iter()
            .any(|e| matches!(e.kind, RolloutEventKind::EnteredCanary));
    let rolled_back_in_canary = rollback
        .events
        .iter()
        .any(|e| matches!(e.kind, RolloutEventKind::EnteredCanary))
        && rollback
            .events
            .iter()
            .any(|e| matches!(e.kind, RolloutEventKind::RolledBack(_)))
        && !rollback
            .events
            .iter()
            .any(|e| matches!(e.kind, RolloutEventKind::EnteredFull));
    let recovery_bounded = rollback
        .recovery_time
        .is_some_and(|d| d <= SimDuration::from_secs(2));
    let known_good_retained = veto.registry_len == 1 && rollback.registry_len == 1;
    out.push_str(&format!(
        "\nshadow vetoed the wildcard before any enforcement: {}\n\
         canary rolled back on circuit-broken install give-ups: {}\n\
         known-good restored SLOs within 2s of sim-time: {}\n\
         registry kept exactly the known-good lineage in both runs: {}\n\
         \nshape check: the guard is the paper's missing support contract - a\n\
         grossly bad model dies in shadow where its verdicts are mirrored, a\n\
         subtly bad one dies in canary where the blast radius is one access\n\
         cohort, and when the control channel itself is the casualty, give-ups\n\
         count as rollback evidence instead of vanishing. Either way the\n\
         campus ends the day on the last known-good program.\n",
        if vetoed_in_shadow { "yes" } else { "NO (bug)" },
        if rolled_back_in_canary { "yes" } else { "NO (bug)" },
        if recovery_bounded { "yes" } else { "NO (bug)" },
        if known_good_retained { "yes" } else { "NO (bug)" },
    ));

    let mut prom = String::new();
    let mut tracer = Tracer::new();
    for (name, o) in &results {
        prom.push_str(&format!("# run: {name}\n{}", o.obs.prom()));
        tracer.merge_from(&o.obs.tracer);
    }
    ObsBundle { id: "E15", table: out, prom, trace: tracer.render_json() }
}
