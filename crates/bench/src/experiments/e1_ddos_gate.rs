//! **E1 — the §2 running example, quantified**: "drop attack traffic on
//! ingress if confidence in detection is at least 90%". Sweeps the
//! compile-time confidence gate for two deployable-model capacities:
//! the production-sized distilled tree (whose leaves are confident — the
//! gate is a cheap safety net) and a deliberately capacity-starved tree
//! (whose impure leaves make the gate's precision/recall trade visible).

use crate::obs_export::ObsBundle;
use crate::table::{f, pct, Table};
use campuslab::control::Placement;
use campuslab::obs::Tracer;
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::dataplane::CompileConfig;
use campuslab::ml::TreeConfig;
use campuslab::testbed::{road_test, RoadTestConfig, Scenario};
use campuslab::xai::DistillConfig;

const GATES: [f64; 6] = [0.5, 0.7, 0.8, 0.9, 0.95, 0.99];

/// Sweep (b): a tree fit directly on ground-truth labels against a
/// stealthy campaign, restricted to the three fields a minimal switch key
/// can carry (`is_udp`, `src_port_is_dns`, `wire_len`). Benign DNSSEC/TXT
/// recursion and the attack overlap in that projection, so leaves have
/// graded confidence and the gate visibly trades recall for precision.
fn sweep_direct_tree(
    out: &mut String,
    data: &campuslab::testbed::CollectedData,
    scenario: &Scenario,
) {
    use campuslab::dataplane::compile_tree;
    use campuslab::features::{packet_dataset, LabelMode};
    use campuslab::ml::DecisionTree;
    out.push_str(
        "\n(b) stealthy 30 qps campaign, minimal switch key {is_udp, src53, wire_len}:\n\n",
    );
    let mut dataset = packet_dataset(&data.packets, LabelMode::BinaryAttack);
    // Project onto the minimal switch key: zero every column except
    // is_udp (10), src_port_is_dns (12) and wire_len (3).
    for row in &mut dataset.x {
        for (i, v) in row.iter_mut().enumerate() {
            if i != 3 && i != 10 && i != 12 {
                *v = 0.0;
            }
        }
    }
    // Fit on the raw, unbalanced capture: the overlap between attack and
    // benign fat answers is carried by a handful of benign packets, and
    // naive rebalancing tends to throw exactly those away.
    let tree = DecisionTree::fit(
        &dataset,
        TreeConfig { max_depth: 3, min_samples_leaf: 40, ..TreeConfig::default() },
    );
    let confidences: Vec<String> = tree
        .leaf_rules()
        .iter()
        .filter(|r| r.class == 1)
        .map(|r| format!("{:.3} (n={})", r.confidence, r.support))
        .collect();
    out.push_str(&format!("drop-leaf confidences: {}\n\n", confidences.join(", ")));
    let mut t = Table::new(&[
        "gate",
        "TCAM entries",
        "leaves gated out",
        "suppression",
        "attack passed",
        "benign dropped",
        "drop precision",
    ]);
    for gate in GATES {
        let (program, report) = compile_tree(
            &tree,
            CompileConfig { confidence_gate: gate, ..Default::default() },
            format!("raw-gate-{gate:.2}"),
        );
        let outcome = road_test(
            scenario,
            program,
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        t.row(vec![
            f(gate, 2),
            report.tcam_entries.to_string(),
            report.leaves_gated_out.to_string(),
            pct(outcome.suppression()),
            outcome.attack_packets_passed.to_string(),
            outcome.benign_packets_dropped.to_string(),
            pct(outcome.filter.drop_precision()),
        ]);
    }
    out.push_str(&t.render());
}

fn sweep(
    out: &mut String,
    data: &campuslab::testbed::CollectedData,
    scenario: &Scenario,
    label: &str,
    tree: TreeConfig,
) {
    out.push_str(&format!("\n{label}:\n\n"));
    let mut t = Table::new(&[
        "gate",
        "TCAM entries",
        "leaves gated out",
        "suppression",
        "attack passed",
        "benign dropped",
        "drop precision",
    ]);
    for gate in GATES {
        let cfg = DevLoopConfig {
            distill: DistillConfig { tree, ..Default::default() },
            compile: CompileConfig { confidence_gate: gate, ..Default::default() },
            ..Default::default()
        };
        let dev = run_development_loop(&data.packets, &cfg);
        let outcome = road_test(
            scenario,
            dev.program.clone(),
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        t.row(vec![
            f(gate, 2),
            dev.program.n_entries().to_string(),
            dev.compile.leaves_gated_out.to_string(),
            pct(outcome.suppression()),
            outcome.attack_packets_passed.to_string(),
            outcome.benign_packets_dropped.to_string(),
            pct(outcome.filter.drop_precision()),
        ]);
    }
    out.push_str(&t.render());
}

/// Run the experiment and render its report.
pub fn run() -> String {
    run_observed().table
}

/// Run the experiment and return the full Observatory bundle: the table
/// plus the metrics dumps and sim-time traces of both collection runs.
pub fn run_observed() -> ObsBundle {
    let mut out = String::from(
        "E1: the confidence gate on ingress drops (DNS amplification)\n",
    );
    let scenario = Scenario::small();
    let data = campuslab::testbed::collect(&scenario);

    sweep(
        &mut out,
        &data,
        &scenario,
        "(a) production model (depth-6 distilled tree)",
        TreeConfig::shallow(6),
    );
    // A stealthy campaign: 30 qps hiding inside 4x the benign session rate,
    // so attack evidence is comparable in volume to benign DNS recursion.
    let mut stealth = Scenario::small();
    stealth.workload.sessions_per_sec = 40.0;
    stealth.attack = campuslab::testbed::AttackScenario::DnsAmplification {
        victim_index: 0,
        qps: 30.0,
        start_frac: 0.15,
        duration_frac: 0.8,
    };
    let stealth_data = campuslab::testbed::collect(&stealth);
    sweep_direct_tree(&mut out, &stealth_data, &stealth);
    out.push_str(
        "\nshape check: a volumetric flood is overwhelming evidence - every leaf is\nconfident and the gate costs nothing (a finding in itself). Against a\nstealthy campaign with a coarse model, leaves are impure: low gates ship\nthem (benign collateral), high gates prune them (suppression falls) - the\nprecision/recall dial the paper's >=90% rule is turning.\n",
    );
    let prom = format!(
        "# run: collect[volumetric]\n{}# run: collect[stealthy]\n{}",
        data.obs.prom(),
        stealth_data.obs.prom()
    );
    let mut tracer = Tracer::new();
    tracer.merge_from(&data.obs.tracer);
    tracer.merge_from(&stealth_data.obs.tracer);
    ObsBundle { id: "E1", table: out, prom, trace: tracer.render_json() }
}
