//! **E8 — the §2 placement claim**: where an automation task runs (data
//! plane, control plane, cloud) "will depend on how fast and with what
//! accuracy that task has to be performed". The same detector defends the
//! same campus from each tier.

use crate::table::{pct, Table};
use campuslab::control::Placement;
use campuslab::testbed::Scenario;
use campuslab::Platform;

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E8: inference placement vs reaction latency\n\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);
    out.push_str(&format!(
        "deployable model: depth-{} tree, {} TCAM entries, fidelity {}\n\n",
        dev.distillation.student_depth,
        dev.program.n_entries(),
        pct(dev.fidelity)
    ));

    let mut t = Table::new(&[
        "placement",
        "detect+install",
        "time-to-mitigation",
        "suppression",
        "attack passed",
        "benign dropped",
    ]);
    for placement in [Placement::Switch, Placement::Controller, Placement::Cloud] {
        let outcome = match placement {
            Placement::Switch => platform.road_test_switch(&dev),
            p => {
                let wm = platform.train_window_model(&data);
                platform.road_test_at(&dev, wm, p)
            }
        };
        t.row(vec![
            format!("{placement:?}"),
            placement.install_delay().to_string(),
            outcome
                .time_to_mitigation
                .map(|d| d.to_string())
                .unwrap_or_else(|| "never".into()),
            pct(outcome.suppression()),
            outcome.attack_packets_passed.to_string(),
            outcome.benign_packets_dropped.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: the switch tier reacts from packet one; the controller pays\none detection window; the cloud pays the window plus WAN latency - and the\nsuppression gap is exactly the packets that land during the blind period.\nThe trade the paper assigns to resource placement is visible end to end.\n",
    );
    out
}
