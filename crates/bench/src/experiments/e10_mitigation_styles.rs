//! **E10 — ablation: hard drop vs rate-limit policing.** The paper's §2
//! example action is "drop attack traffic on ingress"; real operators
//! often prefer policing (bounded blast radius if the model is wrong).
//! Same model, same attack, three enforcement styles.

use crate::table::{pct, Table};
use campuslab::control::Placement;
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::testbed::{road_test, RoadTestConfig, Scenario};

/// Run the experiment and render its report.
pub fn run() -> String {
    let mut out = String::from("E10: enforcement style - hard drop vs policing\n\n");
    let scenario = Scenario::small();
    let data = campuslab::testbed::collect(&scenario);
    let dev = run_development_loop(&data.packets, &DevLoopConfig::default());

    let styles: Vec<(String, campuslab::dataplane::PipelineProgram)> = vec![
        ("hard drop".into(), dev.program.clone()),
        ("police @ 8 Mbps".into(), dev.program.with_drops_as_policers(8_000_000)),
        ("police @ 2 Mbps".into(), dev.program.with_drops_as_policers(2_000_000)),
        ("police @ 1 Mbps".into(), dev.program.with_drops_as_policers(1_000_000)),
    ];

    let mut t = Table::new(&[
        "enforcement",
        "suppression",
        "attack passed",
        "benign dropped",
        "drop precision",
    ]);
    for (name, program) in styles {
        let outcome = road_test(
            &scenario,
            program,
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        t.row(vec![
            name,
            pct(outcome.suppression()),
            outcome.attack_packets_passed.to_string(),
            outcome.benign_packets_dropped.to_string(),
            pct(outcome.filter.drop_precision()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: the policer admits a bounded trickle (its token rate) and\ndrops the flood's excess; tightening the rate approaches the hard drop.\nThe knob buys insurance: a mistaken rule rate-limits a victim instead of\nblack-holing them.\n",
    );
    out
}
