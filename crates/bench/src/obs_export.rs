//! Observatory export for the experiment harness: a per-experiment bundle
//! of (table, Prometheus dump, sim-time trace), a canonical text form the
//! golden-replay suite pins byte-for-byte, and the `BENCH_obs.json`
//! writer used by `all_experiments`.

use campuslab::obs::json_escape;
use std::io::Write;

/// Everything one observed experiment produced.
pub struct ObsBundle {
    /// Registry id, e.g. `"E14"`.
    pub id: &'static str,
    /// The rendered report table — exactly what `run()` returns.
    pub table: String,
    /// Prometheus text dump of every registry the run touched, with
    /// `# run:`-style comment headers between sections.
    pub prom: String,
    /// Sim-time span trace as JSON (one span per line).
    pub trace: String,
}

impl ObsBundle {
    /// The canonical replay form: table, dump and trace concatenated with
    /// fixed section markers. Golden files store exactly this string, so a
    /// byte anywhere — a stat, a metric sample, a span stamp — that drifts
    /// between sequential and parallel runs (or between commits) fails the
    /// replay test.
    pub fn canonical(&self) -> String {
        format!(
            "== table ==\n{}\n== prom ==\n{}== trace ==\n{}",
            self.table, self.prom, self.trace
        )
    }

    /// One JSON object for `BENCH_obs.json`. The trace is already JSON and
    /// embeds raw; the table is omitted (it lives in the text report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"prom\":\"{}\",\"spans\":{}}}",
            json_escape(self.id),
            json_escape(&self.prom),
            self.trace.trim_end()
        )
    }
}

/// Render the whole export file: a JSON array of bundle objects in
/// registry order.
pub fn render_obs_json(bundles: &[&ObsBundle]) -> String {
    let mut out = String::from("[\n");
    for (i, b) in bundles.iter().enumerate() {
        out.push_str(&b.to_json());
        out.push_str(if i + 1 < bundles.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Write `BENCH_obs.json` (path overridable via `CAMPUSLAB_OBS_JSON`).
/// Returns the path written to.
pub fn write_obs_json(bundles: &[&ObsBundle]) -> std::io::Result<String> {
    let path = std::env::var("CAMPUSLAB_OBS_JSON").unwrap_or_else(|_| "BENCH_obs.json".into());
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render_obs_json(bundles).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> ObsBundle {
        ObsBundle {
            id: "EX",
            table: "t\n".into(),
            prom: "# run: demo\nm_total 1\n".into(),
            trace: "[\n  {\"seq\":0,\"name\":\"run\",\"start_ns\":0,\"end_ns\":5}\n]\n".into(),
        }
    }

    #[test]
    fn canonical_sections_are_ordered_and_stable() {
        let c = bundle().canonical();
        let t = c.find("== table ==").unwrap();
        let p = c.find("== prom ==").unwrap();
        let s = c.find("== trace ==").unwrap();
        assert!(t < p && p < s);
        assert_eq!(c, bundle().canonical());
    }

    #[test]
    fn obs_json_is_a_well_formed_array() {
        let b = bundle();
        let json = render_obs_json(&[&b, &b]);
        assert!(json.starts_with("[\n{\"id\":\"EX\""));
        assert_eq!(json.matches("\"spans\":[").count(), 2);
        assert!(json.trim_end().ends_with(']'));
        // The escaped prom round-trips through the vendored parser.
        let parsed = campuslab::obs::json_escape("m_total 1\n");
        assert!(json.contains(&parsed));
    }
}
