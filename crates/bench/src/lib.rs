//! # campuslab-bench
//!
//! The experiment harness: one module per figure/experiment in
//! `EXPERIMENTS.md`, each exposing `run() -> String` (the printed table)
//! so the thin binaries in `src/bin/` and the `all_experiments` driver
//! share one implementation. Criterion performance benches live in
//! `benches/`.

pub mod table;
pub mod experiments;
pub mod obs_export;
pub mod runner;

pub use experiments::{
    e10_mitigation_styles, e11_resilience, e12_multiclass, e13_perf_pinpoint, e14_chaos,
    e15_rollout_guard, e16_resolver, e17_driftpilot, e18_tenant_plaza, e19_phoenix, e1_ddos_gate, e2_lossless_capture, e3_datastore_query,
    e4_privacy_utility, e5_distillation, e6_dataplane_compile, e7_cross_campus, e8_placement,
    e9_trust_report, fig1_dual_role, fig2_loops,
};

pub use obs_export::ObsBundle;

/// One registry entry: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// The Observatory-instrumented runner for an experiment id, when it has
/// one. These run the *same* code as the plain `run()` (which delegates to
/// them), returning the table plus the metrics dump and sim-time trace.
pub fn observed(id: &str) -> Option<fn() -> ObsBundle> {
    match id {
        "E1" => Some(e1_ddos_gate::run_observed),
        "E3" => Some(e3_datastore_query::run_observed),
        "E7" => Some(e7_cross_campus::run_observed),
        "E14" => Some(e14_chaos::run_observed),
        "E15" => Some(e15_rollout_guard::run_observed),
        "E16" => Some(e16_resolver::run_observed),
        "E17" => Some(e17_driftpilot::run_observed),
        "E18" => Some(e18_tenant_plaza::run_observed),
        "E19" => Some(e19_phoenix::run_observed),
        _ => None,
    }
}

/// Every experiment, in report order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("F1", "Figure 1: the dual role (data source + testbed)", fig1_dual_role::run),
        ("F2", "Figure 2: slow development loop vs fast control loop", fig2_loops::run),
        ("E1", "DDoS mitigation confidence gate (\u{2265}90% rule)", e1_ddos_gate::run),
        ("E2", "Lossless full packet capture envelope", e2_lossless_capture::run),
        ("E3", "Data store: indexed vs full-scan search", e3_datastore_query::run),
        ("E4", "Privacy: prefix preservation and model utility", e4_privacy_utility::run),
        ("E5", "Model extraction: fidelity vs tree depth", e5_distillation::run),
        ("E6", "Data-plane compilation and concurrent-task ceiling", e6_dataplane_compile::run),
        ("E7", "Cross-campus reproducibility matrix", e7_cross_campus::run),
        ("E8", "Inference placement: latency vs suppression", e8_placement::run),
        ("E9", "Operator trust: evidence audits", e9_trust_report::run),
        ("E10", "Ablation: hard drop vs rate-limit policing", e10_mitigation_styles::run),
        ("E11", "Failure injection: road-testing through an outage", e11_resilience::run),
        ("E12", "Multi-class attack identification, five concurrent tasks", e12_multiclass::run),
        ("E13", "Performance pinpointing from passive handshake RTTs", e13_perf_pinpoint::run),
        ("E14", "Robustness under chaos: graceful degradation sweep", e14_chaos::run),
        ("E15", "Guarded deployment under chaos: shadow/canary rollback", e15_rollout_guard::run),
        ("E16", "Resolver under water torture: degrade, defend, recover", e16_resolver::run),
        ("E17", "Always-on pipeline under drift: DriftPilot", e17_driftpilot::run),
        ("E18", "Multi-tenant experimentation-as-a-service: TenantPlaza", e18_tenant_plaza::run),
        ("E19", "PhoenixRun: crash-fault tolerance (checkpoint/restore + WAL)", e19_phoenix::run),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_complete_and_unique() {
        let all = super::all();
        assert_eq!(all.len(), 21);
        let ids: std::collections::HashSet<&str> = all.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(ids.len(), 21);
    }
}
