//! Parallel experiment runner: fans the registry in [`crate::all`] out
//! across cores and returns the reports in registry order.
//!
//! Every experiment is a pure `fn() -> String` with its own internal
//! seeds, so running them concurrently cannot change any table; only the
//! wall-clock time of a full regeneration drops. Worker count follows
//! `CAMPUSLAB_JOBS` / available parallelism (see
//! [`campuslab::netsim::par::worker_count`]).

use crate::obs_export::ObsBundle;
use campuslab::netsim::par::parallel_map;
use std::time::Duration;

/// One regenerated experiment.
pub struct ExperimentReport {
    /// Registry id, e.g. `"E7"`.
    pub id: &'static str,
    /// Human-readable title from the registry.
    pub title: &'static str,
    /// The rendered table.
    pub body: String,
    /// The Observatory bundle, for experiments with an instrumented
    /// runner (see [`crate::observed`]). The body always equals
    /// `obs.table` when present — the experiment runs once.
    pub obs: Option<ObsBundle>,
    /// How long this experiment took on its worker.
    pub elapsed: Duration,
}

/// Regenerate every experiment in parallel, preserving registry order.
/// Experiments with an Observatory runner execute through it (once), so
/// the report also carries their metrics dump and trace.
pub fn run_all() -> Vec<ExperimentReport> {
    let registry = crate::all();
    parallel_map(&registry, |_, &(id, title, runner)| {
        let started = std::time::Instant::now();
        let (body, obs) = match crate::observed(id) {
            Some(observed_runner) => {
                let bundle = observed_runner();
                (bundle.table.clone(), Some(bundle))
            }
            None => (runner(), None),
        };
        ExperimentReport { id, title, body, obs, elapsed: started.elapsed() }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_reports_match_sequential_runs() {
        // The full registry is slow; spot-check the two cheapest entries
        // plus ordering of the whole id list.
        let reports = run_all();
        let registry = crate::all();
        assert_eq!(reports.len(), registry.len());
        for (report, (id, title, _)) in reports.iter().zip(&registry) {
            assert_eq!(report.id, *id);
            assert_eq!(report.title, *title);
            assert!(!report.body.is_empty(), "{id} produced an empty report");
        }
        let (id0, _, run0) = registry[0];
        let sequential = run0();
        assert_eq!(reports[0].body, sequential, "{id0} differs under parallel run");
        // Observed experiments carry their bundle, and the body is the
        // bundle's own table (one execution, one source).
        for report in &reports {
            match &report.obs {
                Some(bundle) => {
                    assert_eq!(bundle.id, report.id);
                    assert_eq!(bundle.table, report.body);
                    assert!(!bundle.prom.is_empty(), "{} dump empty", report.id);
                    assert!(bundle.trace.starts_with('['), "{} trace not JSON", report.id);
                }
                None => assert!(crate::observed(report.id).is_none()),
            }
        }
    }
}
