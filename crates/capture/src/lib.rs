//! # campuslab-capture
//!
//! The monitoring plane of CampusLab: "enterprise-wide, continuous,
//! lossless, full packet capture at scale ... with full payload, with no
//! sampling" (paper §5), modeled end to end:
//!
//! * [`ring`] — multi-queue capture rings with explicit drop accounting,
//!   so "lossless" is a measured property, not an assumption (experiment E2).
//! * [`records`] — the packet/flow/DNS/sensor record vocabulary shared with
//!   the data store; ground-truth labels ride along explicitly marked as
//!   generator-provided.
//! * [`flow`] — bidirectional flow assembly with idle/active timeouts and
//!   FIN/RST fast paths.
//! * [`meta`] — on-the-fly metadata extraction (DNS transactions, service
//!   tags), the appliance's enrichment stage.
//! * [`pcap`] — classic libpcap reading/writing of exact wire images.
//! * [`sensors`] — auxiliary event sources (syslog, firewall, config)
//!   time-synchronized with packet data.
//! * [`sketch`] — count-min + heavy-hitter sketches: constant-memory
//!   telemetry of the kind switches and appliances compute in-line.
//! * [`monitor`] — the composed appliance plus the `SimHooks` adapter that
//!   attaches it to the simulated campus border tap.

//!
//! ```
//! use campuslab_capture::{CaptureRing, RingConfig};
//! use campuslab_netsim::SimTime;
//!
//! // A ring drained faster than it is offered never drops.
//! let mut ring = CaptureRing::new(RingConfig::default());
//! for i in 0..1_000u64 {
//!     assert!(ring.offer(SimTime(i * 10_000))); // 100k pps vs 1.5M pps drain
//! }
//! assert_eq!(ring.stats.dropped, 0);
//! ```


#![deny(rust_2018_idioms)]
#![deny(unreachable_pub)]

pub mod records;
pub mod ring;
pub mod flow;
pub mod pcap;
pub mod meta;
pub mod sensors;
pub mod sketch;
pub mod monitor;
pub mod observe;

pub use flow::{FlowTable, FlowTableConfig, FlowTableStats};
pub use campuslab_netsim::fxhash::{self, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use meta::{service_tag, DnsExtractor, ServiceTag, TcpRttEstimator};
pub use monitor::{BorderTapHooks, Monitor, MonitorConfig, MonitorStats};
pub use observe::CaptureObs;
pub use pcap::{PcapPacket, PcapReader, PcapWriter};
pub use records::{
    Direction, DnsMetaRecord, FlowKey, FlowRecord, PacketRecord, SensorRecord, TcpFlags,
    TcpRttRecord,
};
pub use ring::{CaptureArray, CaptureRing, RingConfig, RingStats};
pub use sensors::{merge_sorted, SensorHub};
pub use sketch::{CountMinSketch, FrozenHeavyHitters, HeavyHitters};
