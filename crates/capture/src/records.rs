//! The record types the monitoring plane produces and the data store
//! ingests. Timestamps are plain nanoseconds so records serialize cleanly
//! and stay independent of the simulator's clock type.

use campuslab_netsim::{Dir, Packet, SimTime, TransportHeader};
use campuslab_wire::IpProtocol;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Direction of a packet relative to the campus: did it enter or leave?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the Internet into the campus.
    Inbound,
    /// From the campus toward the Internet.
    Outbound,
}

impl Direction {
    /// Map a border-link traversal direction. The campus border link is
    /// built `internet -> border`, so `AtoB` is inbound.
    pub fn from_border_dir(dir: Dir) -> Direction {
        match dir {
            Dir::AtoB => Direction::Inbound,
            Dir::BtoA => Direction::Outbound,
        }
    }
}

/// TCP flag summary captured per packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub psh: bool,
}

/// One captured packet, as stored: parsed header summary plus ground-truth
/// labels. The labels come from the *generator*, not the wire — a real
/// campus gives you everything here except `label_app`/`label_attack`,
/// which is exactly why experiments score models against them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp, nanoseconds since simulation start.
    pub ts_ns: u64,
    pub direction: Direction,
    pub src: IpAddr,
    pub dst: IpAddr,
    pub protocol: u8,
    pub src_port: u16,
    pub dst_port: u16,
    /// Full on-wire length.
    pub wire_len: u32,
    pub ttl: u8,
    pub tcp_flags: TcpFlags,
    /// Generator ground truth: flow id.
    pub flow_id: u64,
    /// Generator ground truth: application class id (0 = unlabeled).
    pub label_app: u16,
    /// Generator ground truth: attack id (0 = benign).
    pub label_attack: u16,
}

impl PacketRecord {
    /// Build a record from a packet seen on the wire at `now`.
    pub fn from_packet(now: SimTime, direction: Direction, pkt: &Packet) -> Self {
        let tcp_flags = match &pkt.transport {
            TransportHeader::Tcp(t) => TcpFlags {
                syn: t.control.syn,
                ack: t.control.ack,
                fin: t.control.fin,
                rst: t.control.rst,
                psh: t.control.psh,
            },
            _ => TcpFlags::default(),
        };
        PacketRecord {
            ts_ns: now.as_nanos(),
            direction,
            src: pkt.network.src(),
            dst: pkt.network.dst(),
            protocol: u8::from(pkt.network.protocol()),
            src_port: pkt.transport.src_port().unwrap_or(0),
            dst_port: pkt.transport.dst_port().unwrap_or(0),
            wire_len: pkt.wire_len() as u32,
            ttl: pkt.network.ttl(),
            tcp_flags,
            flow_id: pkt.truth.flow_id,
            label_app: pkt.truth.app_class,
            label_attack: pkt.truth.attack.unwrap_or(0),
        }
    }

    /// The protocol as the wire enum.
    pub fn ip_protocol(&self) -> IpProtocol {
        IpProtocol::from(self.protocol)
    }

    /// True when the generator marked this packet malicious.
    pub fn is_malicious(&self) -> bool {
        self.label_attack != 0
    }

    /// The canonical flow key for this record.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src: self.src,
            dst: self.dst,
            protocol: self.protocol,
            src_port: self.src_port,
            dst_port: self.dst_port,
        }
    }
}

/// A 5-tuple identifying a unidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub src: IpAddr,
    pub dst: IpAddr,
    pub protocol: u8,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowKey {
    /// The same flow viewed from the other side.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-independent key: the lexicographically smaller of
    /// `self` and `reversed`, so both directions of a conversation map to
    /// one bidirectional flow.
    pub fn canonical(&self) -> FlowKey {
        let rev = self.reversed();
        if (self.src, self.src_port) <= (rev.src, rev.src_port) {
            *self
        } else {
            rev
        }
    }
}

/// An aggregated bidirectional flow, emitted when the flow ends or times
/// out. "Forward" is the direction of the first observed packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    pub key: FlowKey,
    pub first_ts_ns: u64,
    pub last_ts_ns: u64,
    pub fwd_packets: u64,
    pub fwd_bytes: u64,
    pub rev_packets: u64,
    pub rev_bytes: u64,
    pub syn_count: u32,
    pub fin_count: u32,
    pub rst_count: u32,
    /// Mean inter-arrival over all packets, nanoseconds.
    pub mean_iat_ns: u64,
    /// Smallest and largest packet seen.
    pub min_len: u32,
    pub max_len: u32,
    /// Majority ground-truth labels across member packets.
    pub label_app: u16,
    pub label_attack: u16,
}

impl FlowRecord {
    /// Flow duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.last_ts_ns.saturating_sub(self.first_ts_ns)
    }

    /// Total packets, both directions.
    pub fn total_packets(&self) -> u64 {
        self.fwd_packets + self.rev_packets
    }

    /// Total bytes, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.fwd_bytes + self.rev_bytes
    }

    /// True when the generator marked the flow malicious.
    pub fn is_malicious(&self) -> bool {
        self.label_attack != 0
    }
}

/// A DNS transaction extracted on the fly (the "metadata" the paper's
/// monitoring appliance generates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnsMetaRecord {
    pub ts_ns: u64,
    pub direction: Direction,
    pub client: IpAddr,
    pub server: IpAddr,
    pub qname: String,
    pub qtype: u16,
    pub is_response: bool,
    pub answer_count: u16,
    pub wire_len: u32,
    /// ANY/TXT query or fat response — the amplification heuristic.
    pub amplification_prone: bool,
    pub label_attack: u16,
}

/// A TCP handshake timing measurement taken at the tap: the gap between
/// the SYN and the SYN-ACK crossing the same point includes the real
/// queueing delay on the far side — the signal the paper's §3 wants for
/// "pinpointing performance problems".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpRttRecord {
    /// When the SYN-ACK crossed the tap.
    pub ts_ns: u64,
    pub client: IpAddr,
    pub server: IpAddr,
    pub dst_port: u16,
    /// SYN -> SYN-ACK gap as seen at the tap.
    pub rtt_ns: u64,
}

/// Auxiliary sensor events (server logs, firewall, config changes) that the
/// data store time-synchronizes with packet data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SensorRecord {
    /// A syslog line from a campus server.
    Syslog { ts_ns: u64, host: IpAddr, severity: u8, message: String },
    /// A firewall verdict.
    Firewall { ts_ns: u64, src: IpAddr, dst: IpAddr, dst_port: u16, allowed: bool },
    /// A device configuration change.
    ConfigChange { ts_ns: u64, device: String, summary: String },
}

impl SensorRecord {
    /// The event's timestamp.
    pub fn ts_ns(&self) -> u64 {
        match self {
            SensorRecord::Syslog { ts_ns, .. }
            | SensorRecord::Firewall { ts_ns, .. }
            | SensorRecord::ConfigChange { ts_ns, .. } => *ts_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
    use std::net::Ipv4Addr;

    fn sample_packet() -> Packet {
        let mut b = PacketBuilder::new();
        b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 1, 1, 10),
            53,
            40000,
            Payload::Synthetic(512),
            60,
            GroundTruth { flow_id: 9, app_class: 1, attack: Some(1) },
        )
    }

    #[test]
    fn record_captures_header_fields_and_truth() {
        let pkt = sample_packet();
        let r = PacketRecord::from_packet(SimTime::from_millis(5), Direction::Inbound, &pkt);
        assert_eq!(r.ts_ns, 5_000_000);
        assert_eq!(r.src, "203.0.113.1".parse::<IpAddr>().unwrap());
        assert_eq!(r.dst_port, 40000);
        assert_eq!(r.wire_len as usize, pkt.wire_len());
        assert_eq!(r.label_app, 1);
        assert_eq!(r.label_attack, 1);
        assert!(r.is_malicious());
        assert_eq!(r.ip_protocol(), IpProtocol::Udp);
    }

    #[test]
    fn flow_key_canonicalization_is_direction_independent() {
        let pkt = sample_packet();
        let r = PacketRecord::from_packet(SimTime::ZERO, Direction::Inbound, &pkt);
        let k = r.flow_key();
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn border_direction_mapping() {
        assert_eq!(Direction::from_border_dir(Dir::AtoB), Direction::Inbound);
        assert_eq!(Direction::from_border_dir(Dir::BtoA), Direction::Outbound);
    }

    #[test]
    fn records_serialize_round_trip() {
        let pkt = sample_packet();
        let r = PacketRecord::from_packet(SimTime::ZERO, Direction::Outbound, &pkt);
        let json = serde_json::to_string(&r).unwrap();
        let back: PacketRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn flow_record_helpers() {
        let pkt = sample_packet();
        let key = PacketRecord::from_packet(SimTime::ZERO, Direction::Inbound, &pkt).flow_key();
        let f = FlowRecord {
            key,
            first_ts_ns: 1_000,
            last_ts_ns: 11_000,
            fwd_packets: 3,
            fwd_bytes: 300,
            rev_packets: 2,
            rev_bytes: 2000,
            syn_count: 1,
            fin_count: 0,
            rst_count: 0,
            mean_iat_ns: 2_500,
            min_len: 60,
            max_len: 1500,
            label_app: 2,
            label_attack: 0,
        };
        assert_eq!(f.duration_ns(), 10_000);
        assert_eq!(f.total_packets(), 5);
        assert_eq!(f.total_bytes(), 2300);
        assert!(!f.is_malicious());
    }

    #[test]
    fn sensor_record_timestamps() {
        let s = SensorRecord::Syslog {
            ts_ns: 7,
            host: "10.1.255.25".parse().unwrap(),
            severity: 3,
            message: "auth failure".into(),
        };
        assert_eq!(s.ts_ns(), 7);
        let f = SensorRecord::Firewall {
            ts_ns: 9,
            src: "203.0.113.5".parse().unwrap(),
            dst: "10.1.1.1".parse().unwrap(),
            dst_port: 22,
            allowed: false,
        };
        assert_eq!(f.ts_ns(), 9);
    }
}
