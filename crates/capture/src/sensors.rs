//! Auxiliary sensors: the "complementary data from other available sensors
//! or sources (e.g., server logs, firewall rules, configuration files,
//! events)" the paper's data store fuses with packet data (§5).

use crate::records::SensorRecord;
use std::net::IpAddr;

/// Collects sensor events and hands them over time-sorted, which is the
/// "time-synchronized" property the data store advertises.
#[derive(Debug, Default)]
pub struct SensorHub {
    events: Vec<SensorRecord>,
}

impl SensorHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a syslog line.
    pub fn syslog(&mut self, ts_ns: u64, host: IpAddr, severity: u8, message: impl Into<String>) {
        self.events.push(SensorRecord::Syslog {
            ts_ns,
            host,
            severity,
            message: message.into(),
        });
    }

    /// Record a firewall verdict.
    pub fn firewall(&mut self, ts_ns: u64, src: IpAddr, dst: IpAddr, dst_port: u16, allowed: bool) {
        self.events.push(SensorRecord::Firewall { ts_ns, src, dst, dst_port, allowed });
    }

    /// Record a device configuration change.
    pub fn config_change(&mut self, ts_ns: u64, device: impl Into<String>, summary: impl Into<String>) {
        self.events.push(SensorRecord::ConfigChange {
            ts_ns,
            device: device.into(),
            summary: summary.into(),
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Take all events, sorted by timestamp (stable).
    pub fn drain_sorted(&mut self) -> Vec<SensorRecord> {
        let mut events = std::mem::take(&mut self.events);
        events.sort_by_key(|e| e.ts_ns());
        events
    }
}

/// Merge several already-sorted sensor streams into one sorted stream —
/// how the data store time-synchronizes sources with different clocks
/// (after offset correction, which the simulator gets for free).
pub fn merge_sorted(streams: Vec<Vec<SensorRecord>>) -> Vec<SensorRecord> {
    let mut all: Vec<SensorRecord> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| e.ts_ns());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn hub_sorts_on_drain() {
        let mut hub = SensorHub::new();
        hub.syslog(300, ip("10.1.255.25"), 4, "deferred delivery");
        hub.firewall(100, ip("203.0.113.9"), ip("10.1.1.1"), 22, false);
        hub.config_change(200, "campus-border", "acl 101 updated");
        assert_eq!(hub.len(), 3);
        let sorted = hub.drain_sorted();
        assert!(hub.is_empty());
        let times: Vec<u64> = sorted.iter().map(|e| e.ts_ns()).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn merge_interleaves_streams() {
        let a = vec![
            SensorRecord::ConfigChange { ts_ns: 10, device: "a".into(), summary: "x".into() },
            SensorRecord::ConfigChange { ts_ns: 30, device: "a".into(), summary: "y".into() },
        ];
        let b = vec![SensorRecord::ConfigChange {
            ts_ns: 20,
            device: "b".into(),
            summary: "z".into(),
        }];
        let merged = merge_sorted(vec![a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.ts_ns()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn firewall_events_carry_verdicts() {
        let mut hub = SensorHub::new();
        hub.firewall(5, ip("203.0.113.9"), ip("10.1.1.1"), 443, true);
        match &hub.drain_sorted()[0] {
            SensorRecord::Firewall { allowed, dst_port, .. } => {
                assert!(*allowed);
                assert_eq!(*dst_port, 443);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
