//! Streaming sketches for on-the-fly telemetry: a count-min sketch with a
//! top-k heavy-hitter tracker — the constant-memory way a monitoring
//! appliance (or a programmable switch) answers "who is moving the bytes
//! right now?" without storing per-host state.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::IpAddr;

/// A count-min sketch over arbitrary hashable keys.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<Vec<u64>>,
    /// Total weight inserted (for error bounds).
    pub total: u64,
}

impl CountMinSketch {
    /// A sketch with `depth` rows of `width` counters. Error bound:
    /// overestimate ≤ `e * total / width` with probability `1 - e^-depth`.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0);
        CountMinSketch { width, depth, rows: vec![vec![0; width]; depth], total: 0 }
    }

    fn index<K: Hash>(&self, key: &K, row: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        row.hash(&mut h);
        key.hash(&mut h);
        (h.finish() % self.width as u64) as usize
    }

    /// Add `weight` to `key`.
    pub fn add<K: Hash>(&mut self, key: &K, weight: u64) {
        for row in 0..self.depth {
            let i = self.index(key, row);
            self.rows[row][i] += weight;
        }
        self.total += weight;
    }

    /// Point estimate for `key` (never underestimates).
    pub fn estimate<K: Hash>(&self, key: &K) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[row][self.index(key, row)])
            .min()
            .unwrap_or(0)
    }

    /// Worst-case overestimate bound at this fill level.
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E * self.total as f64 / self.width as f64
    }
}

/// Tracks the `k` heaviest keys exactly, fed by sketch estimates — the
/// classic sketch + heap heavy-hitter construction.
#[derive(Debug, Clone)]
pub struct HeavyHitters {
    sketch: CountMinSketch,
    k: usize,
    /// Current candidates: key -> estimated weight.
    top: HashMap<IpAddr, u64>,
}

impl HeavyHitters {
    /// Track the top `k` addresses with a `width x depth` sketch.
    pub fn new(k: usize, width: usize, depth: usize) -> Self {
        assert!(k > 0);
        HeavyHitters { sketch: CountMinSketch::new(width, depth), k, top: HashMap::new() }
    }

    /// Account `weight` bytes to `addr`.
    pub fn add(&mut self, addr: IpAddr, weight: u64) {
        self.sketch.add(&addr, weight);
        let est = self.sketch.estimate(&addr);
        if self.top.len() < self.k || self.top.contains_key(&addr) {
            self.top.insert(addr, est);
            return;
        }
        // Replace the lightest candidate if this key now outweighs it.
        if let Some((&lightest, &w)) = self.top.iter().min_by_key(|(_, &w)| w) {
            if est > w {
                self.top.remove(&lightest);
                self.top.insert(addr, est);
            }
        }
        // Trim (k can shrink only through construction, but keep safe).
        while self.top.len() > self.k {
            if let Some((&lightest, _)) = self.top.iter().min_by_key(|(_, &w)| w) {
                self.top.remove(&lightest);
            }
        }
    }

    /// The current top talkers, heaviest first.
    pub fn top(&self) -> Vec<(IpAddr, u64)> {
        let mut v: Vec<(IpAddr, u64)> = self.top.iter().map(|(&a, &w)| (a, w)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total bytes observed.
    pub fn total(&self) -> u64 {
        self.sketch.total
    }

    /// Freeze the tracker for a checkpoint: the candidate map flattens to
    /// its deterministic heaviest-first order.
    pub fn freeze(&self) -> FrozenHeavyHitters {
        FrozenHeavyHitters { sketch: self.sketch.clone(), k: self.k, top: self.top() }
    }

    /// Rebuild a tracker from a frozen image.
    pub fn thaw(frozen: FrozenHeavyHitters) -> Self {
        HeavyHitters {
            sketch: frozen.sketch,
            k: frozen.k,
            top: frozen.top.into_iter().collect(),
        }
    }
}

/// A [`HeavyHitters`]'s checkpointable image.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FrozenHeavyHitters {
    pub sketch: CountMinSketch,
    pub k: usize,
    /// Candidates, heaviest first (ties by address) — the same order
    /// [`HeavyHitters::top`] reports.
    pub top: Vec<(IpAddr, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([10, 0, 0, last])
    }

    #[test]
    fn estimates_never_underestimate() {
        let mut s = CountMinSketch::new(256, 4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for i in 0..5_000u32 {
            let key = i % 300;
            let w = u64::from(key % 7 + 1);
            s.add(&key, w);
            *truth.entry(key).or_insert(0) += w;
        }
        for (key, &count) in &truth {
            assert!(s.estimate(key) >= count, "underestimate for {key}");
        }
    }

    #[test]
    fn overestimates_stay_within_the_bound() {
        let mut s = CountMinSketch::new(512, 4);
        for i in 0..20_000u32 {
            s.add(&(i % 1_000), 1);
        }
        let bound = s.error_bound();
        let mut violations = 0;
        for key in 0..1_000u32 {
            let err = s.estimate(&key).saturating_sub(20);
            if err as f64 > bound {
                violations += 1;
            }
        }
        // The bound holds with probability 1 - e^-4 per key.
        assert!(violations < 40, "bound violated {violations} times");
    }

    #[test]
    fn heavy_hitters_find_the_elephant() {
        let mut hh = HeavyHitters::new(3, 512, 4);
        // One elephant, many mice.
        for round in 0..200u64 {
            hh.add(ip(1), 10_000);
            hh.add(ip((round % 200) as u8), 100);
        }
        let top = hh.top();
        assert_eq!(top[0].0, ip(1));
        assert!(top[0].1 >= 2_000_000);
        assert_eq!(hh.total(), 200 * 10_100);
    }

    #[test]
    fn top_is_capped_at_k() {
        let mut hh = HeavyHitters::new(2, 128, 3);
        for i in 0..50u8 {
            hh.add(ip(i), u64::from(i) * 1_000);
        }
        let top = hh.top();
        assert_eq!(top.len(), 2);
        // The heaviest two inserted last dominate.
        assert_eq!(top[0].0, ip(49));
        assert_eq!(top[1].0, ip(48));
    }

    #[test]
    fn amplification_victim_surfaces_as_heavy_hitter() {
        // The ops use case: during an amplification flood, the victim's
        // inbound byte count dwarfs everyone within a window.
        let mut hh = HeavyHitters::new(5, 1024, 4);
        for i in 0..2_000u64 {
            hh.add(ip((i % 100) as u8), 800); // background
            if i % 2 == 0 {
                hh.add(ip(200), 3_000); // victim flood
            }
        }
        assert_eq!(hh.top()[0].0, ip(200));
    }
}
