//! Classic libpcap file format (the 24-byte global header, microsecond
//! timestamps) — the lingua franca for "everything seen on the wire".

use std::io::{self, Read, Write};

const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Writes a pcap stream.
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W, snaplen: u32) -> io::Result<Self> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, snaplen, packets: 0 })
    }

    /// Append one packet captured at `ts_ns`, truncating to the snaplen.
    pub fn write_packet(&mut self, ts_ns: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let usecs = ((ts_ns % 1_000_000_000) / 1_000) as u32;
        let caplen = (frame.len() as u32).min(self.snaplen);
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        self.out.write_all(&caplen.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&frame[..caplen as usize])?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One packet read back from a pcap stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp in nanoseconds (microsecond precision on disk).
    pub ts_ns: u64,
    /// Captured bytes (may be shorter than the original frame).
    pub data: Vec<u8>,
    /// Original frame length on the wire.
    pub orig_len: u32,
}

/// Reads a pcap stream.
pub struct PcapReader<R: Read> {
    input: R,
}

impl<R: Read> PcapReader<R> {
    /// Validate the global header and return the reader.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut header = [0u8; 24];
        input.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != PCAP_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad pcap magic"));
        }
        let link = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
        if link != LINKTYPE_ETHERNET {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not ethernet"));
        }
        Ok(PcapReader { input })
    }

    /// Read the next packet; `Ok(None)` at clean end of stream.
    ///
    /// This is the fuzz-shaped entry point — it reads untrusted bytes — so
    /// every malformed shape must come back as `Err`, never a panic, and a
    /// record header cut short is distinguished from a clean EOF.
    pub fn next_packet(&mut self) -> io::Result<Option<PcapPacket>> {
        let mut rec = [0u8; 16];
        let mut filled = 0;
        while filled < rec.len() {
            match self.input.read(&mut rec[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if filled == 0 {
            return Ok(None); // clean end of stream, between records
        }
        if filled < rec.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated record header: {filled} of 16 bytes"),
            ));
        }
        let secs = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let usecs = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let caplen = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
        let orig_len = u32::from_le_bytes(rec[12..16].try_into().expect("4 bytes"));
        if caplen > 256 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "absurd caplen"));
        }
        if caplen > orig_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "caplen exceeds original frame length",
            ));
        }
        let mut data = vec![0u8; caplen as usize];
        self.input.read_exact(&mut data).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("truncated packet body: wanted {caplen} bytes"),
                )
            } else {
                e
            }
        })?;
        Ok(Some(PcapPacket {
            ts_ns: u64::from(secs) * 1_000_000_000 + u64::from(usecs) * 1_000,
            data,
            orig_len,
        }))
    }

    /// Collect every remaining packet.
    pub fn read_all(&mut self) -> io::Result<Vec<PcapPacket>> {
        let mut all = Vec::new();
        while let Some(pkt) = self.next_packet()? {
            all.push(pkt);
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_frames_and_times() {
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        w.write_packet(1_500_000_000, &[1, 2, 3, 4]).unwrap();
        w.write_packet(2_000_001_000, &[5; 100]).unwrap();
        assert_eq!(w.packet_count(), 2);
        let buf = w.finish().unwrap();

        let mut r = PcapReader::new(&buf[..]).unwrap();
        let pkts = r.read_all().unwrap();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].ts_ns, 1_500_000_000);
        assert_eq!(pkts[0].data, vec![1, 2, 3, 4]);
        assert_eq!(pkts[0].orig_len, 4);
        // Sub-microsecond precision is floored to the microsecond.
        assert_eq!(pkts[1].ts_ns, 2_000_001_000);
        assert_eq!(pkts[1].data.len(), 100);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut w = PcapWriter::new(Vec::new(), 16).unwrap();
        w.write_packet(0, &[7; 1500]).unwrap();
        let buf = w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let pkt = r.next_packet().unwrap().unwrap();
        assert_eq!(pkt.data.len(), 16);
        assert_eq!(pkt.orig_len, 1500);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = [0u8; 24];
        assert!(PcapReader::new(&buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error_mid_packet() {
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        w.write_packet(0, &[1; 50]).unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 10); // cut into the packet body
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn truncated_record_header_is_an_error_not_clean_eof() {
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        w.write_packet(0, &[1; 50]).unwrap();
        let full = w.finish().unwrap();
        // Cut at every offset inside the second record header: 24-byte
        // global header + 16-byte record header + 50-byte body, then 1..=15
        // bytes of a would-be next record.
        for extra in 1..16 {
            let mut buf = full.clone();
            buf.extend(std::iter::repeat_n(0u8, extra));
            let mut r = PcapReader::new(&buf[..]).unwrap();
            assert!(r.next_packet().unwrap().is_some());
            let err = r.next_packet().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "extra={extra}");
        }
    }

    #[test]
    fn caplen_larger_than_orig_len_is_rejected() {
        let mut buf = PcapWriter::new(Vec::new(), 65_535).unwrap().finish().unwrap();
        // Hand-craft a record claiming caplen 100 but orig_len 4.
        buf.extend_from_slice(&0u32.to_le_bytes()); // secs
        buf.extend_from_slice(&0u32.to_le_bytes()); // usecs
        buf.extend_from_slice(&100u32.to_le_bytes()); // caplen
        buf.extend_from_slice(&4u32.to_le_bytes()); // orig_len
        buf.extend_from_slice(&[0u8; 100]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let err = r.next_packet().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        // Fuzz-shaped sanity: feed prefixes of a valid stream plus noise.
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        for i in 0..4u8 {
            w.write_packet(u64::from(i) * 1000, &[i; 30]).unwrap();
        }
        let full = w.finish().unwrap();
        for cut in 0..full.len() {
            let mut r = match PcapReader::new(&full[..cut]) {
                Ok(r) => r,
                Err(_) => continue,
            };
            // Must terminate with Ok(None) or Err, never panic or loop.
            while let Ok(Some(_)) = r.next_packet() {}
        }
    }

    #[test]
    fn empty_capture_reads_cleanly() {
        let w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        let buf = w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn real_simulated_frame_survives_pcap() {
        use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
        let mut b = PacketBuilder::new();
        let pkt = b.udp_v4(
            "10.1.1.10".parse().unwrap(),
            "10.1.255.53".parse().unwrap(),
            40000,
            53,
            Payload::Synthetic(64),
            64,
            GroundTruth::default(),
        );
        let frame = pkt.to_bytes();
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        w.write_packet(123_000, &frame).unwrap();
        let buf = w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let got = r.next_packet().unwrap().unwrap();
        assert_eq!(got.data, frame);
        // The bytes re-parse as the same packet.
        let (eth, _) = campuslab_wire::EthernetRepr::parse(&got.data).unwrap();
        assert_eq!(eth.ethertype, campuslab_wire::EtherType::Ipv4);
    }
}
