//! The border monitor: ties rings, flow assembly, metadata extraction and
//! optional pcap dumping into one appliance, plus the [`SimHooks`] adapter
//! that attaches it to a simulated campus border tap.

use crate::flow::{FlowTable, FlowTableConfig};
use crate::meta::{DnsExtractor, TcpRttEstimator};
use crate::observe::CaptureObs;
use crate::pcap::PcapWriter;
use crate::records::{Direction, DnsMetaRecord, FlowRecord, PacketRecord, TcpRttRecord};
use crate::ring::{CaptureArray, RingConfig, RingStats};
use campuslab_netsim::{Commands, Dir, LinkId, Outage, Packet, SimHooks, SimTime};

/// Monitor sizing and feature switches.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    pub ring: RingConfig,
    pub rings: usize,
    pub flow: FlowTableConfig,
    /// Serialize full frames into an in-memory pcap (costly; for debugging
    /// and the quickstart example).
    pub write_pcap: bool,
    /// How often the monitor polls flow timeouts.
    pub poll_interval_ns: u64,
    /// Tap blackout windows: the appliance is blind (reboot, optic pulled,
    /// span port reconfigured) and packets pass unobserved. Counted in
    /// `blackout_dropped` so the telemetry gap is explicit, not silent.
    pub blackouts: Vec<Outage>,
    /// Sampled telemetry: keep 1 of every N observed packets (0 or 1 keeps
    /// everything). Deterministic counter-based sampling, so runs replay.
    pub sample_keep_1_in: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            ring: RingConfig::default(),
            rings: 8,
            flow: FlowTableConfig::default(),
            write_pcap: false,
            poll_interval_ns: 1_000_000_000,
            blackouts: Vec::new(),
            sample_keep_1_in: 0,
        }
    }
}

/// Aggregate monitor counters. Conservation law:
/// `observed == captured + ring_dropped + blackout_dropped + sampled_out`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    pub observed: u64,
    pub captured: u64,
    pub ring_dropped: u64,
    /// Packets that crossed the wire during a tap blackout window.
    pub blackout_dropped: u64,
    /// Packets discarded by the sampling stage.
    pub sampled_out: u64,
    pub bytes_captured: u64,
}

impl MonitorStats {
    /// Packets lost to monitoring for any reason.
    pub fn telemetry_lost(&self) -> u64 {
        self.ring_dropped + self.blackout_dropped + self.sampled_out
    }
}

/// The capture appliance at the campus border.
pub struct Monitor {
    cfg: MonitorConfig,
    rings: CaptureArray,
    flows: FlowTable,
    dns: DnsExtractor,
    rtt: TcpRttEstimator,
    packets: Vec<PacketRecord>,
    dns_records: Vec<DnsMetaRecord>,
    rtt_records: Vec<TcpRttRecord>,
    pcap: Option<PcapWriter<Vec<u8>>>,
    last_poll_ns: u64,
    sample_seq: u64,
    pub stats: MonitorStats,
    /// Observatory sink mirroring `stats`, renderable as a metrics dump.
    pub obs: CaptureObs,
}

impl Monitor {
    /// Build a monitor.
    pub fn new(cfg: MonitorConfig) -> Self {
        let pcap = if cfg.write_pcap {
            Some(PcapWriter::new(Vec::new(), 65_535).expect("vec write cannot fail"))
        } else {
            None
        };
        Monitor {
            rings: CaptureArray::new(cfg.rings, cfg.ring),
            flows: FlowTable::new(cfg.flow),
            dns: DnsExtractor::new(),
            rtt: TcpRttEstimator::new(),
            packets: Vec::new(),
            dns_records: Vec::new(),
            rtt_records: Vec::new(),
            pcap,
            last_poll_ns: 0,
            sample_seq: 0,
            cfg,
            stats: MonitorStats::default(),
            obs: CaptureObs::new(),
        }
    }

    /// True when the tap is blind at `now`.
    pub fn in_blackout(&self, now: SimTime) -> bool {
        !self.cfg.blackouts.is_empty() && self.cfg.blackouts.iter().any(|w| w.contains(now))
    }

    /// Observe one packet on the tapped wire.
    pub fn observe(&mut self, now: SimTime, direction: Direction, pkt: &Packet) {
        self.stats.observed += 1;
        self.obs.on_observed();
        if self.in_blackout(now) {
            self.stats.blackout_dropped += 1;
            self.obs.on_blackout_dropped();
            return;
        }
        if self.cfg.sample_keep_1_in > 1 {
            let seq = self.sample_seq;
            self.sample_seq += 1;
            if !seq.is_multiple_of(self.cfg.sample_keep_1_in) {
                self.stats.sampled_out += 1;
                self.obs.on_sampled_out();
                return;
            }
        }
        let record = PacketRecord::from_packet(now, direction, pkt);
        // Ring admission first: a packet the appliance cannot keep up with
        // is lost to monitoring entirely.
        if !self.rings.offer(now, &record.flow_key()) {
            self.stats.ring_dropped += 1;
            self.obs.on_ring_dropped();
            return;
        }
        self.stats.captured += 1;
        self.stats.bytes_captured += u64::from(record.wire_len);
        self.obs.on_captured(u64::from(record.wire_len));
        if let Some(w) = self.pcap.as_mut() {
            w.write_packet(now.as_nanos(), &pkt.to_bytes())
                .expect("vec write cannot fail");
        }
        if let Some(meta) = self.dns.extract(now, direction, pkt) {
            self.dns_records.push(meta);
        }
        if let Some(rtt) = self.rtt.observe(now, pkt) {
            self.rtt_records.push(rtt);
        }
        self.flows.observe(&record);
        self.packets.push(record);
        // Periodic flow-timeout polling, driven by traffic arrival.
        let now_ns = now.as_nanos();
        if now_ns.saturating_sub(self.last_poll_ns) >= self.cfg.poll_interval_ns {
            self.flows.poll(now_ns);
            self.last_poll_ns = now_ns;
        }
    }

    /// End of capture: flush all active flows.
    pub fn finish(&mut self) {
        self.flows.flush();
    }

    /// Captured packet records so far.
    pub fn packet_records(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Take ownership of the captured packet records.
    pub fn take_packet_records(&mut self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.packets)
    }

    /// Take the flow records emitted so far.
    pub fn take_flow_records(&mut self) -> Vec<FlowRecord> {
        self.flows.drain()
    }

    /// Take the DNS metadata records extracted so far.
    pub fn take_dns_records(&mut self) -> Vec<DnsMetaRecord> {
        std::mem::take(&mut self.dns_records)
    }

    /// Take the TCP handshake RTT measurements taken so far.
    pub fn take_rtt_records(&mut self) -> Vec<TcpRttRecord> {
        std::mem::take(&mut self.rtt_records)
    }

    /// Ring statistics (the lossless-capture metric).
    pub fn ring_stats(&self) -> RingStats {
        self.rings.stats()
    }

    /// Finish and return the pcap bytes, when pcap writing was enabled.
    pub fn take_pcap(&mut self) -> Option<Vec<u8>> {
        self.pcap.take().map(|w| w.finish().expect("vec write cannot fail"))
    }
}

/// Attaches a [`Monitor`] to one tapped link of a running simulation.
pub struct BorderTapHooks {
    pub monitor: Monitor,
    /// The link being monitored (the campus border uplink).
    pub tap: LinkId,
}

impl BorderTapHooks {
    /// Monitor `tap` with the given configuration.
    pub fn new(tap: LinkId, cfg: MonitorConfig) -> Self {
        BorderTapHooks { monitor: Monitor::new(cfg), tap }
    }
}

impl SimHooks for BorderTapHooks {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, _: &mut Commands) {
        if link == self.tap {
            self.monitor
                .observe(now, Direction::from_border_dir(dir), packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{Campus, CampusConfig};
    use campuslab_traffic::{TrafficGenerator, WorkloadConfig};
    use campuslab_netsim::SimDuration;

    fn small_campus() -> Campus {
        Campus::build(CampusConfig {
            dist_count: 1,
            access_per_dist: 2,
            hosts_per_access: 4,
            external_hosts: 8,
            ..CampusConfig::default()
        })
    }

    fn run_with_monitor(write_pcap: bool) -> (Monitor, u64) {
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(2),
                sessions_per_sec: 10.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        let injected = schedule.len() as u64;
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(
            campus.border_link,
            MonitorConfig { write_pcap, ..MonitorConfig::default() },
        );
        net.run(&mut hooks, None);
        hooks.monitor.finish();
        (hooks.monitor, injected)
    }

    #[test]
    fn monitor_sees_only_border_crossings() {
        let (monitor, injected) = run_with_monitor(false);
        // Much of the mix is internal (DNS to the campus resolver, internal
        // SSH); the monitor must see strictly less than everything, but a
        // substantial share.
        assert!(monitor.stats.observed > 0);
        assert!(monitor.stats.observed < injected);
        assert_eq!(monitor.stats.ring_dropped, 0, "campus load must capture losslessly");
        assert_eq!(monitor.stats.captured, monitor.stats.observed);
    }

    #[test]
    fn monitor_assembles_flows_and_dns() {
        let (mut monitor, _) = run_with_monitor(false);
        let flows = monitor.take_flow_records();
        assert!(!flows.is_empty());
        // Flow sanity: every flow has packets and a coherent time range.
        for f in &flows {
            assert!(f.total_packets() > 0);
            assert!(f.last_ts_ns >= f.first_ts_ns);
        }
        let packets = monitor.take_packet_records();
        let flow_pkts: u64 = flows.iter().map(|f| f.total_packets()).sum();
        assert_eq!(flow_pkts, packets.len() as u64);
    }

    #[test]
    fn handshake_rtts_are_measured_at_the_border() {
        let (mut monitor, _) = run_with_monitor(false);
        let rtts = monitor.take_rtt_records();
        assert!(!rtts.is_empty(), "no handshakes measured");
        // External sessions are synthesized around a 15 ms RTT; the tap
        // sits mid-path so measured values land under that but well above
        // campus-internal latencies.
        for r in &rtts {
            assert!(r.rtt_ns > 100_000, "implausibly small rtt {}", r.rtt_ns);
            assert!(r.rtt_ns < 100_000_000, "implausibly large rtt {}", r.rtt_ns);
        }
    }

    #[test]
    fn pcap_contains_real_parseable_frames() {
        let (mut monitor, _) = run_with_monitor(true);
        let captured = monitor.stats.captured;
        let pcap = monitor.take_pcap().unwrap();
        let mut reader = crate::pcap::PcapReader::new(&pcap[..]).unwrap();
        let pkts = reader.read_all().unwrap();
        assert_eq!(pkts.len() as u64, captured);
        for p in pkts.iter().take(50) {
            let (eth, l3) = campuslab_wire::EthernetRepr::parse(&p.data).unwrap();
            assert_eq!(eth.ethertype, campuslab_wire::EtherType::Ipv4);
            campuslab_wire::Ipv4Repr::parse(l3).unwrap();
        }
    }

    #[test]
    fn dns_metadata_extracted_from_attack_traffic() {
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(1),
                sessions_per_sec: 2.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        gen.add_dns_amplification(
            &mut schedule,
            campus.hosts[0],
            100.0,
            campuslab_netsim::SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(campus.border_link, MonitorConfig::default());
        net.run(&mut hooks, None);
        hooks.monitor.finish();
        let dns = hooks.monitor.take_dns_records();
        // Inbound amplification responses must be extracted and flagged.
        let amp: Vec<_> = dns
            .iter()
            .filter(|d| d.is_response && d.amplification_prone)
            .collect();
        assert!(!amp.is_empty());
        // Benign fat answers (DNSSEC/TXT recursion) are also flagged by the
        // heuristic — that ambiguity is intentional — but the flood must
        // dominate the amplification-prone set.
        let attack = amp.iter().filter(|d| d.label_attack == 1).count();
        assert!(attack * 2 > amp.len(), "{attack} of {}", amp.len());
    }

    #[test]
    fn blackout_windows_blind_the_tap_and_are_accounted() {
        use campuslab_netsim::SimTime;
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(2),
                sessions_per_sec: 10.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(
            campus.border_link,
            MonitorConfig {
                blackouts: vec![Outage {
                    from: SimTime::from_millis(500),
                    until: SimTime::from_millis(1500),
                }],
                ..MonitorConfig::default()
            },
        );
        net.run(&mut hooks, None);
        let s = hooks.monitor.stats;
        assert!(s.blackout_dropped > 0, "blackout saw no traffic: {s:?}");
        assert!(s.captured > 0, "tap captured nothing outside the blackout");
        assert_eq!(s.observed, s.captured + s.telemetry_lost());
        // Nothing captured inside the window.
        for r in hooks.monitor.packet_records() {
            assert!(r.ts_ns < 500_000_000 || r.ts_ns >= 1_500_000_000);
        }
    }

    #[test]
    fn sampling_keeps_one_in_n_deterministically() {
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(2),
                sessions_per_sec: 10.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(
            campus.border_link,
            MonitorConfig { sample_keep_1_in: 4, ..MonitorConfig::default() },
        );
        net.run(&mut hooks, None);
        let s = hooks.monitor.stats;
        assert!(s.sampled_out > 0);
        assert_eq!(s.observed, s.captured + s.telemetry_lost());
        // Counter sampling keeps exactly ceil(observed / 4).
        assert_eq!(s.captured, s.observed.div_ceil(4));
    }

    /// The Observatory mirrors MonitorStats bump-for-bump.
    #[test]
    fn obs_counters_agree_with_monitor_stats() {
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(2),
                sessions_per_sec: 10.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(
            campus.border_link,
            MonitorConfig {
                sample_keep_1_in: 3,
                blackouts: vec![Outage {
                    from: SimTime::from_millis(400),
                    until: SimTime::from_millis(900),
                }],
                ..MonitorConfig::default()
            },
        );
        net.run(&mut hooks, None);
        let s = hooks.monitor.stats;
        let obs = &hooks.monitor.obs;
        assert_eq!(obs.observed(), s.observed);
        assert_eq!(obs.captured(), s.captured);
        assert_eq!(obs.ring_dropped(), s.ring_dropped);
        assert_eq!(obs.blackout_dropped(), s.blackout_dropped);
        assert_eq!(obs.sampled_out(), s.sampled_out);
        assert_eq!(obs.bytes_captured(), s.bytes_captured);
        assert!(obs.conserved(), "conservation law broken: {s:?}");
        assert!(s.blackout_dropped > 0 && s.sampled_out > 0, "test exercised no loss paths");
    }

    #[test]
    fn undersized_rings_drop_under_flood() {
        let campus = small_campus();
        let mut gen = TrafficGenerator::new(
            &campus,
            WorkloadConfig {
                duration: SimDuration::from_secs(1),
                sessions_per_sec: 1.0,
                ..WorkloadConfig::default()
            },
        );
        let mut schedule = gen.generate();
        gen.add_dns_amplification(
            &mut schedule,
            campus.hosts[0],
            20_000.0,
            campuslab_netsim::SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        let mut hooks = BorderTapHooks::new(
            campus.border_link,
            MonitorConfig {
                rings: 1,
                ring: RingConfig { capacity: 16, drain_pps: 5_000.0 },
                ..MonitorConfig::default()
            },
        );
        net.run(&mut hooks, None);
        assert!(
            hooks.monitor.stats.ring_dropped > 0,
            "tiny ring should drop under a 20k pps flood: {:?}",
            hooks.monitor.stats
        );
    }
}
