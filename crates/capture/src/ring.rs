//! Capture rings: the admission model for "continuous, lossless, full
//! packet capture at scale" (paper §5).
//!
//! A [`CaptureRing`] models one NIC receive ring feeding an indexing
//! appliance: packets drain at the appliance's sustained rate, and a packet
//! arriving to a full ring is lost *to the monitoring system* (the network
//! still delivers it — monitoring loss and network loss are different
//! things). A [`CaptureArray`] spreads load across several rings by flow
//! hash, the way RSS steers a multi-queue NIC.
//!
//! Experiment E2 sweeps offered load against ring sizing to find the
//! lossless envelope the paper claims campus-scale (10–20 Gbps) traffic
//! sits comfortably inside.

use crate::fxhash::FxHasher;
use crate::records::FlowKey;
use campuslab_netsim::SimTime;
use std::hash::{Hash, Hasher};

/// Sizing of one capture ring.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RingConfig {
    /// Ring capacity in packets.
    pub capacity: usize,
    /// Sustained drain (index-to-store) rate, packets per second.
    pub drain_pps: f64,
}

impl Default for RingConfig {
    fn default() -> Self {
        // A comfortable commodity appliance: 4096-descriptor ring drained
        // at 1.5 Mpps.
        RingConfig { capacity: 4096, drain_pps: 1_500_000.0 }
    }
}

/// Counters for one ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RingStats {
    pub offered: u64,
    pub captured: u64,
    pub dropped: u64,
}

impl RingStats {
    /// Fraction of offered packets lost by the monitoring system.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

/// One receive ring with deterministic fluid drain.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CaptureRing {
    cfg: RingConfig,
    /// Current occupancy, in packets (fractional due to fluid drain).
    occupancy: f64,
    last_ns: u64,
    pub stats: RingStats,
}

impl CaptureRing {
    /// An empty ring.
    pub fn new(cfg: RingConfig) -> Self {
        CaptureRing { cfg, occupancy: 0.0, last_ns: 0, stats: RingStats::default() }
    }

    fn drain_to(&mut self, now: SimTime) {
        let now_ns = now.as_nanos();
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.occupancy = (self.occupancy - dt * self.cfg.drain_pps).max(0.0);
            self.last_ns = now_ns;
        }
    }

    /// Offer a packet at `now`; returns true when captured.
    pub fn offer(&mut self, now: SimTime) -> bool {
        self.drain_to(now);
        self.stats.offered += 1;
        if self.occupancy + 1.0 <= self.cfg.capacity as f64 {
            self.occupancy += 1.0;
            self.stats.captured += 1;
            true
        } else {
            self.stats.dropped += 1;
            false
        }
    }

    /// Current queue depth in packets.
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }
}

/// A multi-queue capture front end with flow-hash steering.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CaptureArray {
    rings: Vec<CaptureRing>,
}

impl CaptureArray {
    /// `n` identical rings; panics when `n == 0`.
    pub fn new(n: usize, cfg: RingConfig) -> Self {
        assert!(n > 0, "need at least one ring");
        CaptureArray { rings: vec![CaptureRing::new(cfg); n] }
    }

    fn steer(&self, key: &FlowKey) -> usize {
        let mut h = FxHasher::default();
        // Canonicalize so both directions of a conversation land on the
        // same ring (flow affinity, like real RSS with symmetric hashing).
        key.canonical().hash(&mut h);
        (h.finish() % self.rings.len() as u64) as usize
    }

    /// Offer a packet belonging to `key`; returns true when captured.
    pub fn offer(&mut self, now: SimTime, key: &FlowKey) -> bool {
        let idx = self.steer(key);
        self.rings[idx].offer(now)
    }

    /// Aggregate statistics over all rings.
    pub fn stats(&self) -> RingStats {
        let mut total = RingStats::default();
        for r in &self.rings {
            total.offered += r.stats.offered;
            total.captured += r.stats.captured;
            total.dropped += r.stats.dropped;
        }
        total
    }

    /// Per-ring statistics.
    pub fn per_ring(&self) -> Vec<RingStats> {
        self.rings.iter().map(|r| r.stats).collect()
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Always false (constructed non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn key(src_last: u8, sport: u16) -> FlowKey {
        FlowKey {
            src: IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, src_last)),
            dst: IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 1)),
            protocol: 17,
            src_port: sport,
            dst_port: 53,
        }
    }

    #[test]
    fn under_drain_rate_nothing_drops() {
        let mut ring = CaptureRing::new(RingConfig { capacity: 64, drain_pps: 1_000_000.0 });
        // 100k pps offered against 1M pps drain: always captured.
        for i in 0..10_000u64 {
            assert!(ring.offer(SimTime(i * 10_000)));
        }
        assert_eq!(ring.stats.dropped, 0);
        assert_eq!(ring.stats.captured, 10_000);
    }

    #[test]
    fn over_drain_rate_fills_and_drops() {
        let mut ring = CaptureRing::new(RingConfig { capacity: 100, drain_pps: 100_000.0 });
        // 1M pps offered against 100k pps drain: the ring fills, then ~90%
        // of subsequent packets drop.
        let mut dropped = 0;
        for i in 0..100_000u64 {
            if !ring.offer(SimTime(i * 1_000)) {
                dropped += 1;
            }
        }
        assert!(dropped > 80_000, "dropped {dropped}");
        let loss = ring.stats.loss_rate();
        assert!((loss - 0.9).abs() < 0.05, "loss {loss}");
    }

    #[test]
    fn burst_within_capacity_is_absorbed() {
        let mut ring = CaptureRing::new(RingConfig { capacity: 1000, drain_pps: 1000.0 });
        // 500 back-to-back packets at t=0: all buffered despite slow drain.
        for _ in 0..500 {
            assert!(ring.offer(SimTime::ZERO));
        }
        assert_eq!(ring.stats.dropped, 0);
        assert!((ring.occupancy() - 500.0).abs() < 1e-9);
        // After a second the ring has fully drained.
        assert!(ring.offer(SimTime::from_secs(1)));
        assert!(ring.occupancy() <= 1.0);
    }

    #[test]
    fn array_steers_flows_consistently() {
        let mut arr = CaptureArray::new(4, RingConfig::default());
        let k = key(1, 40_000);
        for i in 0..100u64 {
            arr.offer(SimTime(i), &k);
            arr.offer(SimTime(i), &k.reversed());
        }
        // All 200 packets (both directions) land on exactly one ring.
        let busy: Vec<_> = arr.per_ring().iter().filter(|s| s.offered > 0).cloned().collect();
        assert_eq!(busy.len(), 1);
        assert_eq!(busy[0].offered, 200);
    }

    #[test]
    fn array_spreads_distinct_flows() {
        let mut arr = CaptureArray::new(8, RingConfig::default());
        for i in 0..2000u16 {
            arr.offer(SimTime(u64::from(i)), &key((i % 250) as u8, 1024 + i));
        }
        let active = arr.per_ring().iter().filter(|s| s.offered > 0).count();
        assert!(active >= 6, "poor spread: {active} of 8 rings active");
    }

    #[test]
    fn more_rings_raise_the_lossless_envelope() {
        // Same aggregate offered load; 8 rings keep up where 1 cannot.
        let offered_pps = 4_000_000u64;
        let run = |n: usize| {
            let mut arr = CaptureArray::new(
                n,
                RingConfig { capacity: 4096, drain_pps: 1_000_000.0 },
            );
            let gap = 1_000_000_000 / offered_pps;
            for i in 0..200_000u64 {
                let k = key((i % 200) as u8, (i % 50_000) as u16);
                arr.offer(SimTime(i * gap), &k);
            }
            arr.stats().loss_rate()
        };
        let one = run(1);
        let eight = run(8);
        assert!(one > 0.5, "single ring should be overwhelmed: {one}");
        assert!(eight < 0.05, "eight rings should keep up: {eight}");
    }
}
