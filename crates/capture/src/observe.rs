//! Observatory schema for the capture plane: one [`CaptureObs`] per
//! [`crate::monitor::Monitor`], bumped at the same sites as
//! [`crate::monitor::MonitorStats`] so the renderable export surface and
//! the programmatic one can never disagree.
//!
//! The counters encode the tap conservation law
//! `observed == captured + ring_dropped + blackout_dropped + sampled_out`,
//! which [`CaptureObs::conserved`] checks straight off the sink.

use campuslab_obs::{CounterId, ObsSink, Registry};

/// Metrics registry + sink for one capture monitor.
#[derive(Debug, Clone)]
pub struct CaptureObs {
    registry: Registry,
    /// Value store; bumped by the monitor, read back through typed ids.
    pub sink: ObsSink,
    observed: CounterId,
    captured: CounterId,
    ring_dropped: CounterId,
    blackout_dropped: CounterId,
    sampled_out: CounterId,
    bytes_captured: CounterId,
}

impl Default for CaptureObs {
    fn default() -> Self {
        CaptureObs::new()
    }
}

impl CaptureObs {
    /// Build the capture schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let observed =
            reg.counter("cap_observed_packets_total", "packets that crossed the tapped wire");
        let captured =
            reg.counter("cap_captured_packets_total", "packets admitted into capture rings");
        let lost = "packets lost to monitoring, by cause";
        let ring_dropped =
            reg.counter_with_label("cap_lost_packets_total", Some("cause=\"ring\""), lost);
        let blackout_dropped =
            reg.counter_with_label("cap_lost_packets_total", Some("cause=\"blackout\""), lost);
        let sampled_out =
            reg.counter_with_label("cap_lost_packets_total", Some("cause=\"sampled\""), lost);
        let bytes_captured =
            reg.counter("cap_captured_bytes_total", "wire bytes of captured packets");
        let sink = reg.sink();
        CaptureObs {
            registry: reg,
            sink,
            observed,
            captured,
            ring_dropped,
            blackout_dropped,
            sampled_out,
            bytes_captured,
        }
    }

    #[inline]
    pub(crate) fn on_observed(&mut self) {
        self.sink.inc(self.observed);
    }

    #[inline]
    pub(crate) fn on_captured(&mut self, wire_bytes: u64) {
        self.sink.inc(self.captured);
        self.sink.add(self.bytes_captured, wire_bytes);
    }

    #[inline]
    pub(crate) fn on_ring_dropped(&mut self) {
        self.sink.inc(self.ring_dropped);
    }

    #[inline]
    pub(crate) fn on_blackout_dropped(&mut self) {
        self.sink.inc(self.blackout_dropped);
    }

    #[inline]
    pub(crate) fn on_sampled_out(&mut self) {
        self.sink.inc(self.sampled_out);
    }

    /// Packets that crossed the tapped wire.
    pub fn observed(&self) -> u64 {
        self.sink.counter(self.observed)
    }

    /// Packets admitted into the rings.
    pub fn captured(&self) -> u64 {
        self.sink.counter(self.captured)
    }

    /// Packets the rings could not keep up with.
    pub fn ring_dropped(&self) -> u64 {
        self.sink.counter(self.ring_dropped)
    }

    /// Packets that passed during a tap blackout.
    pub fn blackout_dropped(&self) -> u64 {
        self.sink.counter(self.blackout_dropped)
    }

    /// Packets discarded by the sampling stage.
    pub fn sampled_out(&self) -> u64 {
        self.sink.counter(self.sampled_out)
    }

    /// Wire bytes of captured packets.
    pub fn bytes_captured(&self) -> u64 {
        self.sink.counter(self.bytes_captured)
    }

    /// The tap conservation law, checked straight off the sink.
    pub fn conserved(&self) -> bool {
        self.observed()
            == self.captured() + self.ring_dropped() + self.blackout_dropped() + self.sampled_out()
    }

    /// Render this monitor's metrics as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_by_construction() {
        let mut obs = CaptureObs::new();
        for _ in 0..10 {
            obs.on_observed();
        }
        obs.on_captured(100);
        obs.on_captured(200);
        obs.on_ring_dropped();
        obs.on_blackout_dropped();
        for _ in 0..6 {
            obs.on_sampled_out();
        }
        assert!(obs.conserved());
        assert_eq!(obs.bytes_captured(), 300);
        let text = obs.render();
        assert!(text.contains("cap_observed_packets_total 10"));
        assert!(text.contains("cap_lost_packets_total{cause=\"sampled\"} 6"));
    }
}
