//! On-the-fly metadata extraction — the paper's monitoring appliance does
//! not just store raw packets, it generates "an extensive set of
//! 'on-the-fly' generated metadata" (§5). CampusLab extracts DNS
//! transactions (the richest campus metadata source and the input to the
//! amplification detector) and a light service classification.

use crate::records::{Direction, DnsMetaRecord};
use campuslab_netsim::{Packet, SimTime, TransportHeader};
use campuslab_wire::DnsMessage;

/// Extraction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsExtractorStats {
    pub port53_packets: u64,
    pub parsed: u64,
    pub malformed: u64,
}

/// Parses DNS out of captured packets.
#[derive(Debug, Default)]
pub struct DnsExtractor {
    pub stats: DnsExtractorStats,
}

impl DnsExtractor {
    /// A fresh extractor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to extract a DNS transaction record from a packet.
    pub fn extract(
        &mut self,
        now: SimTime,
        direction: Direction,
        pkt: &Packet,
    ) -> Option<DnsMetaRecord> {
        let udp = match &pkt.transport {
            TransportHeader::Udp(u) if u.src_port == 53 || u.dst_port == 53 => u,
            _ => return None,
        };
        self.stats.port53_packets += 1;
        let bytes = pkt.payload.bytes()?;
        let msg = match DnsMessage::parse(bytes) {
            Ok(m) => m,
            Err(_) => {
                self.stats.malformed += 1;
                return None;
            }
        };
        self.stats.parsed += 1;
        let (client, server) = if udp.dst_port == 53 {
            (pkt.network.src(), pkt.network.dst())
        } else {
            (pkt.network.dst(), pkt.network.src())
        };
        let question = msg.questions.first();
        Some(DnsMetaRecord {
            ts_ns: now.as_nanos(),
            direction,
            client,
            server,
            qname: question.map(|q| q.name.clone()).unwrap_or_default(),
            qtype: question.map(|q| u16::from(q.qtype)).unwrap_or(0),
            is_response: msg.flags.response,
            answer_count: msg.answers.len() as u16,
            wire_len: pkt.wire_len() as u32,
            amplification_prone: msg.is_amplification_prone(),
            label_attack: pkt.truth.attack.unwrap_or(0),
        })
    }
}

/// Estimates TCP round-trip times from handshakes observed at the tap:
/// SYN out, SYN-ACK back; the gap includes whatever queueing the campus or
/// the provider added that instant.
#[derive(Debug, Default)]
pub struct TcpRttEstimator {
    /// Outstanding SYNs: (client, server, sport, dport) -> SYN timestamp.
    pending: std::collections::HashMap<(std::net::IpAddr, std::net::IpAddr, u16, u16), u64>,
    /// Completed measurements count (for stats).
    pub measured: u64,
}

impl TcpRttEstimator {
    /// A fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one packet; returns a measurement when a handshake completes.
    pub fn observe(
        &mut self,
        now: SimTime,
        pkt: &Packet,
    ) -> Option<crate::records::TcpRttRecord> {
        let tcp = match &pkt.transport {
            TransportHeader::Tcp(t) => t,
            _ => return None,
        };
        let src = pkt.network.src();
        let dst = pkt.network.dst();
        if tcp.control.syn && !tcp.control.ack {
            self.pending
                .insert((src, dst, tcp.src_port, tcp.dst_port), now.as_nanos());
            // Bound state: forget very old half-open entries.
            if self.pending.len() > 100_000 {
                let cutoff = now.as_nanos().saturating_sub(10_000_000_000);
                self.pending.retain(|_, &mut t| t >= cutoff);
            }
            None
        } else if tcp.control.syn && tcp.control.ack {
            // SYN-ACK reverses the 4-tuple.
            let key = (dst, src, tcp.dst_port, tcp.src_port);
            let syn_ts = self.pending.remove(&key)?;
            let rtt_ns = now.as_nanos().saturating_sub(syn_ts);
            self.measured += 1;
            Some(crate::records::TcpRttRecord {
                ts_ns: now.as_nanos(),
                client: dst,
                server: src,
                dst_port: tcp.src_port,
                rtt_ns,
            })
        } else {
            None
        }
    }

    /// Half-open handshakes currently tracked.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// A coarse service tag inferred from ports — the kind of cheap enrichment
/// an appliance attaches to every record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceTag {
    Dns,
    Https,
    Http,
    Ssh,
    Smtp,
    Ntp,
    Other,
}

/// Classify by well-known port (either endpoint).
pub fn service_tag(src_port: u16, dst_port: u16) -> ServiceTag {
    for p in [dst_port, src_port] {
        match p {
            53 => return ServiceTag::Dns,
            443 => return ServiceTag::Https,
            80 => return ServiceTag::Http,
            22 => return ServiceTag::Ssh,
            25 => return ServiceTag::Smtp,
            123 => return ServiceTag::Ntp,
            _ => {}
        }
    }
    ServiceTag::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
    use campuslab_wire::{DnsRcode, DnsRecord, DnsRecordData, DnsType, TcpControl, TcpRepr};
    use std::net::Ipv4Addr;

    fn tcp_pkt(
        b: &mut PacketBuilder,
        src: [u8; 4],
        dst: [u8; 4],
        sport: u16,
        dport: u16,
        control: TcpControl,
    ) -> Packet {
        b.tcp_v4(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            sport,
            dport,
            TcpRepr {
                src_port: sport,
                dst_port: dport,
                seq: 1,
                ack: 0,
                control,
                window: 65535,
                mss: None,
                window_scale: None,
            },
            Payload::Synthetic(0),
            GroundTruth::default(),
        )
    }

    #[test]
    fn rtt_estimator_measures_handshakes() {
        let mut est = TcpRttEstimator::new();
        let mut b = PacketBuilder::new();
        let syn = tcp_pkt(&mut b, [10, 1, 1, 10], [203, 0, 113, 1], 40_000, 443, TcpControl::SYN);
        assert!(est.observe(SimTime::from_millis(100), &syn).is_none());
        assert_eq!(est.pending_len(), 1);
        let synack = tcp_pkt(&mut b, [203, 0, 113, 1], [10, 1, 1, 10], 443, 40_000, TcpControl::SYN_ACK);
        let rec = est.observe(SimTime::from_millis(118), &synack).expect("measured");
        assert_eq!(rec.rtt_ns, 18_000_000);
        assert_eq!(rec.client, "10.1.1.10".parse::<std::net::IpAddr>().unwrap());
        assert_eq!(rec.server, "203.0.113.1".parse::<std::net::IpAddr>().unwrap());
        assert_eq!(rec.dst_port, 443);
        assert_eq!(est.pending_len(), 0);
        assert_eq!(est.measured, 1);
    }

    #[test]
    fn unmatched_synack_is_ignored() {
        let mut est = TcpRttEstimator::new();
        let mut b = PacketBuilder::new();
        let synack = tcp_pkt(&mut b, [203, 0, 113, 1], [10, 1, 1, 10], 443, 40_000, TcpControl::SYN_ACK);
        assert!(est.observe(SimTime::from_millis(5), &synack).is_none());
        // Plain data packets are ignored entirely.
        let ack = tcp_pkt(&mut b, [10, 1, 1, 10], [203, 0, 113, 1], 40_000, 443, TcpControl::ACK);
        assert!(est.observe(SimTime::from_millis(6), &ack).is_none());
    }

    fn dns_query_packet(qtype: DnsType) -> Packet {
        let msg = DnsMessage::query(7, "www.example.edu", qtype);
        let mut bytes = Vec::new();
        msg.emit(&mut bytes).unwrap();
        let mut b = PacketBuilder::new();
        b.udp_v4(
            Ipv4Addr::new(10, 1, 1, 10),
            Ipv4Addr::new(10, 1, 255, 53),
            40_000,
            53,
            Payload::Bytes(bytes.into()),
            64,
            GroundTruth::default(),
        )
    }

    #[test]
    fn extracts_queries() {
        let mut x = DnsExtractor::new();
        let rec = x
            .extract(SimTime::from_millis(3), Direction::Outbound, &dns_query_packet(DnsType::A))
            .unwrap();
        assert_eq!(rec.qname, "www.example.edu");
        assert_eq!(rec.qtype, 1);
        assert!(!rec.is_response);
        assert!(!rec.amplification_prone);
        assert_eq!(rec.client, "10.1.1.10".parse::<std::net::IpAddr>().unwrap());
        assert_eq!(x.stats.parsed, 1);
    }

    #[test]
    fn flags_any_queries_as_amplification_prone() {
        let mut x = DnsExtractor::new();
        let rec = x
            .extract(SimTime::ZERO, Direction::Outbound, &dns_query_packet(DnsType::Any))
            .unwrap();
        assert!(rec.amplification_prone);
    }

    #[test]
    fn extracts_fat_responses_with_client_server_orientation() {
        let query = DnsMessage::query(9, "amp.example.org", DnsType::Any);
        let answers = (0..12)
            .map(|_| DnsRecord {
                name: "amp.example.org".into(),
                ttl: 60,
                data: DnsRecordData::Txt(vec![b'x'; 100]),
            })
            .collect();
        let resp = query.answer(answers, DnsRcode::NoError);
        let mut bytes = Vec::new();
        resp.emit(&mut bytes).unwrap();
        let mut b = PacketBuilder::new();
        let pkt = b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 1, 1, 10),
            53,
            40_000,
            Payload::Bytes(bytes.into()),
            64,
            GroundTruth { flow_id: 0, app_class: 1, attack: Some(1) },
        );
        let mut x = DnsExtractor::new();
        let rec = x.extract(SimTime::ZERO, Direction::Inbound, &pkt).unwrap();
        assert!(rec.is_response);
        assert_eq!(rec.answer_count, 12);
        assert!(rec.amplification_prone);
        assert_eq!(rec.label_attack, 1);
        // The client is the victim, even though the packet flows inbound.
        assert_eq!(rec.client, "10.1.1.10".parse::<std::net::IpAddr>().unwrap());
        assert_eq!(rec.server, "203.0.113.1".parse::<std::net::IpAddr>().unwrap());
    }

    #[test]
    fn non_dns_and_malformed_are_skipped() {
        let mut b = PacketBuilder::new();
        let not_dns = b.udp_v4(
            Ipv4Addr::new(10, 1, 1, 10),
            Ipv4Addr::new(10, 1, 1, 11),
            1000,
            2000,
            Payload::Synthetic(64),
            64,
            GroundTruth::default(),
        );
        let mut x = DnsExtractor::new();
        assert!(x.extract(SimTime::ZERO, Direction::Outbound, &not_dns).is_none());
        assert_eq!(x.stats.port53_packets, 0);

        let garbage = b.udp_v4(
            Ipv4Addr::new(10, 1, 1, 10),
            Ipv4Addr::new(10, 1, 255, 53),
            1000,
            53,
            Payload::Bytes(vec![1, 2, 3].into()),
            64,
            GroundTruth::default(),
        );
        assert!(x.extract(SimTime::ZERO, Direction::Outbound, &garbage).is_none());
        assert_eq!(x.stats.malformed, 1);
    }

    #[test]
    fn service_tags() {
        assert_eq!(service_tag(40000, 53), ServiceTag::Dns);
        assert_eq!(service_tag(53, 40000), ServiceTag::Dns);
        assert_eq!(service_tag(51111, 443), ServiceTag::Https);
        assert_eq!(service_tag(22, 50000), ServiceTag::Ssh);
        assert_eq!(service_tag(25, 50000), ServiceTag::Smtp);
        assert_eq!(service_tag(123, 123), ServiceTag::Ntp);
        assert_eq!(service_tag(9999, 8888), ServiceTag::Other);
    }
}
