//! Flow assembly: aggregates captured packets into bidirectional
//! [`FlowRecord`]s with idle/active timeouts and FIN/RST fast paths.

use crate::fxhash::FxHashMap;
use crate::records::{FlowKey, FlowRecord, PacketRecord};
use std::collections::HashMap;

/// Flow table sizing and timeout policy.
#[derive(Debug, Clone, Copy)]
pub struct FlowTableConfig {
    /// Evict a flow after this long without a packet.
    pub idle_timeout_ns: u64,
    /// Evict (and restart) a flow after this total age, so elephants still
    /// show up periodically.
    pub active_timeout_ns: u64,
    /// Hard cap on tracked flows; beyond it the oldest flow is evicted.
    pub max_flows: usize,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            idle_timeout_ns: 15_000_000_000,   // 15 s
            active_timeout_ns: 120_000_000_000, // 2 min
            max_flows: 1_000_000,
        }
    }
}

#[derive(Debug)]
struct FlowState {
    forward: FlowKey,
    first_ts_ns: u64,
    last_ts_ns: u64,
    fwd_packets: u64,
    fwd_bytes: u64,
    rev_packets: u64,
    rev_bytes: u64,
    syn_count: u32,
    fin_count: u32,
    rst_count: u32,
    iat_sum_ns: u64,
    min_len: u32,
    max_len: u32,
    /// Label votes: (app, attack) -> count. Majority wins at emission.
    label_votes: HashMap<(u16, u16), u64>,
}

impl FlowState {
    fn new(rec: &PacketRecord) -> Self {
        let mut votes = HashMap::new();
        votes.insert((rec.label_app, rec.label_attack), 1);
        FlowState {
            forward: rec.flow_key(),
            first_ts_ns: rec.ts_ns,
            last_ts_ns: rec.ts_ns,
            fwd_packets: 1,
            fwd_bytes: u64::from(rec.wire_len),
            rev_packets: 0,
            rev_bytes: 0,
            syn_count: u32::from(rec.tcp_flags.syn),
            fin_count: u32::from(rec.tcp_flags.fin),
            rst_count: u32::from(rec.tcp_flags.rst),
            iat_sum_ns: 0,
            min_len: rec.wire_len,
            max_len: rec.wire_len,
            label_votes: votes,
        }
    }

    fn update(&mut self, rec: &PacketRecord) {
        let key = rec.flow_key();
        if key == self.forward {
            self.fwd_packets += 1;
            self.fwd_bytes += u64::from(rec.wire_len);
        } else {
            self.rev_packets += 1;
            self.rev_bytes += u64::from(rec.wire_len);
        }
        self.iat_sum_ns += rec.ts_ns.saturating_sub(self.last_ts_ns);
        self.last_ts_ns = self.last_ts_ns.max(rec.ts_ns);
        self.syn_count += u32::from(rec.tcp_flags.syn);
        self.fin_count += u32::from(rec.tcp_flags.fin);
        self.rst_count += u32::from(rec.tcp_flags.rst);
        self.min_len = self.min_len.min(rec.wire_len);
        self.max_len = self.max_len.max(rec.wire_len);
        *self
            .label_votes
            .entry((rec.label_app, rec.label_attack))
            .or_insert(0) += 1;
    }

    fn into_record(self) -> FlowRecord {
        let total = self.fwd_packets + self.rev_packets;
        let (&(label_app, label_attack), _) = self
            .label_votes
            .iter()
            .max_by_key(|(labels, count)| (**count, std::cmp::Reverse(**labels)))
            .expect("flow has at least one packet");
        FlowRecord {
            key: self.forward,
            first_ts_ns: self.first_ts_ns,
            last_ts_ns: self.last_ts_ns,
            fwd_packets: self.fwd_packets,
            fwd_bytes: self.fwd_bytes,
            rev_packets: self.rev_packets,
            rev_bytes: self.rev_bytes,
            syn_count: self.syn_count,
            fin_count: self.fin_count,
            rst_count: self.rst_count,
            mean_iat_ns: if total > 1 { self.iat_sum_ns / (total - 1) } else { 0 },
            min_len: self.min_len,
            max_len: self.max_len,
            label_app,
            label_attack,
        }
    }
}

/// Counters for the flow table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    pub observed_packets: u64,
    pub flows_created: u64,
    pub flows_emitted: u64,
    pub evicted_capacity: u64,
}

/// The flow table.
pub struct FlowTable {
    cfg: FlowTableConfig,
    active: FxHashMap<FlowKey, FlowState>,
    emitted: Vec<FlowRecord>,
    pub stats: FlowTableStats,
}

impl FlowTable {
    /// An empty table.
    pub fn new(cfg: FlowTableConfig) -> Self {
        FlowTable {
            cfg,
            active: FxHashMap::default(),
            emitted: Vec::new(),
            stats: FlowTableStats::default(),
        }
    }

    /// Feed one captured packet.
    pub fn observe(&mut self, rec: &PacketRecord) {
        self.stats.observed_packets += 1;
        let key = rec.flow_key().canonical();
        match self.active.get_mut(&key) {
            Some(state) => {
                state.update(rec);
                // TCP teardown fast path: a RST or a FIN from each side
                // ends the conversation.
                let done = state.rst_count > 0 || state.fin_count >= 2;
                let too_old = state.last_ts_ns.saturating_sub(state.first_ts_ns)
                    >= self.cfg.active_timeout_ns;
                if done || too_old {
                    let state = self.active.remove(&key).expect("present");
                    self.emitted.push(state.into_record());
                    self.stats.flows_emitted += 1;
                }
            }
            None => {
                if self.active.len() >= self.cfg.max_flows {
                    self.evict_oldest();
                }
                self.active.insert(key, FlowState::new(rec));
                self.stats.flows_created += 1;
            }
        }
    }

    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self
            .active
            .iter()
            .min_by_key(|(_, s)| s.last_ts_ns)
        {
            let state = self.active.remove(&key).expect("present");
            self.emitted.push(state.into_record());
            self.stats.flows_emitted += 1;
            self.stats.evicted_capacity += 1;
        }
    }

    /// Evict flows idle longer than the timeout as of `now_ns`.
    pub fn poll(&mut self, now_ns: u64) {
        let idle = self.cfg.idle_timeout_ns;
        let expired: Vec<FlowKey> = self
            .active
            .iter()
            .filter(|(_, s)| now_ns.saturating_sub(s.last_ts_ns) >= idle)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            let state = self.active.remove(&key).expect("present");
            self.emitted.push(state.into_record());
            self.stats.flows_emitted += 1;
        }
    }

    /// Flush every active flow (end of capture).
    pub fn flush(&mut self) {
        let keys: Vec<FlowKey> = self.active.keys().copied().collect();
        for key in keys {
            let state = self.active.remove(&key).expect("present");
            self.emitted.push(state.into_record());
            self.stats.flows_emitted += 1;
        }
    }

    /// Take the emitted flow records accumulated so far.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.emitted)
    }

    /// Number of currently tracked flows.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn rec(ts_ns: u64, src: [u8; 4], dst: [u8; 4], sport: u16, dport: u16, len: u32) -> PacketRecord {
        PacketRecord {
            ts_ns,
            direction: Direction::Outbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: 6,
            src_port: sport,
            dst_port: dport,
            wire_len: len,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 1,
            label_app: 2,
            label_attack: 0,
        }
    }

    fn tcp_rec(ts_ns: u64, fwd: bool, flags: TcpFlags) -> PacketRecord {
        let mut r = if fwd {
            rec(ts_ns, [10, 1, 1, 10], [203, 0, 113, 1], 40000, 443, 100)
        } else {
            rec(ts_ns, [203, 0, 113, 1], [10, 1, 1, 10], 443, 40000, 1500)
        };
        r.tcp_flags = flags;
        r
    }

    #[test]
    fn both_directions_merge_into_one_flow() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        t.observe(&tcp_rec(0, true, TcpFlags { syn: true, ..Default::default() }));
        t.observe(&tcp_rec(1_000, false, TcpFlags { syn: true, ack: true, ..Default::default() }));
        t.observe(&tcp_rec(2_000, true, TcpFlags { ack: true, ..Default::default() }));
        assert_eq!(t.active_len(), 1);
        t.flush();
        let flows = t.drain();
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.fwd_packets, 2);
        assert_eq!(f.rev_packets, 1);
        assert_eq!(f.syn_count, 2);
        assert_eq!(f.total_bytes(), 100 + 1500 + 100);
        assert_eq!(f.mean_iat_ns, 1_000);
    }

    #[test]
    fn fin_fin_ends_flow_immediately() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        t.observe(&tcp_rec(0, true, TcpFlags { syn: true, ..Default::default() }));
        t.observe(&tcp_rec(10, true, TcpFlags { fin: true, ack: true, ..Default::default() }));
        t.observe(&tcp_rec(20, false, TcpFlags { fin: true, ack: true, ..Default::default() }));
        assert_eq!(t.active_len(), 0);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn rst_ends_flow_immediately() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        t.observe(&tcp_rec(0, true, TcpFlags { syn: true, ..Default::default() }));
        t.observe(&tcp_rec(10, false, TcpFlags { rst: true, ..Default::default() }));
        assert_eq!(t.active_len(), 0);
        let flows = t.drain();
        assert_eq!(flows[0].rst_count, 1);
    }

    #[test]
    fn idle_timeout_evicts() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_ns: 1_000_000,
            ..Default::default()
        });
        t.observe(&rec(0, [10, 1, 1, 1], [10, 1, 1, 2], 1, 2, 60));
        t.poll(500_000);
        assert_eq!(t.active_len(), 1);
        t.poll(1_500_000);
        assert_eq!(t.active_len(), 0);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn active_timeout_splits_elephants() {
        let mut t = FlowTable::new(FlowTableConfig {
            active_timeout_ns: 1_000_000,
            ..Default::default()
        });
        for i in 0..5u64 {
            t.observe(&rec(i * 400_000, [10, 1, 1, 1], [10, 1, 1, 2], 1, 2, 1500));
        }
        // The flow is emitted when it crosses 1 ms of age and restarts.
        let emitted = t.drain();
        assert!(!emitted.is_empty());
        assert!(t.stats.flows_created >= 2);
    }

    #[test]
    fn capacity_eviction_removes_oldest() {
        let mut t = FlowTable::new(FlowTableConfig { max_flows: 2, ..Default::default() });
        t.observe(&rec(100, [10, 1, 1, 1], [10, 2, 2, 2], 5, 6, 60));
        t.observe(&rec(200, [10, 1, 1, 3], [10, 2, 2, 2], 5, 6, 60));
        t.observe(&rec(300, [10, 1, 1, 4], [10, 2, 2, 2], 5, 6, 60));
        assert_eq!(t.active_len(), 2);
        assert_eq!(t.stats.evicted_capacity, 1);
        let flows = t.drain();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].first_ts_ns, 100); // oldest went first
    }

    #[test]
    fn majority_label_wins() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        let mut a = rec(0, [10, 1, 1, 1], [10, 2, 2, 2], 1, 2, 60);
        a.label_app = 1;
        let mut b = rec(1, [10, 1, 1, 1], [10, 2, 2, 2], 1, 2, 60);
        b.label_app = 7;
        t.observe(&a);
        t.observe(&b);
        t.observe(&b);
        t.flush();
        assert_eq!(t.drain()[0].label_app, 7);
    }

    #[test]
    fn udp_flows_only_close_by_timeout() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        let mut r = rec(0, [10, 1, 1, 1], [10, 1, 255, 53], 40000, 53, 80);
        r.protocol = 17;
        t.observe(&r);
        t.observe(&r);
        assert_eq!(t.active_len(), 1);
        t.flush();
        assert_eq!(t.drain().len(), 1);
    }
}
