//! `capture::pcap` under hostile bytes, mirroring the datastore persist
//! corruption suite: a capture file that was truncated or bit-flipped on
//! disk must come back as `Ok` (the damage missed every invariant) or a
//! typed `io::Error` — never a panic. The reader is the one place
//! untrusted capture bytes enter the process.
//!
//! Iteration count defaults to a quick smoke and is raised by CI through
//! `CAMPUSLAB_FUZZ_CASES`, alongside the wire-parser fuzz harness.

use campuslab_capture::pcap::{PcapReader, PcapWriter};
use proptest::prelude::*;
use proptest::{proptest, ProptestConfig};
use std::io;

fn fuzz_cases() -> u32 {
    std::env::var("CAMPUSLAB_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A valid capture of `lens.len()` packets plus the byte offset where each
/// record ends (24-byte global header included).
fn capture_bytes(lens: &[usize]) -> (Vec<u8>, Vec<usize>) {
    let mut w = PcapWriter::new(Vec::new(), 65_535).expect("vec write");
    let mut boundaries = vec![24usize];
    let mut off = 24usize;
    for (i, &len) in lens.iter().enumerate() {
        let frame = vec![(i % 251) as u8; len];
        w.write_packet(i as u64 * 1_000_000, &frame).expect("vec write");
        off += 16 + len;
        boundaries.push(off);
    }
    (w.finish().expect("vec flush"), boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases(), ..ProptestConfig::default() })]

    #[test]
    fn truncated_captures_error_or_stop_exactly_at_record_boundaries(
        lens in proptest::collection::vec(0usize..300, 1..8),
        cut_permille in 0u64..=1000,
    ) {
        let (full, boundaries) = capture_bytes(&lens);
        let cut = (full.len() as u64 * cut_permille / 1000) as usize;
        let data = &full[..cut];
        if cut < 24 {
            // Inside the global header: construction itself must fail.
            prop_assert!(PcapReader::new(data).is_err());
        } else {
            let mut r = PcapReader::new(data).expect("intact global header");
            match r.read_all() {
                // A clean stop is only legal exactly at a record boundary,
                // and must yield precisely the records before the cut.
                Ok(pkts) => {
                    let idx = boundaries.iter().position(|&b| b == cut);
                    prop_assert_eq!(idx, Some(pkts.len()), "clean EOF off-boundary at {}", cut);
                    for (i, p) in pkts.iter().enumerate() {
                        prop_assert_eq!(p.data.len(), lens[i]);
                    }
                }
                // Mid-record cuts must surface as truncation, not clean EOF.
                Err(e) => {
                    prop_assert!(!boundaries.contains(&cut), "boundary cut at {} errored", cut);
                    prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                }
            }
        }
    }

    #[test]
    fn bit_flipped_captures_never_panic(
        lens in proptest::collection::vec(0usize..300, 1..8),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let (mut buf, _) = capture_bytes(&lens);
        let pos = ((buf.len() as u64 - 1) * pos_permille / 1000) as usize;
        buf[pos] ^= 1 << bit;
        match PcapReader::new(&buf[..]) {
            Ok(mut r) => match r.read_all() {
                // The flip missed every invariant (e.g. landed in a
                // timestamp): the packets must still respect the reader's
                // own bounds.
                Ok(pkts) => {
                    for p in &pkts {
                        prop_assert!(p.data.len() <= 256 * 1024);
                        prop_assert!(p.data.len() as u32 <= p.orig_len);
                    }
                }
                // Or it surfaced as a typed io error. Both are fine; a
                // panic fails this test.
                Err(e) => {
                    let _ = e.to_string();
                }
            },
            // A flip in the global header may kill the magic/linktype.
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn multi_flip_corruption_is_contained(
        lens in proptest::collection::vec(0usize..200, 1..6),
        flips in proptest::collection::vec((0u64..1000, 0u32..8), 1..6),
    ) {
        let (mut buf, _) = capture_bytes(&lens);
        for (pos_permille, bit) in flips {
            let pos = ((buf.len() as u64 - 1) * pos_permille / 1000) as usize;
            buf[pos] ^= 1 << bit;
        }
        if let Ok(mut r) = PcapReader::new(&buf[..]) {
            // Must terminate with Ok or Err, never panic or loop.
            let _ = r.read_all();
        }
    }
}
