//! Property tests for the monitoring plane: conservation and invariants
//! over arbitrary packet streams.

use campuslab_capture::{
    Direction, FlowTable, FlowTableConfig, HeavyHitters, Monitor, MonitorConfig, PacketRecord,
    RingConfig, TcpFlags,
};
use campuslab_netsim::{GroundTruth, Outage, PacketBuilder, Payload, SimTime};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

fn arb_record() -> impl Strategy<Value = PacketRecord> {
    (
        0u64..10_000_000_000,
        any::<bool>(),
        0u8..8,
        0u8..8,
        proptest::sample::select(vec![6u8, 17]),
        1024u16..1030,
        proptest::sample::select(vec![53u16, 80, 443]),
        60u32..1500,
    )
        .prop_map(|(ts_ns, inbound, s, d, protocol, sport, dport, wire_len)| PacketRecord {
            ts_ns,
            direction: if inbound { Direction::Inbound } else { Direction::Outbound },
            src: IpAddr::from([10, 0, 0, s]),
            dst: IpAddr::from([203, 0, 113, d]),
            protocol,
            src_port: sport,
            dst_port: dport,
            wire_len,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Flow assembly conserves packets and bytes exactly, for any stream.
    #[test]
    fn flow_table_conserves_packets_and_bytes(mut records in proptest::collection::vec(arb_record(), 1..300)) {
        records.sort_by_key(|r| r.ts_ns);
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut total_bytes = 0u64;
        for r in &records {
            table.observe(r);
            total_bytes += u64::from(r.wire_len);
        }
        table.flush();
        let flows = table.drain();
        let flow_packets: u64 = flows.iter().map(|f| f.total_packets()).sum();
        let flow_bytes: u64 = flows.iter().map(|f| f.total_bytes()).sum();
        prop_assert_eq!(flow_packets, records.len() as u64);
        prop_assert_eq!(flow_bytes, total_bytes);
        // Time ranges are coherent.
        for f in &flows {
            prop_assert!(f.first_ts_ns <= f.last_ts_ns);
            prop_assert!(f.min_len <= f.max_len);
        }
    }

    /// The flow key canonicalization groups exactly the two directions.
    #[test]
    fn canonical_key_is_an_involution_class(r in arb_record()) {
        let k = r.flow_key();
        prop_assert_eq!(k.canonical(), k.reversed().canonical());
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    /// The capture conservation identity holds for any chaos campaign the
    /// monitor can be configured with: every observed packet is accounted
    /// for exactly once as captured, ring-dropped, blackout-dropped or
    /// sampled out — and the Observatory mirror agrees bump-for-bump.
    #[test]
    fn monitor_conserves_under_random_chaos(
        // Starved rings (tiny capacity, slow drain) force ring drops.
        ring_capacity in 1usize..48,
        drain_pps in 1_000.0f64..5_000_000.0,
        rings in 1usize..4,
        sample_keep_1_in in 0u64..6,
        blackout_from_ms in 0u64..1_500,
        blackout_len_ms in 0u64..1_500,
        stream in proptest::collection::vec(
            (0u64..2_000u64, any::<bool>(), 0u8..6, 0u8..6, 1024u16..1040, 16usize..1200),
            1..250,
        ),
    ) {
        let blackouts = if blackout_len_ms == 0 {
            Vec::new()
        } else {
            vec![Outage {
                from: SimTime::from_millis(blackout_from_ms),
                until: SimTime::from_millis(blackout_from_ms + blackout_len_ms),
            }]
        };
        let mut monitor = Monitor::new(MonitorConfig {
            ring: RingConfig { capacity: ring_capacity, drain_pps },
            rings,
            blackouts,
            sample_keep_1_in,
            ..MonitorConfig::default()
        });
        let mut builder = PacketBuilder::new();
        let mut stream = stream;
        stream.sort_by_key(|&(ts_ms, ..)| ts_ms);
        for &(ts_ms, inbound, s, d, sport, payload_len) in &stream {
            let pkt = builder.udp_v4(
                Ipv4Addr::new(203, 0, 113, s),
                Ipv4Addr::new(10, 1, 1, d),
                sport,
                443,
                Payload::Synthetic(payload_len),
                64,
                GroundTruth::default(),
            );
            let dir = if inbound { Direction::Inbound } else { Direction::Outbound };
            monitor.observe(SimTime::from_millis(ts_ms), dir, &pkt);
        }
        monitor.finish();
        let s = monitor.stats;
        // The conservation identity, on the legacy stats…
        prop_assert_eq!(s.observed, stream.len() as u64);
        prop_assert_eq!(
            s.observed,
            s.captured + s.ring_dropped + s.blackout_dropped + s.sampled_out,
            "conservation broken: {:?}", s
        );
        // …on the Observatory registry…
        prop_assert!(monitor.obs.conserved(), "obs conservation broken: {:?}", s);
        // …and the two planes agree counter-for-counter.
        prop_assert_eq!(monitor.obs.observed(), s.observed);
        prop_assert_eq!(monitor.obs.captured(), s.captured);
        prop_assert_eq!(monitor.obs.ring_dropped(), s.ring_dropped);
        prop_assert_eq!(monitor.obs.blackout_dropped(), s.blackout_dropped);
        prop_assert_eq!(monitor.obs.sampled_out(), s.sampled_out);
        prop_assert_eq!(monitor.obs.bytes_captured(), s.bytes_captured);
        // Everything the monitor kept is really in the packet store.
        prop_assert_eq!(monitor.packet_records().len() as u64, s.captured);
    }

    /// Heavy-hitter estimates dominate true counts (sketches never
    /// undercount) and the top list is sorted.
    #[test]
    fn heavy_hitters_never_undercount(records in proptest::collection::vec(arb_record(), 1..400)) {
        let mut hh = HeavyHitters::new(4, 256, 4);
        let mut truth: std::collections::HashMap<IpAddr, u64> = std::collections::HashMap::new();
        for r in &records {
            hh.add(r.dst, u64::from(r.wire_len));
            *truth.entry(r.dst).or_insert(0) += u64::from(r.wire_len);
        }
        let top = hh.top();
        prop_assert!(top.len() <= 4);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for (addr, est) in &top {
            prop_assert!(*est >= truth[addr], "sketch undercounted {addr}");
        }
    }
}
