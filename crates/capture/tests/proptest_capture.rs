//! Property tests for the monitoring plane: conservation and invariants
//! over arbitrary packet streams.

use campuslab_capture::{
    Direction, FlowTable, FlowTableConfig, HeavyHitters, PacketRecord, TcpFlags,
};
use proptest::prelude::*;
use std::net::IpAddr;

fn arb_record() -> impl Strategy<Value = PacketRecord> {
    (
        0u64..10_000_000_000,
        any::<bool>(),
        0u8..8,
        0u8..8,
        proptest::sample::select(vec![6u8, 17]),
        1024u16..1030,
        proptest::sample::select(vec![53u16, 80, 443]),
        60u32..1500,
    )
        .prop_map(|(ts_ns, inbound, s, d, protocol, sport, dport, wire_len)| PacketRecord {
            ts_ns,
            direction: if inbound { Direction::Inbound } else { Direction::Outbound },
            src: IpAddr::from([10, 0, 0, s]),
            dst: IpAddr::from([203, 0, 113, d]),
            protocol,
            src_port: sport,
            dst_port: dport,
            wire_len,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Flow assembly conserves packets and bytes exactly, for any stream.
    #[test]
    fn flow_table_conserves_packets_and_bytes(mut records in proptest::collection::vec(arb_record(), 1..300)) {
        records.sort_by_key(|r| r.ts_ns);
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut total_bytes = 0u64;
        for r in &records {
            table.observe(r);
            total_bytes += u64::from(r.wire_len);
        }
        table.flush();
        let flows = table.drain();
        let flow_packets: u64 = flows.iter().map(|f| f.total_packets()).sum();
        let flow_bytes: u64 = flows.iter().map(|f| f.total_bytes()).sum();
        prop_assert_eq!(flow_packets, records.len() as u64);
        prop_assert_eq!(flow_bytes, total_bytes);
        // Time ranges are coherent.
        for f in &flows {
            prop_assert!(f.first_ts_ns <= f.last_ts_ns);
            prop_assert!(f.min_len <= f.max_len);
        }
    }

    /// The flow key canonicalization groups exactly the two directions.
    #[test]
    fn canonical_key_is_an_involution_class(r in arb_record()) {
        let k = r.flow_key();
        prop_assert_eq!(k.canonical(), k.reversed().canonical());
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    /// Heavy-hitter estimates dominate true counts (sketches never
    /// undercount) and the top list is sorted.
    #[test]
    fn heavy_hitters_never_undercount(records in proptest::collection::vec(arb_record(), 1..400)) {
        let mut hh = HeavyHitters::new(4, 256, 4);
        let mut truth: std::collections::HashMap<IpAddr, u64> = std::collections::HashMap::new();
        for r in &records {
            hh.add(r.dst, u64::from(r.wire_len));
            *truth.entry(r.dst).or_insert(0) += u64::from(r.wire_len);
        }
        let top = hh.top();
        prop_assert!(top.len() <= 4);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for (addr, est) in &top {
            prop_assert!(*est >= truth[addr], "sketch undercounted {addr}");
        }
    }
}
