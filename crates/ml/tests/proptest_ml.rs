//! Property tests for the learning stack: structural invariants that must
//! hold on arbitrary data, not just the curated fixtures.

use campuslab_ml::{
    Classifier, Dataset, DecisionTree, ForestConfig, GbtConfig, GradientBoostedTrees,
    RandomForest, TreeConfig,
};
use proptest::prelude::*;

fn arb_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    (2usize..5, 10usize..max_rows).prop_flat_map(|(n_features, n_rows)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, n_features),
                n_rows,
            ),
            proptest::collection::vec(0usize..3, n_rows),
        )
            .prop_map(move |(x, y)| {
                let names = (0..n_features).map(|i| format!("f{i}")).collect();
                Dataset::new(x, y, names)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Trees fit on arbitrary data without panicking, respect depth, and
    /// produce normalized probabilities whose argmax equals predict().
    #[test]
    fn tree_invariants(data in arb_dataset(120), depth in 1usize..6) {
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(depth));
        prop_assert!(tree.depth() <= depth);
        for row in data.x.iter().take(30) {
            let p = tree.predict_proba(row);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let argmax = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            prop_assert_eq!(argmax, tree.predict(row));
        }
    }

    /// Leaf rules partition the feature space: every training row matches
    /// exactly one rule, and that rule's class is the tree's prediction.
    #[test]
    fn leaf_rules_partition(data in arb_dataset(100)) {
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(4));
        let rules = tree.leaf_rules();
        prop_assert_eq!(rules.len(), tree.n_leaves());
        for row in &data.x {
            let hits: Vec<_> = rules
                .iter()
                .filter(|r| r.bounds.iter().all(|&(f, lo, hi)| row[f] > lo && row[f] <= hi))
                .collect();
            prop_assert_eq!(hits.len(), 1);
            prop_assert_eq!(hits[0].class, tree.predict(row));
        }
    }

    /// Laplace-smoothed rule confidence is always strictly inside (0, 1)
    /// and never exceeds what the support can justify.
    #[test]
    fn rule_confidence_is_smoothed(data in arb_dataset(100)) {
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(4));
        for rule in tree.leaf_rules() {
            prop_assert!(rule.confidence > 0.0 && rule.confidence < 1.0);
            let n = rule.support as f64;
            let cap = (n + 1.0) / (n + data.n_classes.max(2) as f64);
            prop_assert!(rule.confidence <= cap + 1e-12);
        }
    }

    /// Forests never panic and vote within the label space.
    #[test]
    fn forest_predictions_in_range(data in arb_dataset(80)) {
        let forest = RandomForest::fit(
            &data,
            ForestConfig { n_trees: 5, ..Default::default() },
        );
        for row in data.x.iter().take(20) {
            prop_assert!(forest.predict(row) < data.n_classes.max(1));
        }
    }

    /// GBT decision scores are finite and probabilities valid on binary
    /// projections of arbitrary data.
    #[test]
    fn gbt_scores_are_finite(data in arb_dataset(80)) {
        let mut binary = data.clone();
        for y in &mut binary.y {
            *y = usize::from(*y > 0);
        }
        binary.n_classes = 2;
        let gbt = GradientBoostedTrees::fit(
            &binary,
            GbtConfig { n_rounds: 8, ..Default::default() },
        );
        for row in binary.x.iter().take(20) {
            let score = gbt.decision_function(row);
            prop_assert!(score.is_finite());
            let p = gbt.predict_proba(row);
            prop_assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
        }
    }

    /// Ordered and shuffled splits both conserve rows.
    #[test]
    fn splits_conserve_rows(data in arb_dataset(100), frac in 0.1f64..0.9) {
        let (a, b) = data.split_by_order(frac);
        prop_assert_eq!(a.len() + b.len(), data.len());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let (c, d) = data.split_shuffled(frac, &mut rng);
        prop_assert_eq!(c.len() + d.len(), data.len());
    }
}
