//! A small multi-layer perceptron (one ReLU hidden layer, softmax output)
//! — the second "complex and heavyweight black-box" model of the paper's
//! development loop.

use crate::data::Dataset;
use crate::model::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlpConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            epochs: 80,
            learning_rate: 0.05,
            batch_size: 32,
            seed: 0x3147,
        }
    }
}

/// One-hidden-layer MLP. Expects standardized features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// `w1[h][f]`: input -> hidden.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `w2[c][h]`: hidden -> output.
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    n_classes: usize,
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Mlp {
    /// Train on `data`.
    pub fn fit(data: &Dataset, cfg: MlpConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let d = data.n_features();
        let h = cfg.hidden;
        let c = data.n_classes.max(2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale1 = (2.0 / d.max(1) as f64).sqrt();
        let scale2 = (2.0 / h as f64).sqrt();
        let mut model = Mlp {
            w1: (0..h)
                .map(|_| (0..d).map(|_| rng.gen_range(-scale1..scale1)).collect())
                .collect(),
            b1: vec![0.0; h],
            w2: (0..c)
                .map(|_| (0..h).map(|_| rng.gen_range(-scale2..scale2)).collect())
                .collect(),
            b2: vec![0.0; c],
            n_classes: c,
        };
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_size) {
                let mut gw1 = vec![vec![0.0; d]; h];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![vec![0.0; h]; c];
                let mut gb2 = vec![0.0; c];
                for &i in batch {
                    let row = &data.x[i];
                    // Forward.
                    let hidden: Vec<f64> = model
                        .w1
                        .iter()
                        .zip(&model.b1)
                        .map(|(w, b)| {
                            (w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b).max(0.0)
                        })
                        .collect();
                    let logits: Vec<f64> = model
                        .w2
                        .iter()
                        .zip(&model.b2)
                        .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
                        .collect();
                    let p = softmax(&logits);
                    // Backward.
                    let dlogits: Vec<f64> = (0..c)
                        .map(|k| p[k] - f64::from(u8::from(data.y[i] == k)))
                        .collect();
                    let mut dhidden = vec![0.0; h];
                    for k in 0..c {
                        for j in 0..h {
                            gw2[k][j] += dlogits[k] * hidden[j];
                            dhidden[j] += dlogits[k] * model.w2[k][j];
                        }
                        gb2[k] += dlogits[k];
                    }
                    for j in 0..h {
                        if hidden[j] > 0.0 {
                            for f in 0..d {
                                gw1[j][f] += dhidden[j] * row[f];
                            }
                            gb1[j] += dhidden[j];
                        }
                    }
                }
                let lr = cfg.learning_rate / batch.len() as f64;
                for j in 0..h {
                    for (w, &g) in model.w1[j].iter_mut().zip(&gw1[j]) {
                        *w -= lr * g;
                    }
                    model.b1[j] -= lr * gb1[j];
                }
                for k in 0..c {
                    for (w, &g) in model.w2[k].iter_mut().zip(&gw2[k]) {
                        *w -= lr * g;
                    }
                    model.b2[k] -= lr * gb2[k];
                }
            }
        }
        model
    }

    /// Parameter count — the black-box "model size".
    pub fn n_parameters(&self) -> usize {
        self.w1.iter().map(Vec::len).sum::<usize>()
            + self.b1.len()
            + self.w2.iter().map(Vec::len).sum::<usize>()
            + self.b2.len()
    }
}

impl Classifier for Mlp {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| (w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b).max(0.0))
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        softmax(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Normalizer;

    /// XOR: not linearly separable, so the MLP must use its hidden layer.
    fn xor_data() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..400 {
            let a = f64::from(u8::from(rng.gen::<bool>()));
            let b = f64::from(u8::from(rng.gen::<bool>()));
            x.push(vec![
                a + rng.gen_range(-0.1..0.1),
                b + rng.gen_range(-0.1..0.1),
            ]);
            y.push(usize::from((a > 0.5) ^ (b > 0.5)));
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn solves_xor() {
        let d = xor_data();
        let norm = Normalizer::fit(&d);
        let dn = norm.transform(&d);
        let (train, test) = dn.split_by_order(0.75);
        let m = Mlp::fit(&train, MlpConfig { hidden: 16, epochs: 200, ..Default::default() });
        let acc = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(r, &l)| m.predict(r) == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized_and_deterministic() {
        let d = xor_data();
        let m1 = Mlp::fit(&d, MlpConfig { epochs: 5, ..Default::default() });
        let m2 = Mlp::fit(&d, MlpConfig { epochs: 5, ..Default::default() });
        for row in d.x.iter().take(10) {
            let p = m1.predict_proba(row);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(m1.predict(row), m2.predict(row));
        }
    }

    #[test]
    fn parameter_count() {
        let d = xor_data();
        let m = Mlp::fit(&d, MlpConfig { hidden: 8, epochs: 1, ..Default::default() });
        // 2*8 + 8 + 8*2 + 2 = 42.
        assert_eq!(m.n_parameters(), 42);
    }
}
