//! Multinomial logistic regression trained by mini-batch SGD — the simple
//! parametric baseline.

use crate::data::Dataset;
use crate::model::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogisticConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-4,
            batch_size: 64,
            seed: 0x1061,
        }
    }
}

/// Softmax regression. Expects standardized features (see
/// [`Normalizer`](crate::data::Normalizer)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// `weights[c][f]`, plus a bias per class.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    n_classes: usize,
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl LogisticRegression {
    /// Train on `data`.
    pub fn fit(data: &Dataset, cfg: LogisticConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let c = data.n_classes.max(2);
        let d = data.n_features();
        let mut model = LogisticRegression {
            weights: vec![vec![0.0; d]; c],
            biases: vec![0.0; c],
            n_classes: c,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_size) {
                let mut grad_w = vec![vec![0.0; d]; c];
                let mut grad_b = vec![0.0; c];
                for &i in batch {
                    let p = model.predict_proba(&data.x[i]);
                    for k in 0..c {
                        let err = p[k] - f64::from(u8::from(data.y[i] == k));
                        for (g, &x) in grad_w[k].iter_mut().zip(&data.x[i]) {
                            *g += err * x;
                        }
                        grad_b[k] += err;
                    }
                }
                let scale = cfg.learning_rate / batch.len() as f64;
                for k in 0..c {
                    for (w, &g) in model.weights[k].iter_mut().zip(&grad_w[k]) {
                        *w -= scale * (g + cfg.l2 * *w);
                    }
                    model.biases[k] -= scale * grad_b[k];
                }
            }
        }
        model
    }

    /// The learned weights (class-major), for inspection.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let logits: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect();
        softmax(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Normalizer;
    use rand::Rng;

    fn linearly_separable(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let class = rng.gen_range(0..2usize);
            let offset = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![offset + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            y.push(class);
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn learns_a_linear_boundary() {
        let d = linearly_separable(1);
        let norm = Normalizer::fit(&d);
        let dn = norm.transform(&d);
        let (train, test) = dn.split_by_order(0.75);
        let m = LogisticRegression::fit(&train, LogisticConfig::default());
        let acc = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(r, &l)| m.predict(r) == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_class_softmax() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for i in 0..60 {
                x.push(vec![c as f64 * 4.0 + (i % 10) as f64 * 0.1]);
                y.push(c);
            }
        }
        let d = Dataset::new(x, y, vec!["v".into()]);
        let norm = Normalizer::fit(&d);
        let m = LogisticRegression::fit(&norm.transform(&d), LogisticConfig::default());
        assert_eq!(m.n_classes(), 3);
        let p = m.predict_proba(&norm.transform_row(&[0.0]));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(m.predict(&norm.transform_row(&[0.2])), 0);
        assert_eq!(m.predict(&norm.transform_row(&[8.2])), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = linearly_separable(2);
        let m1 = LogisticRegression::fit(&d, LogisticConfig::default());
        let m2 = LogisticRegression::fit(&d, LogisticConfig::default());
        assert_eq!(m1.weights(), m2.weights());
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0]);
    }
}
