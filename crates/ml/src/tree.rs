//! CART decision trees: the workhorse of both the black-box ensemble
//! (bagged) and the *deployable* distilled model (shallow, compilable to
//! match-action rules).

use crate::data::Dataset;
use crate::model::Classifier;
use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    pub min_samples_split: usize,
    /// Cap on candidate thresholds per feature (quantile subsampling).
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_leaf: 2,
            min_samples_split: 4,
            max_thresholds: 64,
        }
    }
}

impl TreeConfig {
    /// A shallow, deployable tree (the paper's step (ii) target).
    pub fn shallow(max_depth: usize) -> Self {
        TreeConfig { max_depth, ..Default::default() }
    }
}

/// Tree nodes, stored in an arena for cheap traversal and compilation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// A leaf with a class distribution (counts normalized to sum 1).
    Leaf { dist: Vec<f64>, n: usize },
    /// An internal split: rows with `x[feature] <= threshold` go left.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// One step of a decision path, for evidence lists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    pub feature: usize,
    pub threshold: f64,
    /// True when the sample satisfied `x[feature] <= threshold`.
    pub went_left: bool,
}

/// A root-to-leaf predicate, for rule compilation: the conjunction of
/// per-feature intervals that routes a packet to this leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafRule {
    /// `(feature, lower_exclusive, upper_inclusive)` bounds; a feature
    /// missing from the map is unconstrained.
    pub bounds: Vec<(usize, f64, f64)>,
    pub class: usize,
    pub confidence: f64,
    pub support: usize,
}

/// A CART decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: usize,
    n_classes: usize,
    n_features: usize,
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
}

impl DecisionTree {
    /// Grow a tree on `data`.
    pub fn fit(data: &Dataset, cfg: TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            root: 0,
            n_classes: data.n_classes.max(1),
            n_features: data.n_features(),
        };
        tree.root = tree.grow(data, &idx, 0, &cfg);
        tree
    }

    fn leaf(&mut self, data: &Dataset, idx: &[usize]) -> usize {
        let mut counts = vec![0.0; self.n_classes];
        for &i in idx {
            counts[data.y[i]] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let dist: Vec<f64> = counts.iter().map(|c| c / total.max(1.0)).collect();
        self.nodes.push(Node::Leaf { dist, n: idx.len() });
        self.nodes.len() - 1
    }

    fn grow(&mut self, data: &Dataset, idx: &[usize], depth: usize, cfg: &TreeConfig) -> usize {
        let mut counts = vec![0.0; self.n_classes];
        for &i in idx {
            counts[data.y[i]] += 1.0;
        }
        let total = idx.len() as f64;
        let pure = counts.contains(&total);
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || pure {
            return self.leaf(data, idx);
        }
        let parent_gini = gini(&counts, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, thr, impurity)
        // Fallback: the best zero-gain split. Symmetric data (XOR) has no
        // single split with positive gini decrease, yet splitting is still
        // the right move — the gain appears one level deeper.
        let mut best_any: Option<(usize, f64, f64)> = None;
        for f in 0..self.n_features {
            let mut values: Vec<(f64, usize)> = idx.iter().map(|&i| (data.x[i][f], data.y[i])).collect();
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            // Candidate thresholds: midpoints between distinct consecutive
            // values, subsampled to the config cap.
            let mut candidates: Vec<(usize, f64)> = Vec::new();
            for w in 1..values.len() {
                if values[w].0 > values[w - 1].0 {
                    candidates.push((w, (values[w].0 + values[w - 1].0) / 2.0));
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let stride = (candidates.len() / cfg.max_thresholds).max(1);
            let mut left = vec![0.0; self.n_classes];
            let mut consumed = 0usize;
            for (ci, &(pos, thr)) in candidates.iter().enumerate() {
                while consumed < pos {
                    left[values[consumed].1] += 1.0;
                    consumed += 1;
                }
                if ci % stride != 0 {
                    continue;
                }
                let nl = pos as f64;
                let nr = total - nl;
                if (nl as usize) < cfg.min_samples_leaf || (nr as usize) < cfg.min_samples_leaf {
                    continue;
                }
                let right: Vec<f64> = counts.iter().zip(&left).map(|(t, l)| t - l).collect();
                let impurity = (nl / total) * gini(&left, nl) + (nr / total) * gini(&right, nr);
                if impurity < parent_gini - 1e-12
                    && best.is_none_or(|(_, _, b)| impurity < b)
                {
                    best = Some((f, thr, impurity));
                }
                if best_any.is_none_or(|(_, _, b)| impurity < b) {
                    best_any = Some((f, thr, impurity));
                }
            }
        }
        // Prefer a positive-gain split; fall back to the best zero-gain
        // split only when the node is impure and depth remains for the
        // children to realize the gain.
        let chosen = best.or(if depth + 2 <= cfg.max_depth { best_any } else { None });
        let Some((feature, threshold, _)) = chosen else {
            return self.leaf(data, idx);
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            return self.leaf(data, idx);
        }
        let left = self.grow(data, &li, depth + 1, cfg);
        let right = self.grow(data, &ri, depth + 1, cfg);
        self.nodes.push(Node::Split { feature, threshold, left, right });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> usize {
        fn d(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        d(&self.nodes, self.root)
    }

    /// The decision path for one sample — the "list of pieces of evidence"
    /// the paper wants operators to be able to query (§5, step (iv)).
    pub fn decision_path(&self, row: &[f64]) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Leaf { .. } => return path,
                Node::Split { feature, threshold, left, right } => {
                    let went_left = row[*feature] <= *threshold;
                    path.push(PathStep { feature: *feature, threshold: *threshold, went_left });
                    at = if went_left { *left } else { *right };
                }
            }
        }
    }

    /// Every root-to-leaf rule, for compilation to match-action entries.
    pub fn leaf_rules(&self) -> Vec<LeafRule> {
        let mut rules = Vec::new();
        let mut bounds: Vec<(f64, f64)> = vec![(f64::NEG_INFINITY, f64::INFINITY); self.n_features];
        self.collect_rules(self.root, &mut bounds, &mut rules);
        rules
    }

    fn collect_rules(
        &self,
        at: usize,
        bounds: &mut Vec<(f64, f64)>,
        out: &mut Vec<LeafRule>,
    ) {
        match &self.nodes[at] {
            Node::Leaf { dist, n } => {
                let (class, &frac) = dist
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("non-empty distribution");
                // Laplace-smoothed confidence: a pure-but-thin leaf is NOT
                // high confidence. This is what downstream confidence gates
                // ("act only if >= 90% sure") threshold on, so it must
                // account for evidence volume, not just purity.
                let confidence =
                    (frac * (*n as f64) + 1.0) / (*n as f64 + dist.len() as f64);
                let constrained: Vec<(usize, f64, f64)> = bounds
                    .iter()
                    .enumerate()
                    .filter(|(_, (lo, hi))| lo.is_finite() || hi.is_finite())
                    .map(|(f, (lo, hi))| (f, *lo, *hi))
                    .collect();
                out.push(LeafRule { bounds: constrained, class, confidence, support: *n });
            }
            Node::Split { feature, threshold, left, right } => {
                let saved = bounds[*feature];
                bounds[*feature].1 = saved.1.min(*threshold);
                self.collect_rules(*left, bounds, out);
                bounds[*feature] = saved;
                bounds[*feature].0 = saved.0.max(*threshold);
                self.collect_rules(*right, bounds, out);
                bounds[*feature] = saved;
            }
        }
    }

    /// Impurity-decrease feature importances (normalized to sum 1).
    pub fn importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                imp[*feature] += 1.0;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

impl Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Leaf { dist, .. } => return dist.clone(),
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Classifier;

    /// Two clusters split on feature 0 at ~5.
    fn separable() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            x.push(vec![i as f64 / 10.0, 1.0]);
            y.push(0);
        }
        for i in 0..50 {
            x.push(vec![10.0 + i as f64 / 10.0, 1.0]);
            y.push(1);
        }
        Dataset::new(x, y, vec!["f0".into(), "f1".into()])
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let acc = d
            .x
            .iter()
            .zip(&d.y)
            .filter(|(row, &label)| t.predict(row) == label)
            .count();
        assert_eq!(acc, d.len());
        assert!(t.depth() >= 1);
    }

    #[test]
    fn shallow_config_caps_depth() {
        // XOR-ish data needs depth 2; cap at 1 and verify the cap holds.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..25 {
                    x.push(vec![a as f64, b as f64]);
                    y.push(a ^ b);
                }
            }
        }
        let d = Dataset::new(x, y, vec!["a".into(), "b".into()]);
        let t = DecisionTree::fit(&d, TreeConfig::shallow(1));
        assert!(t.depth() <= 1);
        let deep = DecisionTree::fit(&d, TreeConfig::shallow(3));
        assert!(deep.depth() <= 3);
        // Depth 3 solves XOR.
        let acc = d.x.iter().zip(&d.y).filter(|(r, &l)| deep.predict(r) == l).count();
        assert_eq!(acc, d.len());
    }

    #[test]
    fn proba_sums_to_one_and_matches_predict() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        for row in &d.x {
            let p = t.predict_proba(row);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let argmax = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax, t.predict(row));
        }
    }

    #[test]
    fn decision_path_is_consistent() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let path = t.decision_path(&[0.1, 1.0]);
        assert!(!path.is_empty());
        // Walking the recorded path reproduces the comparisons.
        for step in &path {
            let val = [0.1, 1.0][step.feature];
            assert_eq!(val <= step.threshold, step.went_left);
        }
    }

    #[test]
    fn leaf_rules_partition_the_space() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let rules = t.leaf_rules();
        assert_eq!(rules.len(), t.n_leaves());
        // Every training sample matches exactly one rule, and that rule
        // predicts the tree's output.
        for (row, _) in d.x.iter().zip(&d.y) {
            let hits: Vec<&LeafRule> = rules
                .iter()
                .filter(|r| {
                    r.bounds
                        .iter()
                        .all(|&(f, lo, hi)| row[f] > lo && row[f] <= hi)
                })
                .collect();
            assert_eq!(hits.len(), 1, "row {row:?} hit {} rules", hits.len());
            assert_eq!(hits[0].class, t.predict(row));
        }
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let imp = t.importances();
        assert!(imp[0] > imp[1]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = separable();
        let t = DecisionTree::fit(
            &d,
            TreeConfig { min_samples_leaf: 30, ..TreeConfig::default() },
        );
        for rule in t.leaf_rules() {
            assert!(rule.support >= 30, "leaf with support {}", rule.support);
        }
    }

    #[test]
    fn serializes_round_trip() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for row in &d.x {
            assert_eq!(t.predict(row), back.predict(row));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        DecisionTree::fit(&Dataset::default(), TreeConfig::default());
    }
}
