//! Datasets: row-major feature matrices with integer class labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Row-major features.
    pub x: Vec<Vec<f64>>,
    /// Class labels in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of classes (at least `max(y) + 1`).
    pub n_classes: usize,
    /// Column names, for explanations and reports.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build from parts; validates shapes.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>, feature_names: Vec<String>) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        if let Some(first) = x.first() {
            assert_eq!(first.len(), feature_names.len(), "feature/name count mismatch");
            assert!(x.iter().all(|r| r.len() == first.len()), "ragged rows");
        }
        let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
        Dataset { x, y, n_classes, feature_names }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// Split preserving row order: the first `train_frac` of rows train,
    /// the rest test. Right for time-ordered network data (no leakage from
    /// the future).
    pub fn split_by_order(&self, train_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let cut = (self.len() as f64 * train_frac).round() as usize;
        let train = self.subset(0..cut);
        let test = self.subset(cut..self.len());
        (train, test)
    }

    /// Shuffled split for i.i.d. evaluation.
    pub fn split_shuffled(&self, train_frac: f64, rng: &mut StdRng) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let cut = (self.len() as f64 * train_frac).round() as usize;
        (self.select(&idx[..cut]), self.select(&idx[cut..]))
    }

    /// Rows at `range`, preserving order.
    pub fn subset(&self, range: std::ops::Range<usize>) -> Dataset {
        Dataset {
            x: self.x[range.clone()].to_vec(),
            y: self.y[range].to_vec(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Rows at the given indexes.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// `k` folds for cross-validation: returns (train, test) pairs.
    pub fn k_folds(&self, k: usize, rng: &mut StdRng) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least 2 folds");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let test: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == f)
                .map(|(_, &v)| v)
                .collect();
            let train: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != f)
                .map(|(_, &v)| v)
                .collect();
            folds.push((self.select(&train), self.select(&test)));
        }
        folds
    }

    /// Downsample the majority class to at most `ratio` times the minority
    /// count (class imbalance is brutal in attack detection).
    pub fn balance(&self, ratio: f64, rng: &mut StdRng) -> Dataset {
        let counts = self.class_counts();
        let minority = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0);
        let cap = ((minority as f64) * ratio).ceil() as usize;
        let mut kept: Vec<usize> = Vec::new();
        let mut per_class = vec![0usize; self.n_classes];
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        for i in idx {
            let c = self.y[i];
            if counts[c] <= cap || per_class[c] < cap {
                per_class[c] += 1;
                kept.push(i);
            }
        }
        kept.sort_unstable();
        self.select(&kept)
    }
}

/// Feature standardization fit on training data, applied everywhere —
/// required by the linear and neural models.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Normalizer {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
}

impl Normalizer {
    /// Fit means and stds per column.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len().max(1) as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for row in &data.x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in &data.x {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Normalizer { means, stds }
    }

    /// Transform one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transform a whole dataset.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            x: data.x.iter().map(|r| self.transform_row(r)).collect(),
            y: data.y.clone(),
            n_classes: data.n_classes,
            feature_names: data.feature_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..10).map(|i| usize::from(i >= 5)).collect(),
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn construction_and_counts() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes, 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "row/label count mismatch")]
    fn shape_mismatch_panics() {
        Dataset::new(vec![vec![1.0]], vec![], vec!["a".into()]);
    }

    #[test]
    fn ordered_split_preserves_time() {
        let d = toy();
        let (train, test) = d.split_by_order(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.x[0][0], 0.0);
        assert_eq!(test.x[0][0], 7.0);
    }

    #[test]
    fn shuffled_split_partitions() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.split_shuffled(0.5, &mut rng);
        assert_eq!(train.len() + test.len(), 10);
        let mut all: Vec<f64> = train.x.iter().chain(&test.x).map(|r| r[0]).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn k_folds_cover_everything_once() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let folds = d.k_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut test_rows: Vec<f64> = folds.iter().flat_map(|(_, t)| t.x.iter().map(|r| r[0])).collect();
        test_rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(test_rows.len(), 10);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
        }
    }

    #[test]
    fn balancing_caps_majority() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![i as f64]);
            y.push(0);
        }
        for i in 0..5 {
            x.push(vec![i as f64]);
            y.push(1);
        }
        let d = Dataset::new(x, y, vec!["f".into()]);
        let mut rng = StdRng::seed_from_u64(3);
        let b = d.balance(2.0, &mut rng);
        let counts = b.class_counts();
        assert_eq!(counts[1], 5);
        assert_eq!(counts[0], 10);
    }

    #[test]
    fn normalizer_zero_means_unit_stds() {
        let d = toy();
        let norm = Normalizer::fit(&d);
        let t = norm.transform(&d);
        let mean: f64 = t.x.iter().map(|r| r[0]).sum::<f64>() / 10.0;
        assert!(mean.abs() < 1e-9);
        let var: f64 = t.x.iter().map(|r| r[0] * r[0]).sum::<f64>() / 10.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalizer_handles_constant_columns() {
        let d = Dataset::new(
            vec![vec![5.0], vec![5.0], vec![5.0]],
            vec![0, 0, 1],
            vec!["c".into()],
        );
        let norm = Normalizer::fit(&d);
        let t = norm.transform(&d);
        assert!(t.x.iter().all(|r| r[0].is_finite()));
    }
}
