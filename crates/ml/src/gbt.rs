//! Gradient-boosted regression trees (binary logistic loss) — the third
//! "heavyweight black box" family for the development loop, with a very
//! different inductive bias from bagging.

use crate::data::Dataset;
use crate::model::Classifier;
use serde::{Deserialize, Serialize};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbtConfig {
    pub n_rounds: usize,
    pub learning_rate: f64,
    /// Depth of each weak regression tree.
    pub depth: usize,
    pub min_samples_leaf: usize,
    /// Candidate thresholds per feature per node (quantile subsampling).
    pub max_thresholds: usize,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_rounds: 60,
            learning_rate: 0.2,
            depth: 3,
            min_samples_leaf: 4,
            max_thresholds: 32,
        }
    }
}

/// A node of the weak regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    /// Newton-step leaf value.
    Leaf(f64),
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A variance-reduction regression tree whose leaves hold Newton-step
/// values for the logistic loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<RegNode>,
    root: usize,
}

impl RegTree {
    fn value(&self, row: &[f64]) -> f64 {
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                RegNode::Leaf(v) => return *v,
                RegNode::Split { feature, threshold, left, right } => {
                    at = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Fit context for one weak tree.
struct RegFit<'a> {
    x: &'a [Vec<f64>],
    /// Negative gradients (`y - p`).
    grad: &'a [f64],
    /// Hessians (`p (1 - p)`).
    hess: &'a [f64],
    cfg: GbtConfig,
}

impl RegFit<'_> {
    fn fit(&self) -> RegTree {
        let idx: Vec<usize> = (0..self.x.len()).collect();
        let mut tree = RegTree { nodes: Vec::new(), root: 0 };
        tree.root = self.grow(&mut tree.nodes, &idx, 0);
        tree
    }

    fn leaf_value(&self, idx: &[usize]) -> f64 {
        let g: f64 = idx.iter().map(|&i| self.grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| self.hess[i]).sum();
        (g / (h + 1e-9)).clamp(-4.0, 4.0)
    }

    fn grow(&self, nodes: &mut Vec<RegNode>, idx: &[usize], depth: usize) -> usize {
        if depth >= self.cfg.depth || idx.len() < 2 * self.cfg.min_samples_leaf {
            nodes.push(RegNode::Leaf(self.leaf_value(idx)));
            return nodes.len() - 1;
        }
        // Best split by squared-error reduction of the gradients.
        let total_g: f64 = idx.iter().map(|&i| self.grad[i]).sum();
        let total_n = idx.len() as f64;
        let parent_score = total_g * total_g / total_n;
        let n_features = self.x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, thr, score gain)
        for f in 0..n_features {
            let mut vals: Vec<(f64, f64)> =
                idx.iter().map(|&i| (self.x[i][f], self.grad[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut candidates: Vec<(usize, f64)> = Vec::new();
            for w in 1..vals.len() {
                if vals[w].0 > vals[w - 1].0 {
                    candidates.push((w, (vals[w].0 + vals[w - 1].0) / 2.0));
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let stride = (candidates.len() / self.cfg.max_thresholds).max(1);
            let mut left_g = 0.0;
            let mut consumed = 0usize;
            for (ci, &(pos, thr)) in candidates.iter().enumerate() {
                while consumed < pos {
                    left_g += vals[consumed].1;
                    consumed += 1;
                }
                if ci % stride != 0 {
                    continue;
                }
                let nl = pos as f64;
                let nr = total_n - nl;
                if (nl as usize) < self.cfg.min_samples_leaf
                    || (nr as usize) < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let right_g = total_g - left_g;
                let gain = left_g * left_g / nl + right_g * right_g / nr - parent_score;
                if gain > 1e-12 && best.is_none_or(|(_, _, b)| gain > b) {
                    best = Some((f, thr, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            nodes.push(RegNode::Leaf(self.leaf_value(idx)));
            return nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| self.x[i][feature] <= threshold);
        let left = self.grow(nodes, &li, depth + 1);
        let right = self.grow(nodes, &ri, depth + 1);
        nodes.push(RegNode::Split { feature, threshold, left, right });
        nodes.len() - 1
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Gradient-boosted trees for binary classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    stages: Vec<RegTree>,
    base_score: f64,
    learning_rate: f64,
}

impl GradientBoostedTrees {
    /// Train on a binary dataset (labels 0/1).
    pub fn fit(data: &Dataset, cfg: GbtConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(
            data.y.iter().all(|&y| y < 2),
            "GBT is binary; labels must be 0/1"
        );
        let n = data.len();
        let pos = data.y.iter().filter(|&&y| y == 1).count() as f64;
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (prior / (1.0 - prior)).ln();
        let mut scores = vec![base_score; n];
        let mut stages = Vec::with_capacity(cfg.n_rounds);
        for _ in 0..cfg.n_rounds {
            let probs: Vec<f64> = scores.iter().map(|&s| sigmoid(s)).collect();
            let grad: Vec<f64> = data
                .y
                .iter()
                .zip(&probs)
                .map(|(&y, &p)| f64::from(y as u8) - p)
                .collect();
            let hess: Vec<f64> = probs.iter().map(|&p| (p * (1.0 - p)).max(1e-9)).collect();
            let tree = RegFit { x: &data.x, grad: &grad, hess: &hess, cfg }.fit();
            for (i, row) in data.x.iter().enumerate() {
                scores[i] += cfg.learning_rate * tree.value(row);
            }
            stages.push(tree);
        }
        GradientBoostedTrees { stages, base_score, learning_rate: cfg.learning_rate }
    }

    /// The raw additive score (log-odds).
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate
                * self.stages.iter().map(|t| t.value(row)).sum::<f64>()
    }

    /// Number of boosting stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total nodes across stages (model size).
    pub fn total_nodes(&self) -> usize {
        self.stages.iter().map(RegTree::n_nodes).sum()
    }
}

impl Classifier for GradientBoostedTrees {
    fn n_classes(&self) -> usize {
        2
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let p = sigmoid(self.decision_function(row));
        vec![1.0 - p, p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ring_data(seed: u64, n: usize) -> Dataset {
        // Class 1 inside an annulus: not linearly separable, needs an
        // ensemble of axis splits.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            let r = (a * a + b * b).sqrt();
            x.push(vec![a, b]);
            y.push(usize::from(r > 0.7 && r < 1.5));
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn learns_a_nonlinear_boundary() {
        let d = ring_data(1, 1200);
        let (train, test) = d.split_by_order(0.75);
        let model = GradientBoostedTrees::fit(&train, GbtConfig::default());
        let acc = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(r, &l)| model.predict(r) == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.85, "GBT accuracy {acc}");
    }

    #[test]
    fn boosting_improves_over_one_round() {
        let d = ring_data(2, 800);
        let (train, test) = d.split_by_order(0.75);
        let weak =
            GradientBoostedTrees::fit(&train, GbtConfig { n_rounds: 1, ..Default::default() });
        let strong = GradientBoostedTrees::fit(&train, GbtConfig::default());
        let acc = |m: &GradientBoostedTrees| {
            test.x
                .iter()
                .zip(&test.y)
                .filter(|(r, &l)| m.predict(r) == l)
                .count() as f64
                / test.len() as f64
        };
        assert!(acc(&strong) > acc(&weak) + 0.05, "{} vs {}", acc(&strong), acc(&weak));
        assert_eq!(strong.n_stages(), 60);
        assert!(strong.total_nodes() > weak.total_nodes());
    }

    #[test]
    fn probabilities_are_valid_and_deterministic() {
        let d = ring_data(3, 400);
        let m1 = GradientBoostedTrees::fit(&d, GbtConfig { n_rounds: 10, ..Default::default() });
        let m2 = GradientBoostedTrees::fit(&d, GbtConfig { n_rounds: 10, ..Default::default() });
        for row in d.x.iter().take(50) {
            let p = m1.predict_proba(row);
            assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
            assert!(p[1] >= 0.0 && p[1] <= 1.0);
            assert_eq!(m1.predict(row), m2.predict(row));
        }
    }

    #[test]
    fn base_score_reflects_class_prior() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![i as f64]);
            y.push(usize::from(i < 10)); // 10% positive
        }
        let d = Dataset::new(x, y, vec!["v".into()]);
        let m = GradientBoostedTrees::fit(&d, GbtConfig { n_rounds: 0, ..Default::default() });
        // With zero rounds the probability equals the prior.
        let p = m.predict_proba(&[50.0])[1];
        assert!((p - 0.1).abs() < 1e-9, "prior {p}");
    }

    #[test]
    fn overfits_less_with_fewer_rounds_than_with_many() {
        // Sanity on train accuracy monotonicity: more rounds fit train at
        // least as well.
        let d = ring_data(5, 600);
        let few = GradientBoostedTrees::fit(&d, GbtConfig { n_rounds: 3, ..Default::default() });
        let many = GradientBoostedTrees::fit(&d, GbtConfig { n_rounds: 80, ..Default::default() });
        let train_acc = |m: &GradientBoostedTrees| {
            d.x.iter().zip(&d.y).filter(|(r, &l)| m.predict(r) == l).count() as f64 / d.len() as f64
        };
        assert!(train_acc(&many) >= train_acc(&few));
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn multiclass_labels_are_rejected() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0, 1, 2],
            vec!["v".into()],
        );
        GradientBoostedTrees::fit(&d, GbtConfig::default());
    }
}
