//! # campuslab-ml
//!
//! From-scratch supervised learning for the paper's development loop:
//! heavyweight "black-box" models (random forest, MLP), a lightweight
//! interpretable model (shallow CART tree — the distillation target), a
//! linear baseline, and the metrics every experiment reports.
//!
//! Everything is seeded and deterministic: the same dataset and config
//! always produce the same model, which is what makes CampusLab's
//! cross-campus reproducibility protocol (experiment E7) meaningful.
//!
//! ```
//! use campuslab_ml::{Classifier, Dataset, DecisionTree, TreeConfig};
//!
//! let data = Dataset::new(
//!     vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
//!     vec![0, 0, 1, 1],
//!     vec!["bytes".into()],
//! );
//! let tree = DecisionTree::fit(&data, TreeConfig::shallow(2));
//! assert_eq!(tree.predict(&[1.5]), 0);
//! assert_eq!(tree.predict(&[10.5]), 1);
//! ```

pub mod data;
pub mod model;
pub mod tree;
pub mod forest;
pub mod gbt;
pub mod linear;
pub mod mlp;
pub mod metrics;

pub use data::{Dataset, Normalizer};
pub use forest::{ForestConfig, RandomForest};
pub use gbt::{GbtConfig, GradientBoostedTrees};
pub use linear::{LogisticConfig, LogisticRegression};
pub use metrics::{calibration, fidelity, roc_auc, CalibrationBin, ConfusionMatrix};
pub use mlp::{Mlp, MlpConfig};
pub use model::Classifier;
pub use tree::{DecisionTree, LeafRule, Node, PathStep, TreeConfig};
