//! Random forests: the heavyweight "black-box" model of the paper's
//! development loop (§5, step (i)) — accurate, but far too large and
//! branchy to run per-packet in a data plane.

use crate::data::Dataset;
use crate::model::Classifier;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Fraction of rows bootstrapped per tree.
    pub sample_frac: f64,
    /// Number of features considered per tree (0 = all). Feature bagging
    /// happens per tree by masking columns, which keeps the tree code
    /// simple.
    pub max_features: usize,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 40,
            tree: TreeConfig::default(),
            sample_frac: 0.8,
            max_features: 0,
            seed: 0xF0_4E57,
        }
    }
}

/// A bagged ensemble of CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Per-tree active-feature masks (empty = all features).
    masks: Vec<Vec<usize>>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Train a forest.
    pub fn fit(data: &Dataset, cfg: ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(cfg.n_trees > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.len();
        let sample = ((n as f64) * cfg.sample_frac).max(1.0) as usize;
        let mut trees = Vec::with_capacity(cfg.n_trees);
        let mut masks = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            let idx: Vec<usize> = (0..sample).map(|_| rng.gen_range(0..n)).collect();
            let mut boot = data.select(&idx);
            let mask: Vec<usize> = if cfg.max_features == 0 || cfg.max_features >= data.n_features()
            {
                Vec::new()
            } else {
                let mut features: Vec<usize> = (0..data.n_features()).collect();
                // Partial Fisher-Yates for a random subset.
                for i in 0..cfg.max_features {
                    let j = rng.gen_range(i..features.len());
                    features.swap(i, j);
                }
                features.truncate(cfg.max_features);
                features.sort_unstable();
                features
            };
            if !mask.is_empty() {
                // Zero out inactive columns so splits can't use them.
                for row in &mut boot.x {
                    for (f, v) in row.iter_mut().enumerate() {
                        if !mask.contains(&f) {
                            *v = 0.0;
                        }
                    }
                }
            }
            trees.push(DecisionTree::fit(&boot, cfg.tree));
            masks.push(mask);
        }
        RandomForest {
            trees,
            masks,
            n_classes: data.n_classes.max(1),
            n_features: data.n_features(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across trees — the "model size" a data plane
    /// cannot hold.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }
}

impl Classifier for RandomForest {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        let mut masked = vec![0.0; row.len()];
        for (tree, mask) in self.trees.iter().zip(&self.masks) {
            let p = if mask.is_empty() {
                tree.predict_proba(row)
            } else {
                masked.iter_mut().for_each(|v| *v = 0.0);
                for &f in mask {
                    masked[f] = row[f];
                }
                tree.predict_proba(&masked)
            };
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..600 {
            let class = rng.gen_range(0..2usize);
            let center = if class == 0 { 2.0 } else { 6.0 };
            x.push(vec![
                center + rng.gen_range(-2.0..2.0),
                rng.gen_range(0.0..1.0), // noise column
            ]);
            y.push(class);
        }
        Dataset::new(x, y, vec!["signal".into(), "noise".into()])
    }

    #[test]
    fn forest_beats_chance_substantially() {
        let d = noisy_data(1);
        let (train, test) = d.split_by_order(0.7);
        let f = RandomForest::fit(&train, ForestConfig { n_trees: 15, ..Default::default() });
        let correct = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(r, &l)| f.predict(r) == l)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "forest accuracy {acc}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let d = noisy_data(2);
        let f = RandomForest::fit(&d, ForestConfig { n_trees: 7, ..Default::default() });
        for row in d.x.iter().take(20) {
            let p = f.predict_proba(row);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = noisy_data(3);
        let f1 = RandomForest::fit(&d, ForestConfig::default());
        let f2 = RandomForest::fit(&d, ForestConfig::default());
        for row in d.x.iter().take(50) {
            assert_eq!(f1.predict(row), f2.predict(row));
        }
    }

    #[test]
    fn feature_bagging_limits_columns() {
        let d = noisy_data(4);
        let f = RandomForest::fit(
            &d,
            ForestConfig { n_trees: 5, max_features: 1, ..Default::default() },
        );
        assert_eq!(f.n_trees(), 5);
        for mask in &f.masks {
            assert_eq!(mask.len(), 1);
        }
    }

    #[test]
    fn forest_is_much_bigger_than_a_shallow_tree() {
        let d = noisy_data(5);
        let f = RandomForest::fit(&d, ForestConfig::default());
        let shallow = DecisionTree::fit(&d, TreeConfig::shallow(4));
        assert!(f.total_nodes() > 10 * shallow.n_nodes());
    }
}
