//! Evaluation metrics: confusion matrices, per-class precision/recall/F1,
//! ROC-AUC, and calibration (reliability) — the numbers every CampusLab
//! experiment reports.

use crate::data::Dataset;
use crate::model::Classifier;
use serde::Serialize;

/// A confusion matrix: `m[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConfusionMatrix {
    pub m: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Build from label pairs.
    pub fn from_pairs(n_classes: usize, pairs: impl Iterator<Item = (usize, usize)>) -> Self {
        let mut m = vec![vec![0u64; n_classes]; n_classes];
        for (actual, predicted) in pairs {
            m[actual][predicted] += 1;
        }
        ConfusionMatrix { m }
    }

    /// Evaluate a classifier over a dataset.
    pub fn evaluate(model: &dyn Classifier, data: &Dataset) -> Self {
        Self::from_pairs(
            data.n_classes.max(model.n_classes()),
            data.x.iter().zip(&data.y).map(|(row, &y)| (y, model.predict(row))),
        )
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.m.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.m.len()).map(|i| self.m[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision for one class (0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let predicted: u64 = (0..self.m.len()).map(|i| self.m[i][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class (0 when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let actual: u64 = self.m[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 for one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that occur.
    pub fn macro_f1(&self) -> f64 {
        let classes: Vec<usize> = (0..self.m.len())
            .filter(|&c| self.m[c].iter().sum::<u64>() > 0)
            .collect();
        if classes.is_empty() {
            return 0.0;
        }
        classes.iter().map(|&c| self.f1(c)).sum::<f64>() / classes.len() as f64
    }
}

/// ROC-AUC for a binary problem given `(score_for_positive, is_positive)`
/// pairs, via the rank-sum (Mann–Whitney) formulation with tie handling.
pub fn roc_auc(pairs: &[(f64, bool)]) -> f64 {
    let mut sorted: Vec<&(f64, bool)> = pairs.iter().collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n_pos = sorted.iter().filter(|(_, p)| *p).count() as f64;
    let n_neg = sorted.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    // Average ranks over ties.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    let mut rank = 1.0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        let avg_rank = (rank + rank + (j - i) as f64 - 1.0) / 2.0;
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        rank += (j - i) as f64;
        i = j;
    }
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// One calibration bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CalibrationBin {
    /// Mean predicted confidence in the bin.
    pub mean_confidence: f64,
    /// Empirical accuracy in the bin.
    pub accuracy: f64,
    pub count: u64,
}

/// Reliability diagram data: bin predictions by confidence and compare to
/// empirical accuracy. Returns the bins and the expected calibration error.
pub fn calibration(
    pairs: &[(f64, bool)], // (confidence in prediction, prediction was correct)
    n_bins: usize,
) -> (Vec<CalibrationBin>, f64) {
    assert!(n_bins > 0);
    let mut bins = vec![(0.0f64, 0u64, 0u64); n_bins]; // (conf sum, correct, count)
    for &(conf, correct) in pairs {
        let b = ((conf * n_bins as f64) as usize).min(n_bins - 1);
        bins[b].0 += conf;
        bins[b].1 += u64::from(correct);
        bins[b].2 += 1;
    }
    let total: u64 = bins.iter().map(|b| b.2).sum();
    let mut out = Vec::new();
    let mut ece = 0.0;
    for (conf_sum, correct, count) in bins {
        if count == 0 {
            continue;
        }
        let mean_confidence = conf_sum / count as f64;
        let accuracy = correct as f64 / count as f64;
        ece += (count as f64 / total as f64) * (mean_confidence - accuracy).abs();
        out.push(CalibrationBin { mean_confidence, accuracy, count });
    }
    (out, ece)
}

/// Agreement rate between two classifiers over a dataset — the *fidelity*
/// metric of model extraction (paper §5, step (ii)).
pub fn fidelity(teacher: &dyn Classifier, student: &dyn Classifier, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let agree = data
        .x
        .iter()
        .filter(|row| teacher.predict(row) == student.predict(row))
        .count();
    agree as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        // actual 0: 8 right, 2 called 1. actual 1: 3 wrong, 7 right.
        ConfusionMatrix { m: vec![vec![8, 2], vec![3, 7]] }
    }

    #[test]
    fn accuracy_precision_recall_f1() {
        let c = cm();
        assert_eq!(c.total(), 20);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
        assert!((c.precision(1) - 7.0 / 9.0).abs() < 1e-12);
        assert!((c.recall(1) - 0.7).abs() < 1e-12);
        let f1 = c.f1(1);
        let expected = 2.0 * (7.0 / 9.0) * 0.7 / (7.0 / 9.0 + 0.7);
        assert!((f1 - expected).abs() < 1e-12);
        assert!(c.macro_f1() > 0.7);
    }

    #[test]
    fn degenerate_matrix_is_zero_not_nan() {
        let c = ConfusionMatrix { m: vec![vec![0, 0], vec![0, 0]] };
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(0), 0.0);
        assert_eq!(c.recall(1), 0.0);
        assert_eq!(c.f1(0), 0.0);
    }

    #[test]
    fn auc_perfect_and_random_and_inverted() {
        let perfect: Vec<(f64, bool)> = (0..100)
            .map(|i| (i as f64 / 100.0, i >= 50))
            .collect();
        assert!((roc_auc(&perfect) - 1.0).abs() < 1e-12);
        let inverted: Vec<(f64, bool)> = perfect.iter().map(|&(s, p)| (1.0 - s, p)).collect();
        assert!(roc_auc(&inverted) < 1e-12);
        let constant: Vec<(f64, bool)> = (0..100).map(|i| (0.5, i % 2 == 0)).collect();
        assert!((roc_auc(&constant) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_correctly() {
        // Two positives at 0.8, two negatives at 0.8, one negative at 0.1:
        // P(pos > neg) + 0.5 P(tie) = (2*1 + 0.5*2*2) / (2*3)... compute:
        // pairs: pos vs neg@0.1: 2 wins; pos vs neg@0.8: 4 ties -> 2.
        // AUC = (2 + 2) / 6.
        let pairs = vec![(0.8, true), (0.8, true), (0.8, false), (0.8, false), (0.1, false)];
        assert!((roc_auc(&pairs) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_of_a_perfect_model() {
        let pairs: Vec<(f64, bool)> = (0..1000).map(|_| (0.9, true)).collect();
        let (bins, ece) = calibration(&pairs, 10);
        assert_eq!(bins.len(), 1);
        // Confidence 0.9 but accuracy 1.0 -> ECE 0.1.
        assert!((ece - 0.1).abs() < 1e-9);
    }

    #[test]
    fn calibration_mixed_bins() {
        let mut pairs = Vec::new();
        for i in 0..100 {
            pairs.push((0.75, i % 4 != 0)); // 75% correct at 75% confidence
        }
        let (bins, ece) = calibration(&pairs, 4);
        assert_eq!(bins.len(), 1);
        assert!(ece < 1e-9, "well-calibrated data must have ~0 ECE, got {ece}");
        assert_eq!(bins[0].count, 100);
    }

    #[test]
    fn fidelity_of_identical_models_is_one() {
        struct Threshold(f64);
        impl Classifier for Threshold {
            fn n_classes(&self) -> usize {
                2
            }
            fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
                if row[0] > self.0 {
                    vec![0.0, 1.0]
                } else {
                    vec![1.0, 0.0]
                }
            }
        }
        let data = Dataset::new(
            (0..100).map(|i| vec![i as f64]).collect(),
            vec![0; 100],
            vec!["v".into()],
        );
        assert_eq!(fidelity(&Threshold(50.0), &Threshold(50.0), &data), 1.0);
        let f = fidelity(&Threshold(50.0), &Threshold(60.0), &data);
        assert!((f - 0.9).abs() < 0.02, "fidelity {f}");
    }
}
