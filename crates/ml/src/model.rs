//! The common classifier interface.

/// An object-safe classifier over f64 feature rows.
pub trait Classifier {
    /// Number of classes the model distinguishes.
    fn n_classes(&self) -> usize;

    /// Class probability estimates for one row (sums to 1).
    fn predict_proba(&self, row: &[f64]) -> Vec<f64>;

    /// The argmax class.
    fn predict(&self, row: &[f64]) -> usize {
        self.predict_proba(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The winning class and its probability — the "confidence" the
    /// paper's mitigation gate thresholds on.
    fn predict_with_confidence(&self, row: &[f64]) -> (usize, f64) {
        let p = self.predict_proba(row);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &v)| (i, v))
            .unwrap_or((0, 0.0))
    }

    /// Predictions for a batch of rows.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl Classifier for Fixed {
        fn n_classes(&self) -> usize {
            self.0.len()
        }
        fn predict_proba(&self, _: &[f64]) -> Vec<f64> {
            self.0.clone()
        }
    }

    #[test]
    fn default_methods_agree() {
        let c = Fixed(vec![0.2, 0.7, 0.1]);
        assert_eq!(c.predict(&[]), 1);
        let (class, conf) = c.predict_with_confidence(&[]);
        assert_eq!(class, 1);
        assert!((conf - 0.7).abs() < 1e-12);
        assert_eq!(c.predict_batch(&[vec![], vec![]]), vec![1, 1]);
    }
}
