//! The tenant-isolation differential suite: the plaza's core promise is
//! that co-scheduling changes WHEN a tenant's experiment runs, never WHAT
//! it measures. Every test here renders a tenant's entire observable run
//! — metrics bundle, guard decision log, trace, datastore view — into
//! [`TenantOutcome::fingerprint`] and diffs it byte-for-byte between a
//! solo plaza and a crowded one, across the interleaved (one worker) and
//! parallel (`CAMPUSLAB_JOBS=4`) executors. `scripts/ci.sh` re-runs the
//! suite under `CAMPUSLAB_SHARDS=4` and `=8`, covering the sharded
//! engine with the same assertions.
//!
//! The neighbor cast deliberately includes a chaos-running tenant (its
//! own campus suffers a border flap) and budget-hungry tenants that force
//! admission queueing: neither may move a single byte of anyone else.

use campuslab_control::{run_development_loop, DevLoopConfig};
use campuslab_features::{window_dataset, LabelMode, WindowConfig};
use campuslab_dataplane::PipelineProgram;
use campuslab_ml::{DecisionTree, TreeConfig};
use campuslab_netsim::{Campus, ChaosPlan, SimTime};
use campuslab_plaza::{Plaza, PlazaConfig, TenantJob, TenantSpec};
use campuslab_testbed::{collect, Scenario};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Serializes every test in this file: they all mutate `CAMPUSLAB_JOBS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Train the probe scenario's program + window model exactly once; every
/// Defend/Guarded tenant in the suite clones from here.
fn trained() -> &'static (PipelineProgram, DecisionTree) {
    static TRAINED: OnceLock<(PipelineProgram, DecisionTree)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let data = collect(&Scenario::tenant_probe());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
    })
}

/// A probe tenant whose own campus takes a border-link flap mid-run —
/// the bad neighbor every other tenant must not notice.
fn chaos_neighbor(name: &str) -> TenantSpec {
    let mut spec = TenantSpec::probe(name);
    let campus = Campus::build(spec.scenario.campus.clone());
    let mut plan = ChaosPlan::new();
    plan.link_flap(campus.border_link, SimTime::from_millis(600), SimTime::from_millis(1400));
    spec.chaos = Some(plan);
    spec
}

/// The tenant palette the property test samples from.
fn tenant(kind: u8, name: &str) -> TenantSpec {
    let (program, model) = trained();
    match kind % 5 {
        0 => TenantSpec::probe(name),
        1 => {
            let mut spec = TenantSpec::probe(name);
            spec.capture = true;
            spec
        }
        // Budget hog: three of these overflow the default switch's TCAM,
        // so crowded cases exercise queueing + FIFO drain too.
        2 => {
            let mut spec = TenantSpec::probe(name);
            spec.reserved_tcam = 9_000;
            spec
        }
        3 => TenantSpec {
            name: name.into(),
            scenario: Scenario::tenant_probe(),
            program: program.clone(),
            window_model: Some(model.clone()),
            job: TenantJob::Defend,
            chaos: None,
            capture: false,
            reserved_tcam: 0,
        },
        _ => TenantSpec {
            name: name.into(),
            scenario: Scenario::tenant_probe(),
            program: program.clone(),
            window_model: Some(model.clone()),
            job: TenantJob::Guarded {
                submissions: vec![(SimTime::from_secs(1), program.clone())],
            },
            chaos: None,
            capture: false,
            reserved_tcam: 64,
        },
    }
}

fn set_jobs(n: usize) {
    std::env::set_var("CAMPUSLAB_JOBS", n.to_string());
}

/// Run a plaza over `specs` and return every finished tenant's
/// fingerprint, keyed by name.
fn fingerprints(specs: Vec<TenantSpec>) -> BTreeMap<String, String> {
    let mut plaza = Plaza::new(PlazaConfig::default());
    for spec in specs {
        plaza.submit(spec);
    }
    plaza
        .run()
        .outcomes
        .into_iter()
        .map(|o| {
            let fp = o.fingerprint();
            (o.name, fp)
        })
        .collect()
}

/// The deterministic anchor case: a guarded tenant and a capture tenant
/// next to a chaos-running neighbor, solo vs crowded, interleaved vs
/// parallel — four executions, one set of bytes per tenant.
#[test]
fn guarded_and_capture_tenants_ignore_a_chaos_neighbor() {
    let _guard = ENV_LOCK.lock().unwrap();
    let cast = || {
        vec![tenant(4, "guarded"), tenant(1, "capture"), chaos_neighbor("gremlin")]
    };

    set_jobs(1);
    let solo: BTreeMap<String, String> = cast()
        .into_iter()
        .map(|spec| {
            let name = spec.name.clone();
            let fp = fingerprints(vec![spec]).remove(&name).expect("solo run finished");
            (name, fp)
        })
        .collect();
    let co_seq = fingerprints(cast());
    set_jobs(4);
    let co_par = fingerprints(cast());
    std::env::remove_var("CAMPUSLAB_JOBS");

    for (name, fp) in &solo {
        assert_eq!(
            fp,
            co_seq.get(name).expect("tenant finished co-scheduled"),
            "{name}: solo vs interleaved co-schedule diverged"
        );
        assert_eq!(
            fp,
            co_par.get(name).expect("tenant finished under JOBS=4"),
            "{name}: solo vs parallel co-schedule diverged"
        );
    }
    // Sanity: the guarded tenant actually ran its ladder and the chaos
    // neighbor actually suffered — this differential is not vacuous.
    assert!(solo["guarded"].contains("guarded_rollout"), "prefixed guard metrics missing");
    assert!(solo["gremlin"].contains("dropped_fault: "), "chaos flap dropped nothing");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Random casts from the palette (always plus the chaos neighbor):
    /// every tenant's bytes must survive co-scheduling on both executors.
    #[test]
    fn any_cast_is_byte_identical_solo_vs_co_scheduled(
        kinds in proptest::collection::vec(0u8..5, 2..4),
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let cast = || {
            let mut specs: Vec<TenantSpec> = kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| tenant(k, &format!("t{i}")))
                .collect();
            specs.push(chaos_neighbor("gremlin"));
            specs
        };

        set_jobs(1);
        let solo: BTreeMap<String, String> = cast()
            .into_iter()
            .map(|spec| {
                let name = spec.name.clone();
                let fp = fingerprints(vec![spec]).remove(&name).expect("solo run finished");
                (name, fp)
            })
            .collect();
        let co_seq = fingerprints(cast());
        set_jobs(4);
        let co_par = fingerprints(cast());
        std::env::remove_var("CAMPUSLAB_JOBS");

        prop_assert_eq!(co_seq.len(), solo.len(), "a tenant went missing co-scheduled");
        for (name, fp) in &solo {
            prop_assert_eq!(
                fp,
                co_seq.get(name).expect("tenant finished co-scheduled"),
                "{}: solo vs interleaved co-schedule diverged",
                name
            );
            prop_assert_eq!(
                fp,
                co_par.get(name).expect("tenant finished under JOBS=4"),
                "{}: solo vs parallel co-schedule diverged",
                name
            );
        }
    }
}
