//! The plaza service: admit tenants against the shared switch budget,
//! schedule admitted slices, drain the FIFO queue as grants free up.
//!
//! The scheduler has three executors and one contract: a tenant's bytes
//! never depend on which executor ran it.
//!
//! * **Interleaved** (one worker): all slices of an admission round
//!   advance in lockstep over a shared window grid — cooperative
//!   multiplexing of N experiments on one OS thread.
//! * **Parallel** (N workers): whole slices run on
//!   [`campuslab_netsim::par`] worker threads, each reproducing the same
//!   window grid privately.
//! * **Sharded**: either of the above with `CAMPUSLAB_SHARDS` set, which
//!   routes each window through the simulator's sharded engine.
//!
//! The contract holds because a slice's advance schedule is a pure
//! function of its own spec (see [`TenantSlice`]), and it is pinned by
//! the differential suite in `tests/isolation.rs` plus experiment E18's
//! golden replay.

use crate::tenant::{TenantOutcome, TenantSlice, TenantSpec};
use campuslab_control::PlazaObs;
use campuslab_dataplane::{AdmissionController, AdmissionDecision, SwitchModel};
use campuslab_netsim::par::{parallel_map_vec, worker_count};
use campuslab_netsim::{SimDuration, SimTime};

/// Plaza-wide knobs.
#[derive(Debug, Clone)]
pub struct PlazaConfig {
    /// The shared dataplane budget every tenant's demand is accounted
    /// against.
    pub switch: SwitchModel,
    /// The scheduling window: the interleaved executor advances every
    /// live slice to each successive multiple of this.
    pub window: SimDuration,
    /// Per-tenant settle time past its workload end (the slice deadline
    /// is `workload.duration + settle`).
    pub settle: SimDuration,
}

impl Default for PlazaConfig {
    fn default() -> Self {
        PlazaConfig {
            switch: SwitchModel::default(),
            window: SimDuration::from_millis(500),
            settle: SimDuration::from_secs(4),
        }
    }
}

/// One submission's audit-trail entry: who asked, what the arbiter said.
#[derive(Debug, Clone)]
pub struct TenantRecord {
    pub tenant: String,
    pub decision: AdmissionDecision,
}

/// Everything a plaza session produced.
pub struct PlazaReport {
    /// Finished tenant outcomes, in completion order (admission rounds in
    /// order; within a round, submission order).
    pub outcomes: Vec<TenantOutcome>,
    /// The admission audit trail, in submission order.
    pub records: Vec<TenantRecord>,
    /// Admission rounds the scheduler executed.
    pub rounds: u64,
    /// Service-level telemetry (admission counters, budget gauges, slice
    /// histogram).
    pub obs: PlazaObs,
}

impl PlazaReport {
    /// Look one tenant's outcome up by name.
    pub fn outcome(&self, tenant: &str) -> Option<&TenantOutcome> {
        self.outcomes.iter().find(|o| o.name == tenant)
    }

    /// The admission story as one line per submission.
    pub fn admission_log(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let verdict = match &r.decision {
                AdmissionDecision::Admitted { slots_used, tcam_used } => {
                    format!("admitted (pool now {slots_used} slots, {tcam_used} tcam)")
                }
                AdmissionDecision::Queued { position } => format!("queued at {position}"),
                AdmissionDecision::Rejected(e) => format!("rejected: {e}"),
            };
            out.push_str(&format!("{}: {}\n", r.tenant, verdict));
        }
        out
    }
}

/// Experimentation-as-a-Service over one shared campus testbed: submit
/// tenants, then [`Plaza::run`] every admitted experiment to completion,
/// draining the queue in strict FIFO order as budgets free up.
pub struct Plaza {
    cfg: PlazaConfig,
    admission: AdmissionController,
    obs: PlazaObs,
    records: Vec<TenantRecord>,
    /// Admitted specs not yet run, in admission order.
    ready: Vec<TenantSpec>,
    /// Queued specs, FIFO, mirroring the admission controller's queue.
    waiting: Vec<TenantSpec>,
}

impl Plaza {
    /// An empty plaza over `cfg.switch`'s budget.
    pub fn new(cfg: PlazaConfig) -> Self {
        let admission = AdmissionController::new(cfg.switch);
        Plaza {
            cfg,
            admission,
            obs: PlazaObs::new(),
            records: Vec::new(),
            ready: Vec::new(),
            waiting: Vec::new(),
        }
    }

    /// Submit one tenant for admission. The typed decision comes back
    /// immediately; admitted and queued tenants run on [`Plaza::run`],
    /// rejected ones are recorded and dropped. Tenant names must be
    /// unique — the name is the admission controller's release handle.
    pub fn submit(&mut self, spec: TenantSpec) -> AdmissionDecision {
        let demand = spec.demand(&self.cfg.switch);
        let decision = self.admission.submit(demand);
        self.records.push(TenantRecord { tenant: spec.name.clone(), decision: decision.clone() });
        match &decision {
            AdmissionDecision::Admitted { .. } => {
                self.obs.on_admitted();
                self.ready.push(spec);
            }
            AdmissionDecision::Queued { .. } => {
                self.obs.on_queued();
                self.waiting.push(spec);
            }
            AdmissionDecision::Rejected(_) => self.obs.on_rejected(),
        }
        self.set_budget_gauges();
        decision
    }

    /// Tenants currently waiting in the FIFO queue.
    pub fn queue_len(&self) -> usize {
        self.admission.queue_len()
    }

    /// Run every admitted tenant to completion, releasing each grant as
    /// its slice finishes and admitting queued tenants into the freed
    /// budget (strict FIFO) until nothing is left to run.
    pub fn run(mut self) -> PlazaReport {
        let mut outcomes = Vec::new();
        let mut rounds = 0u64;
        while !self.ready.is_empty() {
            rounds += 1;
            self.obs.on_round();
            let batch = std::mem::take(&mut self.ready);
            for outcome in run_batch(&self.cfg, batch) {
                self.obs.on_slice(
                    outcome.net.injected + outcome.net.delivered + outcome.net.dropped_total(),
                );
                self.obs.on_released();
                for newly in self.admission.release(&outcome.name) {
                    // The drained spec was parked in submission order, so
                    // the first waiting entry with the drained name is it.
                    let i = self
                        .waiting
                        .iter()
                        .position(|s| s.name == newly.tenant)
                        .expect("queued demand always has a waiting spec");
                    self.obs.on_admitted();
                    self.ready.push(self.waiting.remove(i));
                }
                outcomes.push(outcome);
            }
            self.set_budget_gauges();
        }
        PlazaReport { outcomes, records: self.records, rounds, obs: self.obs }
    }

    fn set_budget_gauges(&mut self) {
        self.obs.set_budget(
            self.admission.slots_used(),
            self.admission.tcam_used(),
            self.admission.admitted().len(),
        );
    }
}

/// Run one admission round's slices to completion. One worker (or one
/// slice) interleaves on the shared window grid; more workers run whole
/// slices in parallel over the identical grid. Outcomes come back in
/// batch order either way.
fn run_batch(cfg: &PlazaConfig, specs: Vec<TenantSpec>) -> Vec<TenantOutcome> {
    let workers = worker_count(specs.len());
    if workers <= 1 {
        let mut slices: Vec<TenantSlice> = specs
            .into_iter()
            .map(|s| TenantSlice::build(s, &cfg.switch, cfg.window, cfg.settle))
            .collect();
        let step = cfg.window.as_nanos().max(1);
        let mut round = 0u64;
        while slices.iter().any(|s| !s.is_done()) {
            round += 1;
            let cap = SimTime(step.saturating_mul(round));
            for s in slices.iter_mut() {
                s.advance(cap);
            }
        }
        slices.into_iter().map(TenantSlice::finish).collect()
    } else {
        let (switch, window, settle) = (cfg.switch, cfg.window, cfg.settle);
        parallel_map_vec(specs, workers, move |_, spec| {
            let mut slice = TenantSlice::build(spec, &switch, window, settle);
            slice.run_to_completion();
            slice.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tenants sized so the default switch (24576 TCAM) holds two:
    /// each reserves 10_000 TCAM entries on top of the 1-entry sentinel.
    fn heavy(name: &str) -> TenantSpec {
        let mut spec = TenantSpec::probe(name);
        spec.reserved_tcam = 10_000;
        spec
    }

    #[test]
    fn overflow_queues_then_drains_fifo_and_everyone_runs() {
        let mut plaza = Plaza::new(PlazaConfig::default());
        assert!(matches!(
            plaza.submit(heavy("alpha")),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(matches!(
            plaza.submit(heavy("bravo")),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(plaza.submit(heavy("charlie")), AdmissionDecision::Queued { position: 0 });
        assert_eq!(plaza.queue_len(), 1);

        let report = plaza.run();
        assert_eq!(report.rounds, 2, "queued tenant needs a second round");
        let names: Vec<&str> = report.outcomes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["alpha", "bravo", "charlie"]);
        assert!(report.outcomes.iter().all(|o| o.net.injected > 0));
        // Service telemetry tells the same story.
        assert_eq!(report.obs.admitted(), 3);
        assert_eq!(report.obs.queued(), 1);
        assert_eq!(report.obs.rejected(), 0);
        assert_eq!(report.obs.released(), 3);
        assert_eq!(report.obs.slices(), 3);
        assert_eq!(report.obs.tenants_active(), 0, "all grants released");
        let log = report.admission_log();
        assert!(log.contains("charlie: queued at 0"), "log:\n{log}");
    }

    #[test]
    fn infeasible_tenant_is_rejected_and_never_runs() {
        let mut plaza = Plaza::new(PlazaConfig::default());
        let mut monster = TenantSpec::probe("monster");
        monster.reserved_tcam = 1_000_000;
        assert!(matches!(plaza.submit(monster), AdmissionDecision::Rejected(_)));
        plaza.submit(TenantSpec::probe("ok"));
        let report = plaza.run();
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].name, "ok");
        assert_eq!(report.obs.rejected(), 1);
        assert!(report.admission_log().contains("monster: rejected"));
    }

    #[test]
    fn per_tenant_bytes_ignore_the_neighbor_count() {
        // The heart of the tenancy story, in miniature: "alpha" alone
        // and "alpha" next to two neighbors produce identical bytes.
        // (The full differential suite lives in tests/isolation.rs.)
        let solo = {
            let mut plaza = Plaza::new(PlazaConfig::default());
            plaza.submit(TenantSpec::probe("alpha"));
            plaza.run()
        };
        let crowded = {
            let mut plaza = Plaza::new(PlazaConfig::default());
            plaza.submit(TenantSpec::probe("alpha"));
            plaza.submit(TenantSpec::probe("bravo"));
            plaza.submit(TenantSpec::probe("charlie"));
            plaza.run()
        };
        let a = solo.outcome("alpha").unwrap().fingerprint();
        let b = crowded.outcome("alpha").unwrap().fingerprint();
        assert_eq!(a, b, "alpha's bytes changed when neighbors appeared");
    }
}
