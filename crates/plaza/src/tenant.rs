//! One tenant's experiment, packaged for the plaza: the spec that
//! describes it, the slice that runs it, and the outcome that comes back.
//!
//! Isolation is by construction: every tenant slice owns a private campus
//! simulation (its own [`Network`], traffic schedule, filter bank, hooks
//! and telemetry), built entirely from the tenant's [`TenantSpec`]. The
//! only resource tenants genuinely share is the dataplane budget, which
//! the plaza arbitrates up front through
//! [`campuslab_dataplane::AdmissionController`] — so nothing a neighbor
//! does (including a chaos campaign) can leak into another tenant's
//! bytes. The differential property suite in `tests/isolation.rs` pins
//! exactly that: solo and co-scheduled runs of the same spec are
//! byte-identical.
//!
//! Determinism across executors is a scheduling-grid argument: a slice is
//! always advanced along the same window grid (`window`, `2*window`, ...)
//! whether the plaza interleaves it with neighbors on one worker, runs it
//! on its own thread, or the simulator routes each window through the
//! sharded engine. Window/round counts are a per-slice function of the
//! spec alone, so they may appear in outcomes without breaking the
//! solo-vs-co-scheduled differential.

use campuslab_capture::{BorderTapHooks, PacketRecord};
use campuslab_control::{
    BankFilter, BankHandle, FastLoopStatsSnapshot, FrozenBank, FrozenController,
    MitigationController, MitigationControllerConfig, PlazaObs, RolloutConfig, RolloutEvent,
    RolloutGuard, RolloutStage, SloPolicy,
};
use campuslab_dataplane::{
    Action, FieldExtractor, PipelineProgram, SwitchModel, TableEntry, TenantDemand, TernaryMatch,
    FIELD_ORDER,
};
use campuslab_datastore::DataStore;
use campuslab_ml::DecisionTree;
use campuslab_netsim::{
    Campus, ChaosPlan, Commands, Dir, DropReason, FrozenNetwork, LinkId, NetStats, Network, NodeId,
    Packet, SimDuration, SimHooks, SimTime,
};
use campuslab_obs::Tracer;
use campuslab_testbed::{
    build_schedule, canary_hosts, FrozenGuardedHooks, GuardedHooks, RunObs, Scenario,
};
use std::net::Ipv4Addr;

/// What the tenant wants to run on its slice of the campus.
#[derive(Clone)]
pub enum TenantJob {
    /// Install the program in the switch up front and just measure the
    /// campus under it — the cheapest job, used by the plaza sweeps.
    SloProbe,
    /// A controller-placement road test: the window model watches the
    /// border tap and installs victim-scoped mitigations.
    Defend,
    /// A guarded rollout: candidates submitted at scheduled sim times
    /// climb shadow → canary → full under the tenant's own
    /// [`RolloutGuard`] ladder (telemetry prefixed with the tenant name).
    Guarded { submissions: Vec<(SimTime, PipelineProgram)> },
}

/// Everything the plaza needs to admit and run one tenant.
#[derive(Clone)]
pub struct TenantSpec {
    /// Unique tenant name: the admission handle, the metric prefix and
    /// the report key. Co-scheduled tenants must not share names.
    pub name: String,
    /// The tenant's private campus + workload + attack.
    pub scenario: Scenario,
    /// The tenant's base program (preinstalled for [`TenantJob::SloProbe`],
    /// the known-good / mitigation program otherwise).
    pub program: PipelineProgram,
    /// Window model for the Defend and Guarded jobs.
    pub window_model: Option<DecisionTree>,
    pub job: TenantJob,
    /// Optional chaos campaign applied to the tenant's own campus.
    pub chaos: Option<ChaosPlan>,
    /// Capture at the border and land the records in a per-tenant
    /// [`DataStore`] view.
    pub capture: bool,
    /// Extra TCAM entries reserved beyond the declared programs —
    /// headroom for mid-run installs, and the knob experiments turn to
    /// exercise queueing and rejection.
    pub reserved_tcam: usize,
}

impl TenantSpec {
    /// The cheapest useful tenant: [`Scenario::tenant_probe`] guarded by a
    /// one-entry sentinel program (drops TCP/UDP discard-port traffic the
    /// probe workload never sends, so it occupies exactly one stage slot
    /// without touching the tenant's bytes).
    pub fn probe(name: impl Into<String>) -> Self {
        let name = name.into();
        let program = discard_sentinel(&name);
        TenantSpec {
            name,
            scenario: Scenario::tenant_probe(),
            program,
            window_model: None,
            job: TenantJob::SloProbe,
            chaos: None,
            capture: false,
            reserved_tcam: 0,
        }
    }

    /// The tenant's up-front dataplane demand: every program it may ever
    /// install (base + scheduled rollout candidates) plus the reserved
    /// headroom, footprinted against `switch`.
    pub fn demand(&self, switch: &SwitchModel) -> TenantDemand {
        let mut programs: Vec<&PipelineProgram> = vec![&self.program];
        if let TenantJob::Guarded { submissions } = &self.job {
            programs.extend(submissions.iter().map(|(_, p)| p));
        }
        TenantDemand::for_programs(self.name.clone(), &programs, self.reserved_tcam, switch)
    }

    /// The tenant's metric-name prefix: the name lowercased with
    /// non-alphanumerics folded to `_`, plus a trailing `_` — a valid
    /// Prometheus name fragment that keeps co-scheduled guards' families
    /// disjoint in any merged dump.
    pub fn obs_prefix(&self) -> String {
        let mut p: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        p.push('_');
        p
    }
}

/// A one-entry program dropping TCP/UDP discard-port (9) traffic: a
/// deliberate no-op against every scenario this crate ships, costing one
/// stage slot and one TCAM entry.
fn discard_sentinel(name: &str) -> PipelineProgram {
    let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
    matches[2] = TernaryMatch::exact(9, 16); // FIELD_ORDER[2] = DstPort
    PipelineProgram::new(
        format!("{name}-sentinel"),
        vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.99 }],
    )
}

/// The job half of a slice's hook stack.
enum JobHooks {
    /// Nothing reacts online (SLO probe: the program is already in the
    /// bank).
    Idle,
    Defend(Box<MitigationController>),
    Guarded(Box<GuardedHooks>),
}

/// The slice's composed hooks: optional border monitor first (capture
/// must observe traffic before any reaction lands this event), then the
/// job.
struct SliceHooks {
    monitor: Option<BorderTapHooks>,
    job: JobHooks,
}

impl SimHooks for SliceHooks {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        if let Some(m) = &mut self.monitor {
            m.on_tap(now, link, dir, packet, cmds);
        }
        match &mut self.job {
            JobHooks::Idle => {}
            JobHooks::Defend(c) => c.on_tap(now, link, dir, packet, cmds),
            JobHooks::Guarded(g) => g.on_tap(now, link, dir, packet, cmds),
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
        if let Some(m) = &mut self.monitor {
            m.on_deliver(now, node, packet, latency, cmds);
        }
        match &mut self.job {
            JobHooks::Idle => {}
            JobHooks::Defend(c) => c.on_deliver(now, node, packet, latency, cmds),
            JobHooks::Guarded(g) => g.on_deliver(now, node, packet, latency, cmds),
        }
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {
        if let Some(m) = &mut self.monitor {
            m.on_drop(now, reason, packet, cmds);
        }
        match &mut self.job {
            JobHooks::Idle => {}
            JobHooks::Defend(c) => c.on_drop(now, reason, packet, cmds),
            JobHooks::Guarded(g) => g.on_drop(now, reason, packet, cmds),
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        if let Some(m) = &mut self.monitor {
            m.on_timer(now, token, cmds);
        }
        match &mut self.job {
            JobHooks::Idle => {}
            JobHooks::Defend(c) => c.on_timer(now, token, cmds),
            JobHooks::Guarded(g) => g.on_timer(now, token, cmds),
        }
    }
}

/// One tenant's running experiment: a private campus simulation advanced
/// window by window until its own deadline.
pub struct TenantSlice {
    name: String,
    net: Network,
    hooks: SliceHooks,
    handle: BankHandle,
    grant: TenantDemand,
    /// Hard stop: workload end + settle.
    deadline: SimTime,
    /// The furthest cap this slice has been advanced to.
    horizon: SimTime,
    /// The scheduling grid; `advance` is driven externally on multiples
    /// of this, `run_to_completion` reproduces the identical grid.
    window: SimDuration,
    rounds: u64,
    done: bool,
    victim: Option<Ipv4Addr>,
    attack_start: Option<SimTime>,
}

impl TenantSlice {
    /// Build the tenant's private campus, schedule, chaos, filter bank
    /// and job hooks. Nothing has run yet.
    pub fn build(
        spec: TenantSpec,
        switch: &SwitchModel,
        window: SimDuration,
        settle: SimDuration,
    ) -> Self {
        let grant = spec.demand(switch);
        let prefix = spec.obs_prefix();
        let campus = Campus::build(spec.scenario.campus.clone());
        let (mut schedule, victim, attack_start) = build_schedule(&campus, &spec.scenario);
        let cohort = canary_hosts(&campus, 0.25);
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        if let Some(plan) = &spec.chaos {
            plan.apply_to(&mut net);
        }
        let deadline = SimTime::ZERO + spec.scenario.workload.duration + settle;

        let extractor = FieldExtractor::new(spec.scenario.campus.campus_prefix());
        let (bank, handle) = BankFilter::new(extractor.clone());
        net.install_filter(campus.border, bank);

        let monitor = spec
            .capture
            .then(|| BorderTapHooks::new(campus.border_link, spec.scenario.monitor.clone()));

        let controller = |program: PipelineProgram, model: DecisionTree| {
            MitigationController::new(
                MitigationControllerConfig {
                    tap: campus.border_link,
                    placement: campuslab_control::Placement::Controller,
                    gate: 0.9,
                    window_ns: 1_000_000_000,
                    min_packets: 5,
                    program,
                    install: campuslab_control::InstallPolicy::default(),
                    tap_blackouts: Vec::new(),
                },
                Box::new(model),
                handle.clone(),
            )
        };
        let job = match &spec.job {
            TenantJob::SloProbe => {
                handle.add_program(None, spec.program.clone());
                JobHooks::Idle
            }
            TenantJob::Defend => {
                let model = spec.window_model.clone().expect("Defend job needs a window model");
                JobHooks::Defend(Box::new(controller(spec.program.clone(), model)))
            }
            TenantJob::Guarded { submissions } => {
                let mut guard = RolloutGuard::new(
                    RolloutConfig {
                        tap: campus.border_link,
                        extractor,
                        slo: SloPolicy::default(),
                        canary_hosts: cohort,
                        tap_blackouts: Vec::new(),
                        submissions: submissions.clone(),
                    },
                    spec.program.clone(),
                    handle.clone(),
                );
                guard.set_obs_prefix(prefix);
                let model = spec.window_model.clone().expect("Guarded job needs a window model");
                JobHooks::Guarded(Box::new(GuardedHooks::new(
                    guard,
                    controller(spec.program.clone(), model),
                )))
            }
        };

        TenantSlice {
            name: spec.name,
            net,
            hooks: SliceHooks { monitor, job },
            handle,
            grant,
            deadline,
            horizon: SimTime::ZERO,
            window,
            rounds: 0,
            done: false,
            victim,
            attack_start,
        }
    }

    /// The tenant's name (the plaza's release handle).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// No event at or before the deadline remains.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Process every event up to `min(until, deadline)` and re-check for
    /// completion. Calls that do not extend the slice's horizon — on a
    /// finished slice, or with a cap at/behind the last one — are no-ops,
    /// so a tenant's advance sequence is a function of its own spec —
    /// never of how long its neighbors keep the plaza's round loop
    /// spinning.
    pub fn advance(&mut self, until: SimTime) {
        let cap = if until < self.deadline { until } else { self.deadline };
        if self.done || cap <= self.horizon {
            return;
        }
        self.rounds += 1;
        self.horizon = cap;
        self.net.run(&mut self.hooks, Some(cap));
        self.done = match self.net.next_event_time() {
            None => true,
            Some(t) => t > self.deadline,
        };
    }

    /// Freeze this slice's dynamic state at a window barrier — the
    /// per-tenant leg of the PhoenixRun checkpoint (DESIGN.md §15). The
    /// frozen image captures only what evolved since [`TenantSlice::build`]
    /// (simulator, filter bank, job state machines, grid bookkeeping);
    /// restoring it onto a fresh slice built from the *same spec* resumes
    /// byte-identically. Capture slices are refused with a typed error:
    /// the border monitor's mid-run state (flow table, DNS extractor, RTT
    /// estimator, pcap writer) is deliberately outside the checkpoint
    /// contract.
    pub fn freeze(&mut self) -> Result<FrozenSlice, SliceFreezeError> {
        if self.hooks.monitor.is_some() {
            return Err(SliceFreezeError::CaptureMonitor);
        }
        let job = match &self.hooks.job {
            JobHooks::Idle => FrozenJob::Idle,
            JobHooks::Defend(c) => FrozenJob::Defend(Box::new(c.freeze())),
            JobHooks::Guarded(g) => FrozenJob::Guarded(Box::new(g.freeze())),
        };
        Ok(FrozenSlice {
            net: self.net.checkpoint(),
            bank: self.handle.freeze(),
            job,
            horizon: self.horizon,
            rounds: self.rounds,
            done: self.done,
        })
    }

    /// Apply a frozen image onto this freshly built slice. The slice must
    /// have been built from the same [`TenantSpec`] that produced the
    /// image; a job-shape mismatch (the image froze a different job kind)
    /// is refused with a typed error rather than silently misapplied.
    pub fn thaw_state(&mut self, frozen: FrozenSlice) -> Result<(), SliceFreezeError> {
        match (&mut self.hooks.job, frozen.job) {
            (JobHooks::Idle, FrozenJob::Idle) => {}
            (JobHooks::Defend(c), FrozenJob::Defend(f)) => c.thaw_state(*f),
            (JobHooks::Guarded(g), FrozenJob::Guarded(f)) => g.thaw_state(*f),
            _ => return Err(SliceFreezeError::JobMismatch),
        }
        self.net.restore(frozen.net);
        self.handle.thaw(frozen.bank);
        self.horizon = frozen.horizon;
        self.rounds = frozen.rounds;
        self.done = frozen.done;
        Ok(())
    }

    /// Drive the slice over its own window grid until done — byte-for-byte
    /// the schedule an interleaving plaza produces, minus the neighbors.
    pub fn run_to_completion(&mut self) {
        let step = self.window.as_nanos().max(1);
        while !self.done {
            let next = SimTime(step.saturating_mul(self.rounds + 1));
            self.advance(next);
        }
    }

    /// Tear the finished slice down into its outcome: job results, the
    /// per-tenant Observatory bundle (plaza section included), and the
    /// per-tenant datastore view when capture was on.
    pub fn finish(mut self) -> TenantOutcome {
        let end_ns = self.net.now().as_nanos();
        let mut tracer = Tracer::new();
        tracer.record(format!("tenant[{}]", self.name), 0, end_ns);

        let mut capture_obs = None;
        let mut store = None;
        if let Some(mut m) = self.hooks.monitor.take() {
            m.monitor.finish();
            let packets = m.monitor.take_packet_records();
            let flows = m.monitor.take_flow_records();
            let dns = m.monitor.take_dns_records();
            let mut ds = DataStore::new();
            ds.ingest_packet_batches(shard_by_second(&packets));
            ds.ingest_flows(flows);
            ds.ingest_dns(dns);
            capture_obs = Some(m.monitor.obs);
            store = Some(ds);
        }

        let mut events = Vec::new();
        let mut final_stage = None;
        let mut registry_len = 0;
        let mut mitigations = 0;
        let mut giveups = 0;
        let mut detector_obs = None;
        let mut controller_obs = None;
        let mut rollout_obs = None;
        match self.hooks.job {
            JobHooks::Idle => {}
            JobHooks::Defend(mut c) => {
                let (cobs, dobs) = c.take_obs();
                tracer.merge_from(&cobs.tracer);
                mitigations = c.events.len();
                giveups = c.giveups.len();
                controller_obs = Some(cobs);
                detector_obs = Some(dobs);
            }
            JobHooks::Guarded(mut g) => {
                let (cobs, dobs) = g.controller.take_obs();
                tracer.merge_from(&cobs.tracer);
                let robs = g.guard.take_obs();
                tracer.merge_from(&robs.tracer);
                mitigations = g.controller.events.len();
                giveups = g.controller.giveups.len();
                events = std::mem::take(&mut g.guard.events);
                final_stage = Some(g.guard.stage());
                registry_len = g.guard.registry().len();
                controller_obs = Some(cobs);
                detector_obs = Some(dobs);
                rollout_obs = Some(robs);
            }
        }

        let filter = self.handle.stats();
        let stats = self.net.stats;

        // The tenant-scoped plaza section carries only spec-derived
        // values: its own grant, its own slice, its own rounds — nothing
        // that depends on who else was in the plaza.
        let mut plaza = PlazaObs::new();
        plaza.on_admitted();
        plaza.set_budget(self.grant.stage_slots, self.grant.tcam_entries, 1);
        for _ in 0..self.rounds {
            plaza.on_round();
        }
        plaza.on_slice(stats.injected + stats.delivered + stats.dropped_total());

        TenantOutcome {
            name: self.name,
            filter,
            net: stats,
            rounds: self.rounds,
            events,
            final_stage,
            registry_len,
            mitigations,
            giveups,
            victim: self.victim,
            attack_start: self.attack_start,
            store,
            obs: RunObs {
                net: self.net.obs,
                capture: capture_obs,
                detector: detector_obs,
                controller: controller_obs,
                filter: Some(filter),
                tracer,
                rollout: rollout_obs,
                resolver: None,
                drift: None,
                plaza: Some(plaza),
            },
        }
    }
}

/// Why a slice could not be frozen or thawed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceFreezeError {
    /// The slice captures at the border: the monitor's mid-run state is
    /// deliberately not checkpointable (DESIGN.md §15), so capture
    /// tenants restart their run instead of resuming it.
    CaptureMonitor,
    /// The frozen image's job shape disagrees with the slice it is being
    /// applied to — the spec that built the slice is not the spec that
    /// produced the image.
    JobMismatch,
}

impl std::fmt::Display for SliceFreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceFreezeError::CaptureMonitor => {
                write!(f, "capture slices are not checkpointable (border monitor state)")
            }
            SliceFreezeError::JobMismatch => {
                write!(f, "frozen job shape does not match the slice's spec")
            }
        }
    }
}

impl std::error::Error for SliceFreezeError {}

/// The frozen job half of a [`FrozenSlice`].
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub enum FrozenJob {
    Idle,
    Defend(Box<FrozenController>),
    Guarded(Box<FrozenGuardedHooks>),
}

/// One tenant slice's dynamic state, frozen at a window barrier. Only
/// state that evolved since [`TenantSlice::build`] is carried; the static
/// half (topology, schedule, chaos plan, job wiring) is rebuilt from the
/// tenant's [`TenantSpec`] on the restore side.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenSlice {
    pub net: FrozenNetwork,
    pub bank: FrozenBank,
    pub job: FrozenJob,
    pub horizon: SimTime,
    pub rounds: u64,
    pub done: bool,
}

/// Split a capture into per-second batches, the unit the datastore's
/// parallel ingest shards over (capture order preserved within batches).
fn shard_by_second(packets: &[PacketRecord]) -> Vec<Vec<PacketRecord>> {
    let mut batches: Vec<Vec<PacketRecord>> = Vec::new();
    for p in packets {
        let sec = (p.ts_ns / 1_000_000_000) as usize;
        if batches.len() <= sec {
            batches.resize_with(sec + 1, Vec::new);
        }
        batches[sec].push(p.clone());
    }
    batches.retain(|b| !b.is_empty());
    batches
}

/// What one tenant's experiment measured, fully private to the tenant.
pub struct TenantOutcome {
    pub name: String,
    /// The tenant's own filter-bank truth accounting.
    pub filter: FastLoopStatsSnapshot,
    /// The tenant's own simulator counters.
    pub net: NetStats,
    /// Scheduler windows this slice consumed (a function of the spec
    /// alone — the grid is fixed, finished slices stop counting).
    pub rounds: u64,
    /// Guard decision log (Guarded job only).
    pub events: Vec<RolloutEvent>,
    /// Final rollout stage (Guarded job only).
    pub final_stage: Option<RolloutStage>,
    /// Known-good versions committed by run end (Guarded job only).
    pub registry_len: usize,
    /// Mitigations the controller landed (Defend/Guarded jobs).
    pub mitigations: usize,
    /// Install give-ups (Defend/Guarded jobs).
    pub giveups: usize,
    pub victim: Option<Ipv4Addr>,
    pub attack_start: Option<SimTime>,
    /// Per-tenant datastore view (capture tenants only).
    pub store: Option<DataStore>,
    /// Per-tenant Observatory bundle, plaza section included.
    pub obs: RunObs,
}

impl TenantOutcome {
    /// The guard decision log as one line per event.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{} {} {:?}\n", e.at, e.program, e.kind));
        }
        out
    }

    /// Every observable byte of this tenant's run, canonically rendered:
    /// summary scalars, the guard timeline, the datastore view's storage
    /// accounting, the full Prometheus dump and the trace. The isolation
    /// suite diffs this string solo vs co-scheduled.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== tenant {} ==\n", self.name));
        out.push_str(&format!("filter {:?}\n", self.filter));
        out.push_str(&format!("net {:?}\n", self.net));
        out.push_str(&format!("rounds {}\n", self.rounds));
        out.push_str(&format!(
            "stage {:?} registry {} mitigations {} giveups {}\n",
            self.final_stage, self.registry_len, self.mitigations, self.giveups
        ));
        out.push_str(&format!("victim {:?} attack_start {:?}\n", self.victim, self.attack_start));
        out.push_str(&self.timeline());
        if let Some(ds) = &self.store {
            out.push_str(&format!(
                "store {:?} packets {} flows {} dns {}\n",
                ds.storage(),
                ds.packet_count(),
                ds.flow_count(),
                ds.dns_count()
            ));
        }
        out.push_str("== prom ==\n");
        out.push_str(&self.obs.prom());
        out.push_str("== trace ==\n");
        out.push_str(&self.obs.trace_json());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_slice_runs_to_completion_and_fingerprints_deterministically() {
        let run = || {
            let spec = TenantSpec::probe("alpha");
            let mut slice = TenantSlice::build(
                spec,
                &SwitchModel::default(),
                SimDuration::from_millis(500),
                SimDuration::from_secs(4),
            );
            slice.run_to_completion();
            assert!(slice.is_done());
            slice.finish()
        };
        let a = run();
        let b = run();
        assert!(a.net.injected > 0, "probe injected nothing");
        assert!(a.rounds > 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // The sentinel program never touches the probe's traffic.
        assert_eq!(a.filter.dropped, 0, "sentinel dropped real packets");
        // The tenant's plaza section carries its own grant.
        let p = a.obs.plaza.as_ref().expect("plaza section");
        assert_eq!(p.admitted(), 1);
        assert_eq!(p.slots_used(), 1);
        assert_eq!(p.slices(), 1);
        assert_eq!(p.rounds(), a.rounds);
    }

    #[test]
    fn windowed_advance_matches_run_to_completion_grid() {
        // Drive one slice externally on the same grid run_to_completion
        // uses; both must land on identical bytes.
        let build = || {
            TenantSlice::build(
                TenantSpec::probe("grid"),
                &SwitchModel::default(),
                SimDuration::from_millis(500),
                SimDuration::from_secs(4),
            )
        };
        let mut inner = build();
        inner.run_to_completion();
        let mut outer = build();
        let step = 500_000_000u64;
        let mut round = 0u64;
        while !outer.is_done() {
            round += 1;
            outer.advance(SimTime(step * round));
            // Extra advances on a done slice are no-ops, like a plaza
            // round loop kept spinning by slower neighbors.
            outer.advance(SimTime(step * round));
        }
        assert_eq!(inner.finish().fingerprint(), outer.finish().fingerprint());
    }

    #[test]
    fn capture_tenant_lands_a_private_store_view() {
        let mut spec = TenantSpec::probe("cap");
        spec.capture = true;
        let mut slice = TenantSlice::build(
            spec,
            &SwitchModel::default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(4),
        );
        slice.run_to_completion();
        let outcome = slice.finish();
        let ds = outcome.store.as_ref().expect("capture tenant has a store view");
        assert!(ds.packet_count() > 0);
        assert!(outcome.obs.capture.is_some(), "capture obs section missing");
        assert!(outcome.obs.prom().contains("cap_observed_packets_total"));
    }

    #[test]
    fn demand_covers_base_program_submissions_and_headroom() {
        let sw = SwitchModel::default();
        let mut spec = TenantSpec::probe("d");
        spec.reserved_tcam = 4_095;
        // 1 sentinel entry + 4095 reserved = 4096 entries = 2 stages.
        let d = spec.demand(&sw);
        assert_eq!(d.tcam_entries, 4_096);
        assert_eq!(d.stage_slots, 2);
        spec.job = TenantJob::Guarded {
            submissions: vec![(SimTime::from_secs(1), discard_sentinel("extra"))],
        };
        assert_eq!(spec.demand(&sw).tcam_entries, 4_097);
    }

    /// A probe slice whose own campus takes a border-link flap mid-run —
    /// the bad neighbor the restored slice must not notice.
    fn chaos_neighbor_slice() -> TenantSlice {
        let mut spec = TenantSpec::probe("gremlin");
        let campus = Campus::build(spec.scenario.campus.clone());
        let mut plan = ChaosPlan::new();
        plan.link_flap(campus.border_link, SimTime::from_millis(600), SimTime::from_millis(1400));
        spec.chaos = Some(plan);
        TenantSlice::build(
            spec,
            &SwitchModel::default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(4),
        )
    }

    /// The plaza leg of the PhoenixRun contract: crash a tenant three
    /// windows in, carry its frozen image through JSON (the checkpoint
    /// payload encoding), restore it in a "new process" next to a
    /// chaos-running neighbor, and finish both interleaved on the shared
    /// grid. The resumed tenant's fingerprint must match its solo
    /// uninterrupted run byte for byte.
    #[test]
    fn frozen_slice_resumes_byte_identically_next_to_a_chaos_neighbor() {
        let build = || {
            TenantSlice::build(
                TenantSpec::probe("phx"),
                &SwitchModel::default(),
                SimDuration::from_millis(500),
                SimDuration::from_secs(4),
            )
        };
        let mut solo = build();
        solo.run_to_completion();
        let want = solo.finish().fingerprint();

        let step = 500_000_000u64;
        let mut victim = build();
        for r in 1..=3 {
            victim.advance(SimTime(step * r));
        }
        let image = serde_json::to_string(&victim.freeze().unwrap()).unwrap();
        drop(victim); // the "crash"

        let frozen: FrozenSlice = serde_json::from_str(&image).unwrap();
        let mut restored = build();
        restored.thaw_state(frozen).unwrap();
        let mut neighbor = chaos_neighbor_slice();
        let mut r = 3u64;
        while !restored.is_done() || !neighbor.is_done() {
            r += 1;
            neighbor.advance(SimTime(step * r));
            restored.advance(SimTime(step * r));
        }
        let got = restored.finish().fingerprint();
        assert_eq!(got, want);
        let n = neighbor.finish();
        assert!(n.net.dropped_fault > 0, "the neighbor's chaos flap dropped nothing");
    }

    #[test]
    fn capture_slices_refuse_to_freeze_with_a_typed_error() {
        let mut spec = TenantSpec::probe("cap-freeze");
        spec.capture = true;
        let mut slice = TenantSlice::build(
            spec,
            &SwitchModel::default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(4),
        );
        assert_eq!(slice.freeze().err(), Some(SliceFreezeError::CaptureMonitor));
    }

    #[test]
    fn job_shape_mismatch_is_refused_on_thaw() {
        use campuslab_ml::{Dataset, TreeConfig};
        let mut idle = TenantSlice::build(
            TenantSpec::probe("idle"),
            &SwitchModel::default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(4),
        );
        let image = idle.freeze().unwrap();
        let mut spec = TenantSpec::probe("defend");
        spec.job = TenantJob::Defend;
        spec.window_model = Some(DecisionTree::fit(
            &Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1], vec!["f".into()]),
            TreeConfig::shallow(1),
        ));
        let mut defend = TenantSlice::build(
            spec,
            &SwitchModel::default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(4),
        );
        assert_eq!(defend.thaw_state(image).err(), Some(SliceFreezeError::JobMismatch));
    }

    #[test]
    fn obs_prefix_is_a_sanitized_metric_fragment() {
        let mut spec = TenantSpec::probe("Team Rocket-7");
        assert_eq!(spec.obs_prefix(), "team_rocket_7_");
        spec.name = "ok".into();
        assert_eq!(spec.obs_prefix(), "ok_");
    }
}
