//! # campuslab-plaza
//!
//! TenantPlaza: multi-tenant Experimentation-as-a-Service on one shared
//! campus (experiment E18). The paper's democratization pitch is that a
//! campus can serve *many* researchers as a testbed at once; this crate
//! supplies the service layer that makes that safe:
//!
//! * [`service`] — the [`Plaza`]: a tenant registry and admission
//!   controller accounting every tenant's dataplane demand (stage slots +
//!   TCAM) against the shared Tofino-like budget, admitting, queueing
//!   (strict FIFO) or rejecting with typed decisions; plus the scheduler
//!   that multiplexes admitted slices — interleaved on one worker,
//!   parallel across workers, sharded under `CAMPUSLAB_SHARDS` — with
//!   byte-identical tenant outcomes on every executor.
//! * [`tenant`] — per-tenant namespacing through the existing layers:
//!   each [`TenantSpec`] builds a private campus slice (own simulator,
//!   traffic, chaos, filter bank), its guard telemetry prefixed with the
//!   tenant name, its capture landed in a per-tenant datastore view, and
//!   its whole run rendered into a [`TenantOutcome::fingerprint`] the
//!   isolation suite can diff solo vs co-scheduled.
//!
//! ```
//! use campuslab_plaza::{Plaza, PlazaConfig, TenantSpec};
//!
//! let mut plaza = Plaza::new(PlazaConfig::default());
//! plaza.submit(TenantSpec::probe("alice"));
//! plaza.submit(TenantSpec::probe("bob"));
//! let report = plaza.run();
//! assert_eq!(report.outcomes.len(), 2);
//! assert_eq!(report.obs.admitted(), 2);
//! ```

#![deny(rust_2018_idioms)]

pub mod service;
pub mod tenant;

pub use service::{Plaza, PlazaConfig, PlazaReport, TenantRecord};
pub use tenant::{
    FrozenJob, FrozenSlice, SliceFreezeError, TenantJob, TenantOutcome, TenantSlice, TenantSpec,
};
