//! Executor regression: the worker pool must drive every shard no matter
//! how the pool size relates to the shard count. With ceil-chunked ranges
//! a 3-worker pool over 4 shards spawned only 2 threads while the barrier
//! waited for 3 completions, deadlocking the first parallel window. This
//! binary pins `CAMPUSLAB_JOBS` (it owns the process, so the override
//! cannot race other suites) to the awkward widths and checks the sharded
//! run completes and matches the sequential engine.

use campuslab_netsim::prelude::*;
use std::net::Ipv4Addr;

/// A star of `n` switch subtrees hanging off a core over slow (5 ms)
/// trunks — every trunk is a cut link, so the partitioner can honour any
/// shard count up to `n + 1` — with one host per switch and a burst of
/// cross-subtree traffic.
fn star(n: usize) -> Network {
    let mut b = TopologyBuilder::new(23);
    let trunk = LinkSpec {
        rate_bps: 10_000_000_000,
        propagation: SimDuration::from_millis(5),
        queue: QueueDiscipline::DropTail { capacity_bytes: 40_000 },
    };
    let edge = LinkSpec {
        rate_bps: 1_000_000_000,
        propagation: SimDuration::from_micros(5),
        queue: QueueDiscipline::DropTail { capacity_bytes: 40_000 },
    };
    let core = b.switch("core");
    let mut hosts = Vec::with_capacity(n);
    for i in 0..n {
        let s = b.switch(format!("s{i}"));
        b.link(core, s, trunk);
        let addr = Ipv4Addr::new(10, 0, 0, i as u8 + 1);
        let h = b.host(format!("h{i}"), addr);
        b.attach_host(h, s, edge);
        hosts.push((h, addr));
    }
    let mut net = b.build();
    let mut builder = PacketBuilder::new();
    for k in 0..48 {
        let (src_node, src_ip) = hosts[k % n];
        let (_, dst_ip) = hosts[(k + 1) % n];
        let pkt = builder.udp_v4(
            src_ip,
            dst_ip,
            1000 + k as u16,
            2000,
            Payload::Synthetic(64),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(k as u64 * 10), src_node, pkt);
    }
    net
}

fn run(n: usize, shards: Option<usize>) -> (NetStats, u64) {
    let mut net = star(n);
    match shards {
        None => net.run_sequential(&mut NullHooks, None),
        Some(k) => net.run_sharded(&mut NullHooks, None, k),
    }
    (net.stats, net.now().as_nanos())
}

/// Shard counts that do not divide the pinned pool width must still spawn
/// a full pool (4 shards / 3 workers is the combination that deadlocked)
/// and reproduce the sequential bytes.
#[test]
fn pool_width_not_dividing_shard_count_completes() {
    std::env::set_var("CAMPUSLAB_JOBS", "3");
    let seq = run(8, None);
    for shards in [2usize, 4, 8] {
        assert_eq!(run(8, Some(shards)), seq, "diverged at {shards} shards / 3 workers");
    }
}
