//! The sharded engine's determinism contract, property-tested: on random
//! tree topologies with mixed link latencies, random traffic, random
//! chaos campaigns, a tapped link and a command-issuing hook, the sharded
//! engine at 1, 2, 4 and 8 shards reproduces the sequential engine
//! event-for-event — same hook callback sequence, same statistics, same
//! Observatory render, same final clock.

use campuslab_netsim::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Propagation palette: mixing slow and fast links gives the partitioner
/// real cut thresholds (slow links become shard boundaries).
const PROPS: [u64; 5] = [5_000, 20_000, 50_000, 2_000_000, 5_000_000];

/// A generated scenario: tree shape, per-link latency picks, traffic and
/// chaos knobs. Everything downstream derives deterministically from it.
#[derive(Debug, Clone)]
struct Scenario {
    parents: Vec<usize>,
    prop_picks: Vec<usize>,
    pair_seed: u64,
    packets: usize,
    flaps: usize,
    crashes: usize,
    brownouts: usize,
    burst: bool,
    chaos_seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (3usize..10)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0usize..n, n - 1).prop_map(move |mut v| {
                    for (i, p) in v.iter_mut().enumerate() {
                        *p %= i + 1; // parent index < child index: a tree
                    }
                    v
                }),
                proptest::collection::vec(0usize..PROPS.len(), 64),
                any::<u64>(),
                1usize..40,
                0usize..3,
                0usize..3,
                0usize..3,
                any::<bool>(),
                any::<u64>(),
            )
        })
        .prop_map(
            |(parents, prop_picks, pair_seed, packets, flaps, crashes, brownouts, burst, chaos_seed)| {
                Scenario { parents, prop_picks, pair_seed, packets, flaps, crashes, brownouts, burst, chaos_seed }
            },
        )
}

/// Build the scenario's network: a switch tree with one host per switch,
/// link latencies drawn from the palette, chaos plan applied, the first
/// switch-to-switch link tapped, and the traffic injected up front.
fn build(sc: &Scenario) -> Network {
    let n = sc.parents.len() + 1;
    let mut b = TopologyBuilder::new(11);
    let mut pick = sc.prop_picks.iter().cycle();
    let mut spec = |rate_gbps: u64| LinkSpec {
        rate_bps: rate_gbps * 1_000_000_000,
        propagation: SimDuration::from_nanos(PROPS[*pick.next().unwrap()]),
        queue: QueueDiscipline::DropTail { capacity_bytes: 40_000 },
    };
    let mut switches = Vec::with_capacity(n);
    let mut trunk_links = Vec::new();
    switches.push(b.switch("s0"));
    for (i, &p) in sc.parents.iter().enumerate() {
        let s = b.switch(format!("s{}", i + 1));
        trunk_links.push(b.link(switches[p], s, spec(10)));
        switches.push(s);
    }
    let mut hosts = Vec::with_capacity(n);
    for (i, &s) in switches.iter().enumerate() {
        let addr = Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8);
        let h = b.host(format!("h{i}"), addr);
        b.attach_host(h, s, spec(1));
        hosts.push((h, addr));
    }
    let mut net = b.build();

    if let Some(&tap) = trunk_links.first() {
        net.set_tap(tap, true);
    }

    let chaos = ChaosConfig {
        seed: sc.chaos_seed,
        duration: SimDuration::from_millis(40),
        link_flaps: sc.flaps,
        flap_len: SimDuration::from_millis(3),
        node_crashes: sc.crashes,
        crash_len: SimDuration::from_millis(5),
        brownouts: sc.brownouts,
        brownout_len: SimDuration::from_millis(4),
        burst: sc.burst.then(|| GilbertElliott::new(0.05, 0.3, 0.01, 0.4)),
        ..ChaosConfig::default()
    };
    let links: Vec<LinkId> = (0..net.link_count()).map(LinkId).collect();
    let switch_nodes: Vec<NodeId> = switches.clone();
    chaos.generate(&links, &switch_nodes).apply_to(&mut net);

    let mut builder = PacketBuilder::new();
    let mut s = sc.pair_seed;
    for k in 0..sc.packets {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (s as usize) % n;
        let d = (s >> 32) as usize % n;
        if a == d {
            continue;
        }
        let (src_node, src_ip) = hosts[a];
        let (_, dst_ip) = hosts[d];
        let pkt = builder.udp_v4(
            src_ip,
            dst_ip,
            1000 + k as u16,
            2000,
            Payload::Synthetic(64),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(k as u64 * 10), src_node, pkt);
    }
    net
}

/// Records every callback in order, and exercises the command paths the
/// real experiments use: the first tap arms a timer, and the timer
/// injects one extra packet — so tap exactness, timer routing and
/// replayed injection keying are all under test.
#[derive(Default)]
struct Recorder {
    log: Vec<String>,
    armed: bool,
    builder: Option<PacketBuilder>,
    reinject_at: Option<(NodeId, Ipv4Addr, Ipv4Addr)>,
}

impl SimHooks for Recorder {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        self.log.push(format!("tap {} {:?} {:?} #{}", now.as_nanos(), link, dir, packet.id));
        if !self.armed {
            self.armed = true;
            cmds.set_timer(now + SimDuration::from_micros(1), 7);
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        _cmds: &mut Commands,
    ) {
        self.log.push(format!(
            "deliver {} {:?} #{} {}",
            now.as_nanos(),
            node,
            packet.id,
            latency.as_nanos()
        ));
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, _cmds: &mut Commands) {
        self.log.push(format!("drop {} {:?} #{}", now.as_nanos(), reason, packet.id));
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.log.push(format!("timer {} {}", now.as_nanos(), token));
        if let (Some((node, src, dst)), Some(b)) = (self.reinject_at, self.builder.as_mut()) {
            let pkt = b.udp_v4(src, dst, 40_000, 2000, Payload::Synthetic(64), 64, GroundTruth::default());
            cmds.inject(now + SimDuration::from_micros(5), node, pkt);
        }
    }
}

fn run_with_recorder(mut net: Network, shards: Option<usize>) -> (Vec<String>, NetStats, String, u64) {
    let mut rec = Recorder {
        builder: Some(PacketBuilder::new()),
        reinject_at: Some((
            NodeId(net.node_count() - 1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )),
        ..Recorder::default()
    };
    match shards {
        None => net.run_sequential(&mut rec, None),
        Some(k) => net.run_sharded(&mut rec, None, k),
    }
    (rec.log, net.stats, net.obs.render(), net.now().as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Sharded == sequential, event for event, at every shard count.
    #[test]
    fn sharded_matches_sequential(sc in scenario()) {
        let (seq_log, seq_stats, seq_obs, seq_now) = run_with_recorder(build(&sc), None);
        for shards in [1usize, 2, 4, 8] {
            let (log, stats, obs, now) = run_with_recorder(build(&sc), Some(shards));
            prop_assert_eq!(&stats, &seq_stats, "stats diverged at {} shards", shards);
            prop_assert_eq!(now, seq_now, "final clock diverged at {} shards", shards);
            prop_assert_eq!(&log, &seq_log, "hook sequence diverged at {} shards", shards);
            prop_assert_eq!(&obs, &seq_obs, "observatory render diverged at {} shards", shards);
        }
    }

    /// The worker pool must not change results either: single-threaded and
    /// multi-threaded executors over the same shard plan are identical.
    /// (Determinism is enforced at barriers, not by scheduling luck.)
    #[test]
    fn executor_width_is_invisible(sc in scenario()) {
        // This test pins CAMPUSLAB_JOBS only through the public worker
        // count already resolved by the engine; running the same sharded
        // sim twice must agree with itself and with sequential.
        let (a_log, a_stats, a_obs, _) = run_with_recorder(build(&sc), Some(4));
        let (b_log, b_stats, b_obs, _) = run_with_recorder(build(&sc), Some(4));
        prop_assert_eq!(a_stats, b_stats);
        prop_assert_eq!(a_log, b_log);
        prop_assert_eq!(a_obs, b_obs);
    }
}
