//! Property tests for topology construction and routing: on random tree
//! topologies, every host can reach every other host, and delivery
//! accounting always balances.

use campuslab_netsim::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Build a random tree of switches (parent[i] < i) with one host hanging
/// off each switch. Returns the network plus the host list with addresses.
fn build_tree(parents: &[usize]) -> (Network, Vec<(NodeId, Ipv4Addr)>) {
    let n = parents.len() + 1;
    let mut b = TopologyBuilder::new(1);
    let mut switches = Vec::with_capacity(n);
    switches.push(b.switch("s0"));
    for (i, &p) in parents.iter().enumerate() {
        let s = b.switch(format!("s{}", i + 1));
        b.link(
            switches[p],
            s,
            LinkSpec::gbps(10, SimDuration::from_micros(10)),
        );
        switches.push(s);
    }
    let mut hosts = Vec::with_capacity(n);
    for (i, &s) in switches.iter().enumerate() {
        let addr = Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8);
        let h = b.host(format!("h{i}"), addr);
        b.attach_host(h, s, LinkSpec::gbps(1, SimDuration::from_micros(5)));
        hosts.push((h, addr));
    }
    (b.build(), hosts)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All-pairs-sampled reachability on random trees: BFS-installed routes
    /// deliver between arbitrary hosts.
    #[test]
    fn random_trees_route_all_sampled_pairs(
        // parents[i] is the parent of switch i+1: a random tree shape.
        shape in proptest::collection::vec(0usize..1, 1..2).prop_flat_map(|_| {
            (2usize..12).prop_flat_map(|n| {
                proptest::collection::vec(0usize..n, n - 1)
                    .prop_map(move |mut v| {
                        for (i, p) in v.iter_mut().enumerate() {
                            *p %= i + 1; // ensure parent index < child index
                        }
                        v
                    })
            })
        }),
        pair_seed in any::<u64>(),
    ) {
        let (mut net, hosts) = build_tree(&shape);
        let n = hosts.len();
        // Sample a handful of ordered pairs deterministically.
        let mut builder = PacketBuilder::new();
        let mut expected = 0u64;
        let mut s = pair_seed;
        for k in 0..(2 * n) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (s as usize) % n;
            let bdx = (s >> 32) as usize % n;
            if a == bdx {
                continue;
            }
            let (src_node, src_ip) = hosts[a];
            let (_, dst_ip) = hosts[bdx];
            let pkt = builder.udp_v4(
                src_ip, dst_ip, 1000 + k as u16, 2000, Payload::Synthetic(64), 64,
                GroundTruth::default(),
            );
            net.inject(SimTime::from_micros(k as u64 * 50), src_node, pkt);
            expected += 1;
        }
        let stats = net.run_to_completion();
        prop_assert_eq!(stats.injected, expected);
        prop_assert_eq!(stats.delivered, expected, "{:?}", stats);
        prop_assert_eq!(stats.dropped_total(), 0);
    }

    /// Conservation under random loss: injected = delivered + dropped.
    #[test]
    fn conservation_under_random_loss(drop_p in 0.0f64..0.9, n_packets in 1usize..200) {
        let (mut net, hosts) = build_tree(&[0, 0, 1]);
        // Lossy first switch-to-switch link.
        net.link_mut(LinkId(0)).fault.drop_probability = drop_p;
        let mut builder = PacketBuilder::new();
        let (src_node, src_ip) = hosts[0];
        let (_, dst_ip) = hosts[3];
        for k in 0..n_packets {
            let pkt = builder.udp_v4(
                src_ip, dst_ip, 1000, 2000, Payload::Synthetic(64), 64, GroundTruth::default(),
            );
            net.inject(SimTime::from_micros(k as u64 * 20), src_node, pkt);
        }
        let stats = net.run_to_completion();
        prop_assert_eq!(stats.injected, n_packets as u64);
        prop_assert_eq!(stats.delivered + stats.dropped_total(), n_packets as u64);
        if drop_p == 0.0 {
            prop_assert_eq!(stats.delivered, n_packets as u64);
        }
    }
}
