//! Integration tests for the zero-copy packet fast path.
//!
//! Two properties the fast path must keep forever:
//!
//! 1. A drop-free run never invokes `Packet::clone` — packets move by
//!    value (boxed) from injection to delivery, and the link hands a
//!    rejected packet *back* instead of forcing a speculative snapshot.
//! 2. Running the same seeded simulation on parallel workers produces
//!    byte-identical statistics and tap sequences: parallelism across
//!    runs must not perturb ordering within a run.

use campuslab_netsim::packet::clone_count;
use campuslab_netsim::par::parallel_map_with;
use campuslab_netsim::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

/// h1 -- s1 -- h2 with roomy drop-tail queues: nothing can drop.
fn line_net() -> (Network, NodeId) {
    let mut b = TopologyBuilder::new(42);
    let s1 = b.switch("s1");
    let h1 = b.host("h1", Ipv4Addr::new(10, 0, 0, 1));
    let h2 = b.host("h2", Ipv4Addr::new(10, 0, 0, 2));
    b.attach_host(h1, s1, LinkSpec::gbps(1, SimDuration::from_micros(10)));
    b.attach_host(h2, s1, LinkSpec::gbps(1, SimDuration::from_micros(10)));
    (b.build(), h1)
}

#[test]
fn drop_free_run_never_clones_a_packet() {
    let (mut net, h1) = line_net();
    let mut b = PacketBuilder::new();
    let before = clone_count();
    // 512-byte datagrams every 50 us on gigabit links: the queues never
    // build, so every packet takes the pure move path end to end.
    for i in 0..200u64 {
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            Payload::Bytes(vec![0u8; 512].into()),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(i * 50), h1, pkt);
    }
    let stats = net.run_to_completion();
    assert_eq!(stats.injected, 200);
    assert_eq!(stats.delivered, 200);
    assert_eq!(stats.dropped_total(), 0);
    assert_eq!(
        clone_count() - before,
        0,
        "the drop-free forwarding path invoked Packet::clone"
    );
}

#[test]
fn fault_and_chaos_drops_never_clone_a_packet() {
    // The drop path must stay zero-copy too: a packet rejected by the
    // fault model (outage, forced-down link, bursty loss) is handed back
    // and freed, never snapshotted.
    let (mut net, h1) = line_net();
    // Every flavor of chaos loss at once on h1's uplink: hard down for
    // the first half, certain loss after.
    let uplink = LinkId(0);
    net.link_mut(uplink).fault.drop_probability = 1.0;
    net.link_mut(uplink).fault.burst =
        Some(GilbertElliott::new(1.0, 0.0, 1.0, 1.0));
    let mut plan = ChaosPlan::new();
    plan.link_flap(uplink, SimTime::ZERO, SimTime::from_millis(5));
    plan.apply_to(&mut net);

    let mut b = PacketBuilder::new();
    let before = clone_count();
    for i in 0..200u64 {
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            Payload::Bytes(vec![0u8; 512].into()),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(i * 50), h1, pkt);
    }
    let stats = net.run_to_completion();
    assert_eq!(stats.injected, 200);
    assert_eq!(stats.delivered, 0);
    assert_eq!(stats.dropped_fault, 200);
    assert_eq!(
        clone_count() - before,
        0,
        "the fault/chaos drop path invoked Packet::clone"
    );
}

#[test]
fn payload_clone_is_refcounted_not_copied() {
    let payload = Payload::Bytes(vec![7u8; 1 << 20].into());
    // Cloning a megabyte payload must not copy it: Arc-backed bytes
    // share the same allocation.
    let clone = payload.clone();
    match (&payload, &clone) {
        (Payload::Bytes(a), Payload::Bytes(b)) => {
            assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()), "payload bytes were copied");
        }
        _ => panic!("clone changed payload variant"),
    }
}

/// One seeded campus run: cross-border traffic with the border tap on.
/// Returns everything an observer can see — final counters plus the
/// exact tap sequence.
fn seeded_campus_run() -> (NetStats, Vec<(u64, usize, u64, usize)>) {
    let campus = Campus::build(CampusConfig {
        dist_count: 2,
        access_per_dist: 2,
        hosts_per_access: 2,
        external_hosts: 4,
        ..CampusConfig::default()
    });
    let mut net = campus.net;
    net.set_tap(campus.border_link, true);

    struct TapLog {
        taps: Vec<(u64, usize, u64, usize)>,
    }
    impl SimHooks for TapLog {
        fn on_tap(
            &mut self,
            now: SimTime,
            link: LinkId,
            _dir: Dir,
            packet: &Packet,
            _cmds: &mut Commands,
        ) {
            self.taps.push((now.as_nanos(), link.0, packet.id, packet.wire_len()));
        }
    }

    let mut b = PacketBuilder::new();
    let hosts: Vec<(NodeId, Ipv4Addr)> = campus
        .hosts
        .iter()
        .map(|&id| {
            let IpAddr::V4(addr) = net.node(id).primary_address().expect("host address") else {
                panic!("expected v4 host");
            };
            (id, addr)
        })
        .collect();
    // Bursty traffic from every internal host to the external set, so
    // every packet crosses the tapped border link.
    for i in 0..400u64 {
        let (src_node, src_addr) = hosts[i as usize % hosts.len()];
        let dst = campus.config.external_addr(i as usize % campus.config.external_hosts);
        let pkt = b.udp_v4(
            src_addr,
            dst,
            (1024 + i % 1000) as u16,
            53,
            Payload::Bytes(vec![i as u8; 100 + (i as usize * 13) % 800].into()),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(i * 3), src_node, pkt);
    }
    let mut log = TapLog { taps: Vec::new() };
    net.run(&mut log, None);
    (net.stats, log.taps)
}

#[test]
fn parallel_runs_are_byte_identical() {
    // The same seeded simulation on two concurrent workers and once
    // sequentially: all three observations must agree exactly.
    let runs = parallel_map_with(&[(), ()], 2, |_, _| seeded_campus_run());
    let (seq_stats, seq_taps) = seeded_campus_run();
    assert!(!seq_taps.is_empty(), "tap log empty: traffic never crossed the border");
    for (stats, taps) in &runs {
        assert_eq!(*stats, seq_stats, "NetStats differ across identically-seeded runs");
        assert_eq!(*taps, seq_taps, "tap sequences differ across identically-seeded runs");
    }
}
