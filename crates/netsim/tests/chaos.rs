//! Integration tests for the ChaosLab fault-injection layer.
//!
//! Two properties the chaos layer must keep forever:
//!
//! 1. **Faults stay inside their windows.** With the probabilistic loss
//!    channels disabled, a chaos plan may only drop packets while one of
//!    its scheduled down windows is open — a `Fault` drop outside every
//!    link window, or a `NodeDown` drop outside every node window, means
//!    the schedule leaked.
//! 2. **Chaos is deterministic.** A full campaign — flaps, crashes,
//!    brownouts, Gilbert–Elliott bursty loss — replays byte-for-byte,
//!    sequential or fanned out over `parallel_map_with` workers.

use campuslab_netsim::par::parallel_map_with;
use campuslab_netsim::prelude::*;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

/// h1 -- s1 -- s2 -- h2 with roomy queues: congestion cannot drop, so
/// every drop is chaos's doing.
fn line_net() -> (Network, NodeId, NodeId, LinkId) {
    let mut b = TopologyBuilder::new(7);
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let mid = b.link(s1, s2, LinkSpec::gbps(1, SimDuration::from_micros(10)));
    let h1 = b.host("h1", Ipv4Addr::new(10, 0, 0, 1));
    let h2 = b.host("h2", Ipv4Addr::new(10, 0, 0, 2));
    b.attach_host(h1, s1, LinkSpec::gbps(1, SimDuration::from_micros(10)));
    b.attach_host(h2, s2, LinkSpec::gbps(1, SimDuration::from_micros(10)));
    (b.build(), h1, h2, mid)
}

/// Record every drop the run produced.
#[derive(Default)]
struct DropLog {
    drops: Vec<(u64, DropReason)>,
}
impl SimHooks for DropLog {
    fn on_drop(&mut self, now: SimTime, reason: DropReason, _packet: &Packet, _cmds: &mut Commands) {
        self.drops.push((now.as_nanos(), reason));
    }
}

fn inside_any(windows: &[Outage], t_ns: u64) -> bool {
    windows.iter().any(|w| w.contains(SimTime(t_ns)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random flap/crash schedules, probabilistic loss off: every drop is
    /// attributable to an open window, and conservation holds regardless.
    #[test]
    fn chaos_never_drops_outside_scheduled_windows(
        link_windows in proptest::collection::vec(
            (0u64..8_000_000, 1u64..2_000_000), 1..4),
        node_windows in proptest::collection::vec(
            (0u64..8_000_000, 1u64..2_000_000), 0..3),
        n_packets in 20usize..120,
    ) {
        let (mut net, h1, h2, mid) = line_net();
        let mut plan = ChaosPlan::new();
        for &(from, len) in &link_windows {
            plan.link_flap(mid, SimTime(from), SimTime(from + len));
        }
        for &(from, len) in &node_windows {
            plan.node_outage(h2, SimTime(from), SimTime(from + len));
        }
        plan.apply_to(&mut net);

        let mut b = PacketBuilder::new();
        for k in 0..n_packets {
            let pkt = b.udp_v4(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000,
                2000,
                Payload::Synthetic(64),
                64,
                GroundTruth::default(),
            );
            // Spread injections across the run so some land inside and
            // some outside the chaos windows.
            net.inject(SimTime(k as u64 * 90_000), h1, pkt);
        }
        let mut log = DropLog::default();
        net.run(&mut log, None);

        let link_down = plan.link_down_windows(mid);
        let node_down = plan.node_down_windows(h2);
        for &(t, reason) in &log.drops {
            match reason {
                DropReason::Fault => prop_assert!(
                    inside_any(&link_down, t),
                    "fault drop at {t}ns outside every scheduled link window {link_down:?}"
                ),
                DropReason::NodeDown => prop_assert!(
                    inside_any(&node_down, t),
                    "node-down drop at {t}ns outside every scheduled node window {node_down:?}"
                ),
                other => prop_assert!(false, "unexpected drop reason {other:?}"),
            }
        }
        let stats = net.stats;
        prop_assert_eq!(stats.injected, n_packets as u64);
        prop_assert_eq!(stats.delivered + stats.dropped_total(), n_packets as u64);
        prop_assert_eq!(stats.dropped_fault + stats.dropped_node_down, log.drops.len() as u64);
        // An empty schedule means chaos bit nothing.
        if link_down.is_empty() && node_down.is_empty() {
            prop_assert_eq!(stats.dropped_total(), 0);
        }
    }
}

/// One seeded campus run under a full chaos campaign. Returns everything
/// an observer can see: final counters, the exact tap sequence, and the
/// exact drop sequence.
#[allow(clippy::type_complexity)]
fn seeded_chaos_run() -> (NetStats, Vec<(u64, u64, usize)>, Vec<(u64, u8)>) {
    let campus = Campus::build(CampusConfig {
        dist_count: 2,
        access_per_dist: 2,
        hosts_per_access: 2,
        external_hosts: 4,
        ..CampusConfig::default()
    });
    let mut net = campus.net;
    net.set_tap(campus.border_link, true);

    // A bit of everything: flaps and brownouts in the interior, a host
    // crash, and bursty loss on the border.
    let links: Vec<LinkId> = (0..net.link_count())
        .map(LinkId)
        .filter(|l| *l != campus.border_link)
        .collect();
    let cfg = ChaosConfig {
        seed: 0xD15EA5E,
        duration: SimDuration::from_millis(2),
        link_flaps: 3,
        flap_len: SimDuration::from_micros(300),
        node_crashes: 2,
        crash_len: SimDuration::from_micros(400),
        brownouts: 2,
        brownout_len: SimDuration::from_micros(500),
        brownout_factor: 0.2,
        burst: Some(GilbertElliott::new(0.05, 0.3, 0.0, 0.6)),
    };
    let mut plan = cfg.generate(&links, &campus.hosts);
    plan.burst_loss(campus.border_link, GilbertElliott::new(0.03, 0.4, 0.0, 0.5));
    plan.apply_to(&mut net);

    struct Log {
        taps: Vec<(u64, u64, usize)>,
        drops: Vec<(u64, u8)>,
    }
    impl SimHooks for Log {
        fn on_tap(&mut self, now: SimTime, _link: LinkId, _dir: Dir, packet: &Packet, _cmds: &mut Commands) {
            self.taps.push((now.as_nanos(), packet.id, packet.wire_len()));
        }
        fn on_drop(&mut self, now: SimTime, reason: DropReason, _packet: &Packet, _cmds: &mut Commands) {
            self.drops.push((now.as_nanos(), reason as u8));
        }
    }

    let mut b = PacketBuilder::new();
    let hosts: Vec<(NodeId, Ipv4Addr)> = campus
        .hosts
        .iter()
        .map(|&id| {
            let IpAddr::V4(addr) = net.node(id).primary_address().expect("host address") else {
                panic!("expected v4 host");
            };
            (id, addr)
        })
        .collect();
    for i in 0..400u64 {
        let (src_node, src_addr) = hosts[i as usize % hosts.len()];
        let dst = campus.config.external_addr(i as usize % campus.config.external_hosts);
        let pkt = b.udp_v4(
            src_addr,
            dst,
            (1024 + i % 1000) as u16,
            53,
            Payload::Synthetic(100 + (i as usize * 13) % 800),
            64,
            GroundTruth::default(),
        );
        net.inject(SimTime::from_micros(i * 3), src_node, pkt);
    }
    let mut log = Log { taps: Vec::new(), drops: Vec::new() };
    net.run(&mut log, None);
    (net.stats, log.taps, log.drops)
}

#[test]
fn chaos_runs_are_byte_identical_sequential_vs_parallel() {
    let runs = parallel_map_with(&[(), ()], 2, |_, _| seeded_chaos_run());
    let (seq_stats, seq_taps, seq_drops) = seeded_chaos_run();
    assert!(!seq_taps.is_empty(), "tap log empty: traffic never crossed the border");
    assert!(!seq_drops.is_empty(), "drop log empty: the campaign injected no faults");
    assert!(seq_stats.dropped_fault > 0, "bursty loss never fired");
    for (stats, taps, drops) in &runs {
        assert_eq!(*stats, seq_stats, "NetStats differ across identically-seeded chaos runs");
        assert_eq!(*taps, seq_taps, "tap sequences differ across identically-seeded chaos runs");
        assert_eq!(*drops, seq_drops, "drop sequences differ across identically-seeded chaos runs");
    }
}
