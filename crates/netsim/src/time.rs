//! Simulation time: a monotonically increasing nanosecond clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time a given number of bytes occupies a link of `bits_per_sec`,
    /// never less than one nanosecond: a transmission that rounded to zero
    /// would let an event spawn a causal successor at its own timestamp,
    /// which the canonical event order (and with it the sharded engine's
    /// determinism contract) forbids.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0, "link rate must be positive");
        let bytes = bytes as u64;
        // Any realistic frame fits the u64 numerator; the wide path only
        // exists for pathological byte counts, so the per-packet cost is a
        // single u64 divide instead of a u128 one.
        if bytes <= u64::MAX / 8_000_000_000 {
            SimDuration((bytes * 8_000_000_000 / bits_per_sec).max(1))
        } else {
            let bits = bytes as u128 * 8;
            SimDuration((((bits * 1_000_000_000) / bits_per_sec as u128) as u64).max(1))
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime(1_000_000_000));
        assert_eq!(SimTime::from_millis(1500), SimTime(1_500_000_000));
        assert_eq!(SimDuration::from_micros(2), SimDuration(2_000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration(500_000_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let d = SimDuration::transmission(1500, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(12));
        // 1 byte at 8 bps = 1 second.
        assert_eq!(SimDuration::transmission(1, 8), SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .into_iter()
            .map(SimDuration::from_secs)
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
