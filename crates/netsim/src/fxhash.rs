//! A small multiply-xor hasher for flow steering and datastore indexes.
//!
//! The capture plane hashes short, fixed-shape keys (5-tuples, addresses,
//! ports) millions of times per simulated second. SipHash — the standard
//! library default — buys DoS resistance this simulator does not need and
//! pays for it on every lookup. This hasher is the Firefox/rustc "Fx"
//! construction: one wrapping multiply and a rotate-xor per word, which is
//! both several times faster on short keys and fully deterministic across
//! platforms and processes (SipHash's per-process random keys are exactly
//! what the deterministic-replay tests must avoid).

use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's 64-bit multiplicative-hash constant (2^64 / φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let key = (std::net::Ipv4Addr::new(10, 1, 2, 3), 443u16, 17u8);
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn distinct_keys_spread() {
        let mut seen = std::collections::HashSet::new();
        for port in 0u16..4096 {
            seen.insert(hash_of(&port) % 64);
        }
        // 4096 sequential ports must reach essentially every bucket of 64.
        assert!(seen.len() >= 60, "only {} buckets hit", seen.len());
    }

    #[test]
    fn unaligned_tails_differ() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }
}
