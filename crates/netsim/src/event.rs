//! The discrete-event core: a deterministic time-ordered event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue entry. Ordering is (time, sequence): two events at the
/// same instant pop in insertion order, which makes every run of the
/// simulator with the same inputs byte-for-byte reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at `time`. Scheduling in the past is a logic error;
    /// the event is clamped to `now` and would fire immediately, which keeps
    /// the clock monotone (and is asserted in debug builds).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn popped_times_are_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn all_events_come_back(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
