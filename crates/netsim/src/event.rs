//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! The future-event list is a hand-rolled 4-ary min-heap rather than
//! `std::collections::BinaryHeap`. Campus-scale runs stage an entire
//! second of injections before the loop starts, so the heap routinely
//! holds tens of thousands of entries; the 4-ary layout halves the tree
//! depth and keeps each sift's children within a cache line or two, which
//! directly attacks the dominant `pop` cost in simulator profiles.

use crate::time::SimTime;

/// Heap arity. Four children per node trades one extra comparison per
/// level for half the levels and fewer cache misses.
const ARITY: usize = 4;

/// An event queue entry. Ordering is (time, sequence): two events at the
/// same instant pop in insertion order, which makes every run of the
/// simulator with the same inputs byte-for-byte reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The min-heap sort key.
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time.0, self.seq)
    }
}

/// A deterministic future-event list.
///
/// Two lanes back the queue. Schedules whose (time, seq) key is not below
/// the tail of `staged` append there in O(1) — this absorbs the entire
/// pre-run injection schedule, which arrives sorted by time. Everything
/// else (events scheduled mid-run at `now + δ`, which lands before the
/// staged tail) goes to the heap, so the heap only ever holds the small
/// in-flight set instead of tens of thousands of future injections.
pub struct EventQueue<E> {
    entries: Vec<Entry<E>>,
    staged: std::collections::VecDeque<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            entries: Vec::new(),
            staged: std::collections::VecDeque::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at `time`. Scheduling in the past is a logic error;
    /// the event is clamped to `now` and would fire immediately, which keeps
    /// the clock monotone (and is asserted in debug builds).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        // Monotone schedules ride the sorted FIFO lane; out-of-order ones
        // fall back to the heap. Keys are unique (seq increments), so the
        // two lanes never tie.
        if self.staged.back().is_none_or(|b| b.key() <= entry.key()) {
            self.staged.push_back(entry);
        } else {
            self.entries.push(entry);
            self.sift_up(self.entries.len() - 1);
        }
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_heap = match (self.entries.first(), self.staged.front()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(h), Some(s)) => h.key() < s.key(),
        };
        let entry = if from_heap {
            let e = self.entries.swap_remove(0);
            if !self.entries.is_empty() {
                self.sift_down(0);
            }
            e
        } else {
            self.staged.pop_front().expect("staged front vanished")
        };
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.entries.first(), self.staged.front()) {
            (None, None) => None,
            (Some(h), None) => Some(h.time),
            (None, Some(s)) => Some(s.time),
            (Some(h), Some(s)) => Some(if h.key() < s.key() { h.time } else { s.time }),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.entries.len() + self.staged.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.staged.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.entries[i].key() < self.entries[parent].key() {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.entries.len();
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in first + 1..end {
                if self.entries[c].key() < self.entries[min].key() {
                    min = c;
                }
            }
            if self.entries[min].key() < self.entries[i].key() {
                self.entries.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn popped_times_are_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn all_events_come_back(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
