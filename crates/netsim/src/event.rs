//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! Every event carries an explicit [`EventKey`] assigned by the network at
//! schedule time. The key — `(time, class, lane, seq)` compared
//! lexicographically — is a *canonical* total order: it depends only on the
//! causal structure of the simulation (which transmission on which link
//! direction, which root stimulus), never on scheduler internals. That is
//! the property the sharded engine leans on: a run split across N shard
//! queues pops the union of events in exactly the order a single queue
//! would, so sequential and sharded execution stay byte-identical.
//!
//! Three lanes back the queue:
//!
//! * `staged` — a sorted FIFO that absorbs monotone schedules in O(1).
//!   The entire pre-run injection schedule (tens of thousands of events,
//!   arriving sorted by time) lands here and never touches a heap.
//! * a timing wheel — fixed slots of [`GRAN`] ns covering the next
//!   [`SLOTS`] × [`GRAN`] ns. Mid-run schedules are overwhelmingly
//!   `now + (transmission + propagation)` with sub-millisecond deltas, so
//!   they insert in O(1) here; a slot is sorted only when the clock
//!   reaches it. A hierarchical occupancy bitmap finds the next busy slot
//!   in a handful of word scans.
//! * `far` — a 4-ary min-heap holding the overflow: events beyond the
//!   wheel horizon (WAN propagation, coarse timers). It stays tiny, so
//!   its log factor is irrelevant.

use crate::time::SimTime;

/// Heap arity for the far lane. Four children per node trades one extra
/// comparison per level for half the levels and fewer cache misses.
const ARITY: usize = 4;

/// Timing-wheel slot granularity: 2^10 ns ≈ 1 µs per slot.
const GRAN_SHIFT: u32 = 10;

/// Timing-wheel slot count (4096 slots ≈ 4.2 ms horizon).
const SLOTS: usize = 4096;

/// Words in the occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// Event class of root stimuli (injections, timers, chaos). Root events
/// are numbered by one per-network counter in program order.
pub const CLASS_ROOT: u8 = 0;

/// Event class of transmit-complete events (one per transmission).
pub const CLASS_TX_DONE: u8 = 1;

/// Event class of arrival events (one per transmission, after the wire).
pub const CLASS_ARRIVE: u8 = 2;

/// The canonical identity and ordering of one scheduled event.
///
/// Keys order lexicographically by `(time, class, lane, seq)`:
///
/// * `time` — when the event fires.
/// * `class` — [`CLASS_ROOT`] < [`CLASS_TX_DONE`] < [`CLASS_ARRIVE`],
///   so at one instant stimuli precede transmitter completions precede
///   deliveries, mirroring the causal order a sequential run produces.
/// * `lane` — `0` for root events, `link * 2 + direction` for packet
///   events; ties across lanes break by lane id.
/// * `seq` — the per-lane ordinal: the root-event counter for class 0,
///   the link direction's transmission counter otherwise.
///
/// Two distinct events never compare equal: root seqs are unique within
/// class 0, and a direction's transmission counter is unique within each
/// (class, lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct EventKey {
    /// Fire time.
    pub time: SimTime,
    /// Event class (see [`CLASS_ROOT`] and friends).
    pub class: u8,
    /// Per-class lane id.
    pub lane: u32,
    /// Per-lane sequence number.
    pub seq: u64,
}

impl EventKey {
    /// Key for a root stimulus (inject / timer / chaos).
    #[inline]
    pub fn root(time: SimTime, seq: u64) -> Self {
        EventKey { time, class: CLASS_ROOT, lane: 0, seq }
    }

    /// Key for the transmit-complete of transmission `seq` on `lane`.
    #[inline]
    pub fn tx_done(time: SimTime, lane: u32, seq: u64) -> Self {
        EventKey { time, class: CLASS_TX_DONE, lane, seq }
    }

    /// Key for the arrival of transmission `seq` on `lane`.
    #[inline]
    pub fn arrive(time: SimTime, lane: u32, seq: u64) -> Self {
        EventKey { time, class: CLASS_ARRIVE, lane, seq }
    }
}

/// A deterministic future-event list ordered by [`EventKey`].
pub struct EventQueue<E> {
    staged: std::collections::VecDeque<(EventKey, E)>,
    /// Sorted run drained from wheel slots the clock has reached.
    ready: std::collections::VecDeque<(EventKey, E)>,
    slots: Vec<Vec<(EventKey, E)>>,
    occ: [u64; WORDS],
    wheel_len: usize,
    far: Vec<(EventKey, E)>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            staged: std::collections::VecDeque::new(),
            ready: std::collections::VecDeque::new(),
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            occ: [0; WORDS],
            wheel_len: 0,
            far: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Force the clock (used when handing a queue between engines).
    pub(crate) fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Schedule `event` under `key`. Scheduling in the past is a logic
    /// error; the event is clamped to `now` and fires immediately, which
    /// keeps the clock monotone (and is asserted in debug builds).
    pub fn schedule(&mut self, mut key: EventKey, event: E) {
        debug_assert!(key.time >= self.now, "event scheduled in the past");
        key.time = key.time.max(self.now);
        // Monotone schedules ride the sorted FIFO lane.
        if self.staged.back().is_none_or(|(back, _)| *back < key) {
            self.staged.push_back((key, event));
            return;
        }
        // Near-future events go to the wheel; the rest overflow to the
        // far heap. All pending events sit in [now, now + horizon), so
        // the circular slot mapping is unambiguous.
        let delta_slots = (key.time.0 >> GRAN_SHIFT) - (self.now.0 >> GRAN_SHIFT);
        if (delta_slots as usize) < SLOTS {
            let pos = ((key.time.0 >> GRAN_SHIFT) % SLOTS as u64) as usize;
            self.slots[pos].push((key, event));
            self.occ[pos / 64] |= 1u64 << (pos % 64);
            self.wheel_len += 1;
        } else {
            self.far.push((key, event));
            self.sift_up(self.far.len() - 1);
        }
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.settle();
        let best = [
            self.staged.front().map(|(k, _)| *k),
            self.ready.front().map(|(k, _)| *k),
            self.far.first().map(|(k, _)| *k),
        ]
        .into_iter()
        .flatten()
        .min()?;
        let entry = if self.staged.front().is_some_and(|(k, _)| *k == best) {
            self.staged.pop_front().expect("staged front vanished")
        } else if self.ready.front().is_some_and(|(k, _)| *k == best) {
            self.ready.pop_front().expect("ready front vanished")
        } else {
            let e = self.far.swap_remove(0);
            if !self.far.is_empty() {
                self.sift_down(0);
            }
            e
        };
        self.now = entry.0.time;
        Some(entry)
    }

    /// Key of the next event without popping it.
    pub fn peek_key(&mut self) -> Option<EventKey> {
        self.settle();
        [
            self.staged.front().map(|(k, _)| *k),
            self.ready.front().map(|(k, _)| *k),
            self.far.first().map(|(k, _)| *k),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.staged.len() + self.ready.len() + self.wheel_len + self.far.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return every pending event, sorted by key.
    pub fn drain_sorted(&mut self) -> Vec<(EventKey, E)> {
        let mut all: Vec<(EventKey, E)> = self.staged.drain(..).collect();
        all.extend(self.ready.drain(..));
        for pos in 0..SLOTS {
            all.append(&mut self.slots[pos]);
        }
        self.occ = [0; WORDS];
        self.wheel_len = 0;
        all.append(&mut self.far);
        all.sort_unstable_by_key(|e| e.0);
        all
    }

    /// Drain wheel slots until the earliest undrained slot starts after
    /// the best candidate from the other lanes (or the wheel is empty).
    /// Afterwards the true minimum is at one of the three lane fronts.
    fn settle(&mut self) {
        while self.wheel_len > 0 {
            let cand = [
                self.staged.front().map(|(k, _)| k.time.0),
                self.ready.front().map(|(k, _)| k.time.0),
                self.far.first().map(|(k, _)| k.time.0),
            ]
            .into_iter()
            .flatten()
            .min();
            let now_blk = self.now.0 >> GRAN_SHIFT;
            let cur = (now_blk % SLOTS as u64) as usize;
            let pos = self.next_occupied(cur).expect("wheel_len > 0 but no occupied slot");
            let dist = (pos + SLOTS - cur) % SLOTS;
            let slot_start = (now_blk + dist as u64) << GRAN_SHIFT;
            if cand.is_some_and(|c| c < slot_start) {
                return;
            }
            let mut drained = std::mem::take(&mut self.slots[pos]);
            self.occ[pos / 64] &= !(1u64 << (pos % 64));
            self.wheel_len -= drained.len();
            drained.sort_unstable_by_key(|e| e.0);
            self.merge_ready(drained);
        }
    }

    /// Append a sorted run into `ready`, merging when runs interleave
    /// (only possible when an event was scheduled into the slot currently
    /// being drained — rare).
    fn merge_ready(&mut self, drained: Vec<(EventKey, E)>) {
        if drained.is_empty() {
            return;
        }
        if self.ready.back().is_none_or(|(k, _)| *k < drained[0].0) {
            self.ready.extend(drained);
            return;
        }
        let mut old: Vec<(EventKey, E)> = self.ready.drain(..).collect();
        let mut new = drained.into_iter().peekable();
        let mut oldi = old.drain(..).peekable();
        while let (Some(a), Some(b)) = (oldi.peek(), new.peek()) {
            if a.0 < b.0 {
                let e = oldi.next().expect("peeked");
                self.ready.push_back(e);
            } else {
                let e = new.next().expect("peeked");
                self.ready.push_back(e);
            }
        }
        self.ready.extend(oldi);
        self.ready.extend(new);
    }

    /// Next occupied wheel slot at or circularly after `cur`.
    fn next_occupied(&self, cur: usize) -> Option<usize> {
        let (w0, b0) = (cur / 64, cur % 64);
        let masked = self.occ[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        for step in 1..=WORDS {
            let w = (w0 + step) % WORDS;
            let mut bits = self.occ[w];
            if w == w0 {
                bits &= !(!0u64 << b0);
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.far[i].0 < self.far[parent].0 {
                self.far.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.far.len();
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in first + 1..end {
                if self.far[c].0 < self.far[min].0 {
                    min = c;
                }
            }
            if self.far[min].0 < self.far[i].0 {
                self.far.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rk(t: u64, seq: u64) -> EventKey {
        EventKey::root(SimTime(t), seq)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(rk(30_000_000, 0), "c");
        q.schedule(rk(10_000_000, 1), "a");
        q.schedule(rk(20_000_000, 2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u64 {
            q.schedule(EventKey::root(t, i), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn class_orders_within_one_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.schedule(EventKey::arrive(t, 3, 0), "arrive");
        q.schedule(EventKey::root(t, 9), "root");
        q.schedule(EventKey::tx_done(t, 3, 0), "txdone");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["root", "txdone", "arrive"]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(rk(2_000_000_000, 0), ());
        q.schedule(rk(1_000_000_000, 1), ());
        let (k1, _) = q.pop().unwrap();
        assert_eq!(q.now(), k1.time);
        let (k2, _) = q.pop().unwrap();
        assert!(k2.time >= k1.time);
        assert_eq!(q.now(), k2.time);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(rk(0, 0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_overflows_the_wheel_and_comes_back_in_order() {
        let mut q = EventQueue::new();
        // Anchor the staged lane far out, then schedule out of order so
        // later entries exercise the heap (far) and the wheel (near).
        q.schedule(rk(20_000_000_000, 0), "staged");
        q.schedule(rk(10_000_000_000, 1), "far");
        q.schedule(rk(1_000, 2), "wheel-near");
        q.schedule(rk(4_000_000, 3), "wheel-mid");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["wheel-near", "wheel-mid", "far", "staged"]);
    }

    #[test]
    fn insertion_into_the_current_slot_still_sorts() {
        let mut q = EventQueue::new();
        q.schedule(rk(10_000_000, 0), 0u64);
        q.schedule(rk(500, 1), 1);
        let (k, e) = q.pop().unwrap();
        assert_eq!((k.time.0, e), (500, 1));
        // Same wheel slot as the popped event, scheduled after the slot
        // was already drained into `ready`.
        q.schedule(rk(600, 2), 2);
        q.schedule(rk(550, 3), 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [3, 2, 0]);
    }

    #[test]
    fn drain_sorted_returns_everything_in_key_order() {
        let mut q = EventQueue::new();
        q.schedule(rk(30, 0), 0u64);
        q.schedule(EventKey::tx_done(SimTime(10), 4, 7), 1);
        q.schedule(EventKey::arrive(SimTime(10), 4, 7), 2);
        q.schedule(rk(10_000_000_000, 3), 3);
        let drained = q.drain_sorted();
        assert!(q.is_empty());
        let keys: Vec<EventKey> = drained.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(drained.iter().map(|(_, e)| *e).collect::<Vec<u64>>(), [1, 2, 0, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn popped_times_are_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(EventKey::root(SimTime(t), i as u64), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((k, _)) = q.pop() {
                prop_assert!(k.time >= last);
                last = k.time;
            }
        }

        #[test]
        fn all_events_come_back(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(EventKey::root(SimTime(t), i as u64), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }

        #[test]
        fn pops_follow_canonical_key_order(
            specs in proptest::collection::vec(
                (0u64..20_000_000, 0u8..3, 0u32..8), 1..300)
        ) {
            let mut q = EventQueue::new();
            let mut keys = Vec::new();
            for (i, &(t, class, lane)) in specs.iter().enumerate() {
                let key = EventKey {
                    time: SimTime(t),
                    class,
                    lane: if class == CLASS_ROOT { 0 } else { lane },
                    seq: i as u64,
                };
                keys.push(key);
                q.schedule(key, i);
            }
            keys.sort_unstable();
            let popped: Vec<EventKey> =
                std::iter::from_fn(|| q.pop().map(|(k, _)| k)).collect();
            prop_assert_eq!(popped, keys);
        }
    }
}
