//! ChaosLab: campaign-driven fault injection.
//!
//! A [`ChaosPlan`] is a schedule of timed fault transitions — link flaps,
//! node crashes/recoveries, rate brownouts — plus static bursty-loss
//! assignments. [`ChaosPlan::apply_to`] compiles the schedule into the
//! network's ordinary event queue, so a chaos run replays byte-for-byte
//! under [`crate::par::parallel_map`] exactly like a fault-free one: every
//! transition occupies one deterministic `(time, seq)` slot and all
//! randomness flows through seeded generators.
//!
//! Determinism contract: two networks built identically, given the same
//! plan and the same injection schedule, produce identical statistics and
//! identical per-packet observable sequences, sequential or parallel.

use crate::link::{GilbertElliott, LinkId, Outage, RateWindow};
use crate::network::Network;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault transition applied at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ChaosAction {
    /// The link hard-fails: every offer is dropped until `LinkUp`.
    LinkDown(LinkId),
    /// The link recovers.
    LinkUp(LinkId),
    /// The node crashes: it swallows everything it would receive or
    /// originate until `NodeUp`.
    NodeDown(NodeId),
    /// The node recovers.
    NodeUp(NodeId),
    /// The link's rate degrades to `factor` × nominal.
    BrownoutStart { link: LinkId, factor: f64 },
    /// The link's rate recovers to nominal.
    BrownoutEnd(LinkId),
}

/// A campaign of scheduled fault events plus static loss-channel
/// assignments. Build one by hand or derive one from a [`ChaosConfig`].
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Timed transitions, not necessarily sorted until applied.
    pub events: Vec<(SimTime, ChaosAction)>,
    /// Gilbert–Elliott channels installed on links at apply time.
    pub burst: Vec<(LinkId, GilbertElliott)>,
    /// Scheduled degraded-rate windows installed on links at apply time.
    pub slowdowns: Vec<(LinkId, RateWindow)>,
}

impl ChaosPlan {
    /// An empty plan (no chaos).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.burst.is_empty() && self.slowdowns.is_empty()
    }

    /// Flap `link` down over `[from, until)`.
    pub fn link_flap(&mut self, link: LinkId, from: SimTime, until: SimTime) -> &mut Self {
        self.events.push((from, ChaosAction::LinkDown(link)));
        self.events.push((until, ChaosAction::LinkUp(link)));
        self
    }

    /// Crash `node` over `[from, until)`.
    pub fn node_outage(&mut self, node: NodeId, from: SimTime, until: SimTime) -> &mut Self {
        self.events.push((from, ChaosAction::NodeDown(node)));
        self.events.push((until, ChaosAction::NodeUp(node)));
        self
    }

    /// Degrade `link` to `factor` × nominal rate over `[from, until)`.
    pub fn brownout(
        &mut self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> &mut Self {
        self.events.push((from, ChaosAction::BrownoutStart { link, factor }));
        self.events.push((until, ChaosAction::BrownoutEnd(link)));
        self
    }

    /// Install a bursty loss channel on `link` for the whole run.
    pub fn burst_loss(&mut self, link: LinkId, model: GilbertElliott) -> &mut Self {
        self.burst.push((link, model));
        self
    }

    /// Compile the plan into `net`'s event queue and install static
    /// channels. Events are sorted by time (stable, so same-instant events
    /// keep their plan order) before scheduling, which pins each
    /// transition to a deterministic queue slot.
    pub fn apply_to(&self, net: &mut Network) {
        for (link, model) in &self.burst {
            net.link_mut(*link).fault.burst = Some(model.clone());
        }
        for (link, window) in &self.slowdowns {
            net.link_mut(*link).fault.slowdowns.push(*window);
        }
        let mut events = self.events.clone();
        events.sort_by_key(|(t, _)| *t);
        for (at, action) in events {
            net.schedule_chaos(at, action);
        }
    }

    /// The down windows this plan schedules for `link`, reconstructed by
    /// pairing `LinkDown`/`LinkUp` transitions. Used by tests to assert
    /// drops never happen outside scheduled windows.
    pub fn link_down_windows(&self, link: LinkId) -> Vec<Outage> {
        Self::paired_windows(&self.events, |a| match a {
            ChaosAction::LinkDown(l) if *l == link => Some(true),
            ChaosAction::LinkUp(l) if *l == link => Some(false),
            _ => None,
        })
    }

    /// The down windows this plan schedules for `node`.
    pub fn node_down_windows(&self, node: NodeId) -> Vec<Outage> {
        Self::paired_windows(&self.events, |a| match a {
            ChaosAction::NodeDown(n) if *n == node => Some(true),
            ChaosAction::NodeUp(n) if *n == node => Some(false),
            _ => None,
        })
    }

    fn paired_windows(
        events: &[(SimTime, ChaosAction)],
        classify: impl Fn(&ChaosAction) -> Option<bool>,
    ) -> Vec<Outage> {
        let mut sorted: Vec<(SimTime, bool)> = events
            .iter()
            .filter_map(|(t, a)| classify(a).map(|down| (*t, down)))
            .collect();
        sorted.sort_by_key(|(t, _)| *t);
        let mut windows = Vec::new();
        let mut open: Option<SimTime> = None;
        for (t, down) in sorted {
            match (down, open) {
                (true, None) => open = Some(t),
                (false, Some(from)) => {
                    windows.push(Outage { from, until: t });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(from) = open {
            windows.push(Outage { from, until: SimTime(u64::MAX) });
        }
        windows
    }
}

/// Knobs for deriving a seed-driven chaos campaign over a run of
/// `duration`. Counts are exact; placements and targets are drawn from a
/// `StdRng` seeded with `seed`, so the same config always yields the same
/// plan.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Length of the run the campaign covers.
    pub duration: SimDuration,
    /// Number of link flaps to scatter over the run.
    pub link_flaps: usize,
    /// Length of each link flap.
    pub flap_len: SimDuration,
    /// Number of node crash/recover cycles.
    pub node_crashes: usize,
    /// Length of each node outage.
    pub crash_len: SimDuration,
    /// Number of rate brownouts.
    pub brownouts: usize,
    /// Length of each brownout.
    pub brownout_len: SimDuration,
    /// Rate multiplier during a brownout, in (0.0, 1.0].
    pub brownout_factor: f64,
    /// Bursty loss channel installed on every candidate link, if any.
    pub burst: Option<GilbertElliott>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            duration: SimDuration::from_secs(8),
            link_flaps: 0,
            flap_len: SimDuration::from_millis(500),
            node_crashes: 0,
            crash_len: SimDuration::from_millis(800),
            brownouts: 0,
            brownout_len: SimDuration::from_millis(700),
            brownout_factor: 0.25,
            burst: None,
        }
    }
}

impl ChaosConfig {
    /// Derive a plan over the given candidate links and nodes. Targets and
    /// start times are sampled uniformly; windows are clipped to the run.
    pub fn generate(&self, links: &[LinkId], nodes: &[NodeId]) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = ChaosPlan::new();
        let total = self.duration.as_nanos();
        let window = |rng: &mut StdRng, len: SimDuration| {
            let len = len.as_nanos().min(total);
            let latest_start = total - len;
            let from = if latest_start == 0 { 0 } else { rng.gen_range(0..latest_start) };
            (SimTime(from), SimTime(from + len))
        };
        if !links.is_empty() {
            for _ in 0..self.link_flaps {
                let link = links[rng.gen_range(0..links.len())];
                let (from, until) = window(&mut rng, self.flap_len);
                plan.link_flap(link, from, until);
            }
            for _ in 0..self.brownouts {
                let link = links[rng.gen_range(0..links.len())];
                let (from, until) = window(&mut rng, self.brownout_len);
                plan.brownout(link, from, until, self.brownout_factor);
            }
            if let Some(model) = &self.burst {
                for link in links {
                    plan.burst_loss(*link, model.clone());
                }
            }
        }
        if !nodes.is_empty() {
            for _ in 0..self.node_crashes {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let (from, until) = window(&mut rng, self.crash_len);
                plan.node_outage(node, from, until);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_paired_windows() {
        let mut plan = ChaosPlan::new();
        plan.link_flap(LinkId(3), SimTime::from_secs(1), SimTime::from_secs(2))
            .node_outage(NodeId(7), SimTime::from_secs(4), SimTime::from_secs(5))
            .brownout(LinkId(3), SimTime::from_secs(6), SimTime::from_secs(7), 0.5);
        assert_eq!(
            plan.link_down_windows(LinkId(3)),
            vec![Outage { from: SimTime::from_secs(1), until: SimTime::from_secs(2) }]
        );
        assert_eq!(
            plan.node_down_windows(NodeId(7)),
            vec![Outage { from: SimTime::from_secs(4), until: SimTime::from_secs(5) }]
        );
        assert!(plan.link_down_windows(LinkId(0)).is_empty());
        assert!(!plan.is_empty());
        assert!(ChaosPlan::new().is_empty());
    }

    #[test]
    fn generate_is_deterministic_for_a_seed() {
        let cfg = ChaosConfig {
            link_flaps: 4,
            node_crashes: 2,
            brownouts: 3,
            burst: Some(GilbertElliott::new(0.01, 0.2, 0.0, 0.8)),
            ..ChaosConfig::default()
        };
        let links: Vec<LinkId> = (0..10).map(LinkId).collect();
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let a = cfg.generate(&links, &nodes);
        let b = cfg.generate(&links, &nodes);
        assert_eq!(a.events, b.events);
        assert_eq!(a.burst.len(), 10);
        assert_eq!(a.events.len(), 2 * (4 + 2 + 3));
    }

    #[test]
    fn generated_windows_stay_inside_the_run() {
        let cfg = ChaosConfig {
            link_flaps: 20,
            node_crashes: 20,
            duration: SimDuration::from_secs(3),
            ..ChaosConfig::default()
        };
        let links: Vec<LinkId> = (0..4).map(LinkId).collect();
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let plan = cfg.generate(&links, &nodes);
        let end = SimTime::from_secs(3);
        for (t, _) in &plan.events {
            assert!(*t <= end, "event at {t:?} beyond run end");
        }
    }

    #[test]
    fn unpaired_down_extends_to_infinity() {
        let mut plan = ChaosPlan::new();
        plan.events.push((SimTime::from_secs(2), ChaosAction::NodeDown(NodeId(1))));
        let w = plan.node_down_windows(NodeId(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].from, SimTime::from_secs(2));
        assert_eq!(w[0].until, SimTime(u64::MAX));
    }
}
