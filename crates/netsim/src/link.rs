//! Links: rate, propagation delay, a queue discipline per direction, and a
//! fault-injection model (random loss, scheduled outages).

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Identifies a link in the network. Links are full-duplex; each direction
/// has its own transmitter and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct LinkId(pub usize);

/// Direction of travel on a link: `AtoB` goes from endpoint `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dir {
    AtoB,
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }

    /// Index into two-element per-direction arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::AtoB => 0,
            Dir::BtoA => 1,
        }
    }
}

/// Queue discipline configuration for one link direction.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QueueDiscipline {
    /// Tail-drop once the queue holds `capacity_bytes`.
    DropTail { capacity_bytes: usize },
    /// Random Early Detection over an EWMA of queue occupancy.
    Red {
        capacity_bytes: usize,
        min_thresh_bytes: usize,
        max_thresh_bytes: usize,
        /// Drop probability at `max_thresh` (0.0..=1.0).
        max_p: f64,
    },
}

impl QueueDiscipline {
    /// A drop-tail queue sized for `ms` milliseconds of buffering at `rate`.
    pub fn drop_tail_for(rate_bps: u64, ms: u64) -> Self {
        let capacity_bytes = ((rate_bps as u128 * ms as u128) / 8000) as usize;
        QueueDiscipline::DropTail { capacity_bytes: capacity_bytes.max(3000) }
    }
}

/// EWMA weight for RED's average queue estimate.
const RED_WEIGHT: f64 = 0.05;

/// One direction's queue plus all per-direction randomized state.
///
/// The RNG and the live burst channel are *per direction* rather than
/// per network: a direction's random stream then depends only on the
/// network seed and the (link, direction) lane, never on how offers on
/// unrelated links interleave. That independence is what lets the sharded
/// engine hand each direction to its owning shard and still reproduce the
/// sequential run bit-for-bit.
#[derive(Debug)]
struct DirQueue {
    discipline: QueueDiscipline,
    packets: std::collections::VecDeque<(Box<Packet>, SimTime)>,
    bytes: usize,
    avg_bytes: f64,
    /// Transmitter busy until this instant.
    busy_until: SimTime,
    /// This direction's private random stream (loss, RED).
    rng: StdRng,
    /// Live Gilbert–Elliott channel state, synced from the installed
    /// `FaultModel::burst` template on first use / parameter change.
    burst: Option<GilbertElliott>,
    /// Transmissions started in this direction; numbers the canonical
    /// (tx_done, arrive) event pair of each transmission.
    tx_seq: u64,
}

impl DirQueue {
    fn new(discipline: QueueDiscipline) -> Self {
        DirQueue {
            discipline,
            packets: std::collections::VecDeque::new(),
            bytes: 0,
            avg_bytes: 0.0,
            busy_until: SimTime::ZERO,
            rng: rand::SeedableRng::seed_from_u64(0),
            burst: None,
            tx_seq: 0,
        }
    }

    /// Decide admission and enqueue; a rejected packet is handed back to
    /// the caller rather than cloned up front, which keeps the admit path
    /// copy-free.
    fn enqueue(&mut self, pkt: Box<Packet>, now: SimTime) -> Result<(), Box<Packet>> {
        let len = pkt.wire_len();
        let admitted = match self.discipline {
            QueueDiscipline::DropTail { capacity_bytes } => self.bytes + len <= capacity_bytes,
            QueueDiscipline::Red {
                capacity_bytes,
                min_thresh_bytes,
                max_thresh_bytes,
                max_p,
            } => {
                self.avg_bytes =
                    self.avg_bytes * (1.0 - RED_WEIGHT) + (self.bytes as f64) * RED_WEIGHT;
                if self.bytes + len > capacity_bytes {
                    false
                } else if self.avg_bytes <= min_thresh_bytes as f64 {
                    true
                } else if self.avg_bytes >= max_thresh_bytes as f64 {
                    false
                } else {
                    let frac = (self.avg_bytes - min_thresh_bytes as f64)
                        / (max_thresh_bytes - min_thresh_bytes).max(1) as f64;
                    self.rng.gen::<f64>() >= frac * max_p
                }
            }
        };
        if admitted {
            self.bytes += len;
            self.packets.push_back((pkt, now));
            Ok(())
        } else {
            Err(pkt)
        }
    }

    fn dequeue(&mut self) -> Option<(Box<Packet>, SimTime)> {
        let (pkt, t) = self.packets.pop_front()?;
        self.bytes -= pkt.wire_len();
        Some((pkt, t))
    }
}

/// Scheduled outage window during which a link drops everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Outage {
    pub from: SimTime,
    pub until: SimTime,
}

impl Outage {
    /// True when `now` falls inside this window.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// A window during which a link's effective rate is degraded — a
/// "brownout" (failing optics, a duplex mismatch, an overloaded
/// middlebox). Packets still flow, just slower.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RateWindow {
    pub from: SimTime,
    pub until: SimTime,
    /// Multiplier on the nominal link rate, in (0.0, 1.0].
    pub factor: f64,
}

/// Two-state Gilbert–Elliott bursty loss: the link alternates between a
/// good state (near-lossless) and a bad state (heavy loss), with per-packet
/// transition probabilities. Real flapping links lose packets in bursts,
/// which stresses detectors very differently from independent loss.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GilbertElliott {
    /// P(good → bad) evaluated per packet.
    pub p_enter_bad: f64,
    /// P(bad → good) evaluated per packet.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Build a model starting in the good state.
    pub fn new(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad, in_bad: false }
    }

    /// Long-run fraction of time spent in the bad state.
    pub fn bad_state_fraction(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom == 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Expected long-run loss rate.
    pub fn mean_loss(&self) -> f64 {
        let bad = self.bad_state_fraction();
        bad * self.loss_bad + (1.0 - bad) * self.loss_good
    }

    /// Advance the channel state one packet and decide whether it is lost.
    pub fn should_drop(&mut self, rng: &mut StdRng) -> bool {
        if self.in_bad {
            if rng.gen::<f64>() < self.p_exit_bad {
                self.in_bad = false;
            }
        } else if rng.gen::<f64>() < self.p_enter_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.loss_bad } else { self.loss_good };
        p > 0.0 && rng.gen::<f64>() < p
    }

    /// Whether the channel is currently in its bad state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// True when `other` has identical transition/loss parameters (state
    /// excluded) — the check a live per-direction channel uses to decide
    /// whether its installed template changed underneath it.
    fn same_params(&self, other: &GilbertElliott) -> bool {
        self.p_enter_bad == other.p_enter_bad
            && self.p_exit_bad == other.p_exit_bad
            && self.loss_good == other.loss_good
            && self.loss_bad == other.loss_bad
    }
}

/// Random fault behaviour of a link.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultModel {
    /// Independent per-packet loss probability.
    pub drop_probability: f64,
    /// Scheduled hard outages.
    pub outages: Vec<Outage>,
    /// Optional bursty (Gilbert–Elliott) loss channel, evaluated per offer.
    pub burst: Option<GilbertElliott>,
    /// Scheduled degraded-rate windows.
    pub slowdowns: Vec<RateWindow>,
    /// Chaos-driven hard-down toggle (flipped by `ChaosAction::LinkDown`
    /// / `LinkUp` events riding the simulation event queue).
    pub forced_down: bool,
    /// Chaos-driven rate multiplier (`BrownoutStart`/`BrownoutEnd`); 1.0
    /// means healthy.
    pub rate_factor: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            drop_probability: 0.0,
            outages: Vec::new(),
            burst: None,
            slowdowns: Vec::new(),
            forced_down: false,
            rate_factor: 1.0,
        }
    }
}

impl FaultModel {
    /// True when the link is hard-down at `now` (scheduled outage or a
    /// chaos `LinkDown` in effect).
    pub fn is_down(&self, now: SimTime) -> bool {
        self.forced_down || self.outages.iter().any(|o| o.contains(now))
    }

    /// Combined drop decision for one offered packet, drawing randomness
    /// from the offering direction's private stream. The drop-free fast
    /// path pays only a handful of flag compares here.
    fn should_drop(&self, now: SimTime, q: &mut DirQueue) -> bool {
        if self.forced_down || (!self.outages.is_empty() && self.is_down(now)) {
            return true;
        }
        // Sync the direction's live burst channel with the installed
        // template: install / removal / parameter change each reset the
        // live state to the template's.
        match (&self.burst, &mut q.burst) {
            (None, live) => {
                if live.is_some() {
                    *live = None;
                }
            }
            (Some(t), Some(live)) if live.same_params(t) => {}
            (Some(t), live) => *live = Some(t.clone()),
        }
        if let Some(burst) = q.burst.as_mut() {
            if burst.should_drop(&mut q.rng) {
                return true;
            }
        }
        self.drop_probability > 0.0 && q.rng.gen::<f64>() < self.drop_probability
    }

    /// Effective rate multiplier at `now`: the chaos factor combined with
    /// any scheduled slowdown windows covering this instant.
    pub fn rate_factor_at(&self, now: SimTime) -> f64 {
        let mut f = self.rate_factor;
        for w in &self.slowdowns {
            if now >= w.from && now < w.until {
                f *= w.factor;
            }
        }
        f
    }
}

/// Per-direction transmit statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DirStats {
    pub tx_packets: u64,
    pub tx_bytes: u64,
    pub dropped_queue: u64,
    pub dropped_fault: u64,
    /// Cumulative time the transmitter spent sending, for utilization.
    pub busy: SimDuration,
    /// Cumulative queueing delay experienced by transmitted packets.
    pub queue_delay: SimDuration,
}

impl DirStats {
    /// Transmitter utilization over an observation window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / window.as_secs_f64()
    }

    /// Mean queueing delay per transmitted packet.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.tx_packets == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.queue_delay.as_nanos() / self.tx_packets)
    }
}

/// A full-duplex point-to-point link.
#[derive(Debug)]
pub struct Link {
    pub id: LinkId,
    pub a: crate::node::NodeId,
    pub b: crate::node::NodeId,
    pub rate_bps: u64,
    pub propagation: SimDuration,
    pub fault: FaultModel,
    queues: [DirQueue; 2],
    pub stats: [DirStats; 2],
}

/// What happened when a packet was offered to a link.
///
/// Drop outcomes hand the rejected packet back to the caller, so observers
/// (drop hooks) can inspect it without the forwarding path ever cloning a
/// packet speculatively.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// Transmission begins now; the packet pops out after `tx + propagation`.
    StartedTransmit,
    /// Transmitter busy; packet queued.
    Queued,
    /// Dropped by the queue discipline; the packet is returned.
    DroppedQueue(Box<Packet>),
    /// Dropped by the fault model (random loss or outage); the packet is
    /// returned.
    DroppedFault(Box<Packet>),
}

impl Link {
    /// Create a link with the same queue discipline in both directions.
    pub fn new(
        id: LinkId,
        a: crate::node::NodeId,
        b: crate::node::NodeId,
        rate_bps: u64,
        propagation: SimDuration,
        discipline: QueueDiscipline,
    ) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        Link {
            id,
            a,
            b,
            rate_bps,
            propagation,
            fault: FaultModel::default(),
            queues: [DirQueue::new(discipline), DirQueue::new(discipline)],
            stats: [DirStats::default(), DirStats::default()],
        }
    }

    /// The node a packet travelling in `dir` arrives at.
    pub fn dst_node(&self, dir: Dir) -> crate::node::NodeId {
        match dir {
            Dir::AtoB => self.b,
            Dir::BtoA => self.a,
        }
    }

    /// The direction that carries traffic from `from` across this link.
    pub fn dir_from(&self, from: crate::node::NodeId) -> Dir {
        if from == self.a {
            Dir::AtoB
        } else {
            debug_assert_eq!(from, self.b, "node not an endpoint of this link");
            Dir::BtoA
        }
    }

    /// Offer a packet for transmission in `dir` at `now`, drawing any
    /// randomness (loss, RED) from that direction's private stream.
    ///
    /// Returns what happened; when `StartedTransmit` is returned the caller
    /// must schedule `tx_done` at `now + serialization` and delivery at
    /// `now + serialization + propagation`.
    pub fn offer(&mut self, dir: Dir, pkt: Box<Packet>, now: SimTime) -> Offer {
        let q = &mut self.queues[dir.index()];
        if self.fault.should_drop(now, q) {
            self.stats[dir.index()].dropped_fault += 1;
            return Offer::DroppedFault(pkt);
        }
        if q.busy_until <= now && q.packets.is_empty() {
            // Idle transmitter: the packet goes straight to the wire.
            q.bytes += pkt.wire_len();
            q.packets.push_back((pkt, now));
            Offer::StartedTransmit
        } else {
            match q.enqueue(pkt, now) {
                Ok(()) => Offer::Queued,
                Err(pkt) => {
                    self.stats[dir.index()].dropped_queue += 1;
                    Offer::DroppedQueue(pkt)
                }
            }
        }
    }

    /// Begin transmitting the head-of-line packet at `now`, returning the
    /// packet, its serialization time, total one-way latency, and this
    /// transmission's per-direction ordinal (the canonical event `seq`).
    /// The caller schedules the corresponding `tx_done` and delivery
    /// events.
    pub fn start_transmit(
        &mut self,
        dir: Dir,
        now: SimTime,
    ) -> Option<(Box<Packet>, SimDuration, SimDuration, u64)> {
        let rate = self.effective_rate_bps(now);
        let q = &mut self.queues[dir.index()];
        let (pkt, enqueued_at) = q.dequeue()?;
        let tx = SimDuration::transmission(pkt.wire_len(), rate);
        q.busy_until = now + tx;
        let seq = q.tx_seq;
        q.tx_seq += 1;
        let s = &mut self.stats[dir.index()];
        s.tx_packets += 1;
        s.tx_bytes += pkt.wire_len() as u64;
        s.busy += tx;
        s.queue_delay += now - enqueued_at;
        Some((pkt, tx, tx + self.propagation, seq))
    }

    /// The rate the transmitter runs at right now, after brownouts. The
    /// healthy path is a single float compare.
    pub fn effective_rate_bps(&self, now: SimTime) -> u64 {
        if self.fault.rate_factor >= 1.0 && self.fault.slowdowns.is_empty() {
            return self.rate_bps;
        }
        let f = self.fault.rate_factor_at(now).clamp(0.0, 1.0);
        ((self.rate_bps as f64 * f) as u64).max(1)
    }

    /// True when packets are waiting in `dir`.
    pub fn has_backlog(&self, dir: Dir) -> bool {
        !self.queues[dir.index()].packets.is_empty()
    }

    /// Bytes currently queued in `dir`.
    pub fn queued_bytes(&self, dir: Dir) -> usize {
        self.queues[dir.index()].bytes
    }

    /// Seed both directions' random streams from the owning network's
    /// seed. The stream depends only on `(network seed, link id,
    /// direction)`, so any engine that replays the same offers in the same
    /// per-direction order reproduces the same losses.
    pub(crate) fn reseed_dirs(&mut self, network_seed: u64) {
        for dir in [Dir::AtoB, Dir::BtoA] {
            let lane = (self.id.0 as u64) * 2 + dir.index() as u64;
            let seed = network_seed ^ (lane + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            self.queues[dir.index()].rng = rand::SeedableRng::seed_from_u64(seed);
        }
    }

    /// True when neither direction holds or is transmitting a packet —
    /// the state in which the link can be split across shards.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.queues.iter().all(|q| q.packets.is_empty())
    }

    /// A structural copy for a shard: same configuration, fault model,
    /// per-direction RNG/burst/tx state and stats, but empty packet
    /// queues. Only valid on a quiescent link (asserted).
    pub(crate) fn shard_clone(&self) -> Link {
        assert!(self.is_quiescent(), "cannot split a link with packets in flight");
        let clone_dir = |q: &DirQueue| DirQueue {
            discipline: q.discipline,
            packets: std::collections::VecDeque::new(),
            bytes: 0,
            avg_bytes: q.avg_bytes,
            busy_until: q.busy_until,
            rng: q.rng.clone(),
            burst: q.burst.clone(),
            tx_seq: q.tx_seq,
        };
        Link {
            id: self.id,
            a: self.a,
            b: self.b,
            rate_bps: self.rate_bps,
            propagation: self.propagation,
            fault: self.fault.clone(),
            queues: [clone_dir(&self.queues[0]), clone_dir(&self.queues[1])],
            stats: self.stats,
        }
    }

    /// Take direction `dir`'s live state (queue, RNG, burst, tx counter,
    /// stats) from `other`, the shard copy that owned that direction.
    pub(crate) fn adopt_dir(&mut self, dir: Dir, other: &mut Link) {
        debug_assert_eq!(self.id, other.id);
        let i = dir.index();
        self.queues[i] = std::mem::replace(&mut other.queues[i], DirQueue::new(self.queues[i].discipline));
        self.stats[i] = other.stats[i];
    }

    /// Capture every bit of this link's dynamic state (fault model, both
    /// direction queues with their private RNG streams, stats) for a
    /// checkpoint. Queued packets are cloned; the link is unchanged.
    pub fn freeze(&self) -> FrozenLink {
        FrozenLink {
            fault: self.fault.clone(),
            stats: self.stats,
            dirs: [self.queues[0].freeze(), self.queues[1].freeze()],
        }
    }

    /// Restore dynamic state captured by [`Link::freeze`] onto this link,
    /// which must have been rebuilt with the same static topology.
    pub fn thaw(&mut self, frozen: FrozenLink) {
        self.fault = frozen.fault;
        self.stats = frozen.stats;
        let [d0, d1] = frozen.dirs;
        self.queues[0].thaw(d0);
        self.queues[1].thaw(d1);
    }
}

/// Serializable snapshot of one direction's queue: discipline, queued
/// packets with their enqueue stamps, RED average, transmitter horizon,
/// the exact RNG stream position, live burst-channel state, and the
/// transmission sequence counter.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrozenDirQueue {
    pub discipline: QueueDiscipline,
    pub packets: Vec<(Packet, SimTime)>,
    pub bytes: usize,
    pub avg_bytes: f64,
    pub busy_until: SimTime,
    pub rng: [u64; 4],
    pub burst: Option<GilbertElliott>,
    pub tx_seq: u64,
}

/// Serializable snapshot of a link's full dynamic state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrozenLink {
    pub fault: FaultModel,
    pub stats: [DirStats; 2],
    pub dirs: [FrozenDirQueue; 2],
}

impl DirQueue {
    fn freeze(&self) -> FrozenDirQueue {
        FrozenDirQueue {
            discipline: self.discipline,
            packets: self.packets.iter().map(|(p, t)| ((**p).clone(), *t)).collect(),
            bytes: self.bytes,
            avg_bytes: self.avg_bytes,
            busy_until: self.busy_until,
            rng: self.rng.state(),
            burst: self.burst.clone(),
            tx_seq: self.tx_seq,
        }
    }

    fn thaw(&mut self, f: FrozenDirQueue) {
        self.discipline = f.discipline;
        self.packets = f.packets.into_iter().map(|(p, t)| (Box::new(p), t)).collect();
        self.bytes = f.bytes;
        self.avg_bytes = f.avg_bytes;
        self.busy_until = f.busy_until;
        self.rng = StdRng::from_state(f.rng);
        self.burst = f.burst;
        self.tx_seq = f.tx_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{GroundTruth, PacketBuilder, Payload};
    use std::net::Ipv4Addr;

    fn pkt(bytes: usize) -> Packet {
        let mut b = PacketBuilder::new();
        b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Payload::Synthetic(bytes),
            64,
            GroundTruth::default(),
        )
    }

    fn link(rate: u64, cap: usize) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            rate,
            SimDuration::from_micros(10),
            QueueDiscipline::DropTail { capacity_bytes: cap },
        )
    }

    #[test]
    fn idle_link_starts_transmit_immediately() {
        let mut l = link(1_000_000_000, 100_000);
        assert_eq!(
            l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO),
            Offer::StartedTransmit
        );
        let (p, tx, total, seq) = l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        assert_eq!(seq, 0);
        // 958 + 42 header bytes = 1000 bytes at 1 Gbps = 8 us.
        assert_eq!(p.wire_len(), 1000);
        assert_eq!(tx, SimDuration::from_micros(8));
        assert_eq!(total, SimDuration::from_micros(18));
    }

    #[test]
    fn busy_link_queues_then_drops_when_full() {
        let mut l = link(1_000_000, 2000);
        assert_eq!(
            l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO),
            Offer::StartedTransmit
        );
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // Transmitter busy for 8ms: the next offers queue until capacity.
        assert_eq!(l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(1)), Offer::Queued);
        assert_eq!(l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(2)), Offer::Queued);
        let rejected = Box::new(pkt(958));
        let rejected_id = rejected.id;
        match l.offer(Dir::AtoB, rejected, SimTime(3)) {
            Offer::DroppedQueue(p) => assert_eq!(p.id, rejected_id),
            other => panic!("expected queue drop, got {other:?}"),
        }
        assert_eq!(l.stats[0].dropped_queue, 1);
        assert!(l.has_backlog(Dir::AtoB));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link(1_000_000, 2000);
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // Reverse direction is still idle.
        assert_eq!(
            l.offer(Dir::BtoA, Box::new(pkt(100)), SimTime(1)),
            Offer::StartedTransmit
        );
    }

    #[test]
    fn fault_drops_and_outages() {
        let mut l = link(1_000_000_000, 100_000);
        l.fault.drop_probability = 1.0;
        assert!(matches!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime::ZERO),
            Offer::DroppedFault(_)
        ));
        l.fault.drop_probability = 0.0;
        l.fault.outages.push(Outage {
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        });
        assert!(l.fault.is_down(SimTime::from_secs(15)));
        assert!(matches!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime::from_secs(15)),
            Offer::DroppedFault(_)
        ));
        assert!(!l.fault.is_down(SimTime::from_secs(20)));
        assert_eq!(l.stats[0].dropped_fault, 2);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1_000_000,
            SimDuration::ZERO,
            QueueDiscipline::Red {
                capacity_bytes: 1_000_000,
                min_thresh_bytes: 2_000,
                max_thresh_bytes: 20_000,
                max_p: 1.0,
            },
        );
        // Saturate the transmitter, then flood the queue.
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        let mut dropped = 0;
        let mut queued = 0;
        for i in 0..200 {
            match l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(i)) {
                Offer::Queued => queued += 1,
                Offer::DroppedQueue(_) => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        // RED must drop some but not all packets once the average climbs.
        assert!(dropped > 0, "RED never dropped");
        assert!(queued > 0, "RED dropped everything");
    }

    #[test]
    fn utilization_and_queue_delay_accounting() {
        let mut l = link(8_000_000, 1_000_000); // 1 byte per microsecond
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO);
        // Second packet waits 1000 us for the first to serialize.
        let busy_until = SimTime::from_micros(1000);
        let (_, _, _, seq) = l.start_transmit(Dir::AtoB, busy_until).unwrap();
        assert_eq!(seq, 1);
        let s = &l.stats[0];
        assert_eq!(s.tx_packets, 2);
        assert_eq!(s.tx_bytes, 2000);
        assert_eq!(s.queue_delay, SimDuration::from_micros(1000));
        assert_eq!(s.mean_queue_delay(), SimDuration::from_micros(500));
        assert!((s.utilization(SimDuration::from_micros(2000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drop_tail_sizing_helper() {
        // 10 ms at 1 Gbps = 1.25 MB.
        match QueueDiscipline::drop_tail_for(1_000_000_000, 10) {
            QueueDiscipline::DropTail { capacity_bytes } => {
                assert_eq!(capacity_bytes, 1_250_000)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        let mut l = link(1_000_000_000, 1_000_000);
        // Sticky bad state with certain loss; near-lossless good state.
        l.fault.burst = Some(GilbertElliott::new(0.02, 0.2, 0.0, 1.0));
        let mut outcomes = Vec::new();
        for i in 0..2000u64 {
            match l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime(i)) {
                Offer::DroppedFault(_) => outcomes.push(true),
                _ => {
                    outcomes.push(false);
                    l.start_transmit(Dir::AtoB, SimTime(i)).unwrap();
                }
            }
        }
        let losses = outcomes.iter().filter(|&&d| d).count();
        let expected = l.fault.burst.as_ref().unwrap().mean_loss();
        let observed = losses as f64 / outcomes.len() as f64;
        assert!((observed - expected).abs() < 0.05, "loss rate {observed} vs {expected}");
        // Burstiness: consecutive losses are far likelier than independent
        // loss at the same mean would produce.
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let loss_rate = observed;
        let independent_pairs = (outcomes.len() - 1) as f64 * loss_rate * loss_rate;
        assert!(
            pairs as f64 > 2.0 * independent_pairs,
            "losses not bursty: {pairs} pairs vs {independent_pairs:.1} expected if independent"
        );
    }

    #[test]
    fn brownout_slows_transmission() {
        let mut l = link(1_000_000_000, 1_000_000);
        l.fault.rate_factor = 0.1;
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO);
        let (_, tx, _, _) = l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // 1000 bytes at 100 Mbps (10% of 1 Gbps) = 80 us.
        assert_eq!(tx, SimDuration::from_micros(80));
        l.fault.rate_factor = 1.0;
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::from_secs(1));
        let (_, tx, _, _) = l.start_transmit(Dir::AtoB, SimTime::from_secs(1)).unwrap();
        assert_eq!(tx, SimDuration::from_micros(8));
    }

    #[test]
    fn scheduled_slowdown_window_only_applies_inside() {
        let mut l = link(1_000_000_000, 1_000_000);
        l.fault.slowdowns.push(RateWindow {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            factor: 0.5,
        });
        assert_eq!(l.effective_rate_bps(SimTime::ZERO), 1_000_000_000);
        assert_eq!(l.effective_rate_bps(SimTime::from_secs(1)), 500_000_000);
        assert_eq!(l.effective_rate_bps(SimTime::from_secs(2)), 1_000_000_000);
    }

    #[test]
    fn forced_down_drops_everything_until_cleared() {
        let mut l = link(1_000_000_000, 1_000_000);
        l.fault.forced_down = true;
        assert!(l.fault.is_down(SimTime::ZERO));
        assert!(matches!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime::ZERO),
            Offer::DroppedFault(_)
        ));
        l.fault.forced_down = false;
        assert_eq!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime(1)),
            Offer::StartedTransmit
        );
    }

    #[test]
    fn dir_helpers() {
        let l = link(1, 1);
        assert_eq!(l.dir_from(NodeId(0)), Dir::AtoB);
        assert_eq!(l.dir_from(NodeId(1)), Dir::BtoA);
        assert_eq!(l.dst_node(Dir::AtoB), NodeId(1));
        assert_eq!(l.dst_node(Dir::BtoA), NodeId(0));
        assert_eq!(Dir::AtoB.flip(), Dir::BtoA);
    }
}
