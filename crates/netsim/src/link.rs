//! Links: rate, propagation delay, a queue discipline per direction, and a
//! fault-injection model (random loss, scheduled outages).

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Identifies a link in the network. Links are full-duplex; each direction
/// has its own transmitter and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Direction of travel on a link: `AtoB` goes from endpoint `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    AtoB,
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }

    /// Index into two-element per-direction arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::AtoB => 0,
            Dir::BtoA => 1,
        }
    }
}

/// Queue discipline configuration for one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Tail-drop once the queue holds `capacity_bytes`.
    DropTail { capacity_bytes: usize },
    /// Random Early Detection over an EWMA of queue occupancy.
    Red {
        capacity_bytes: usize,
        min_thresh_bytes: usize,
        max_thresh_bytes: usize,
        /// Drop probability at `max_thresh` (0.0..=1.0).
        max_p: f64,
    },
}

impl QueueDiscipline {
    /// A drop-tail queue sized for `ms` milliseconds of buffering at `rate`.
    pub fn drop_tail_for(rate_bps: u64, ms: u64) -> Self {
        let capacity_bytes = ((rate_bps as u128 * ms as u128) / 8000) as usize;
        QueueDiscipline::DropTail { capacity_bytes: capacity_bytes.max(3000) }
    }
}

/// EWMA weight for RED's average queue estimate.
const RED_WEIGHT: f64 = 0.05;

/// One direction's queue.
#[derive(Debug)]
struct DirQueue {
    discipline: QueueDiscipline,
    packets: std::collections::VecDeque<(Box<Packet>, SimTime)>,
    bytes: usize,
    avg_bytes: f64,
    /// Transmitter busy until this instant.
    busy_until: SimTime,
}

impl DirQueue {
    fn new(discipline: QueueDiscipline) -> Self {
        DirQueue {
            discipline,
            packets: std::collections::VecDeque::new(),
            bytes: 0,
            avg_bytes: 0.0,
            busy_until: SimTime::ZERO,
        }
    }

    /// Decide admission and enqueue; a rejected packet is handed back to
    /// the caller rather than cloned up front, which keeps the admit path
    /// copy-free.
    fn enqueue(
        &mut self,
        pkt: Box<Packet>,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Result<(), Box<Packet>> {
        let len = pkt.wire_len();
        let admitted = match self.discipline {
            QueueDiscipline::DropTail { capacity_bytes } => self.bytes + len <= capacity_bytes,
            QueueDiscipline::Red {
                capacity_bytes,
                min_thresh_bytes,
                max_thresh_bytes,
                max_p,
            } => {
                self.avg_bytes =
                    self.avg_bytes * (1.0 - RED_WEIGHT) + (self.bytes as f64) * RED_WEIGHT;
                if self.bytes + len > capacity_bytes {
                    false
                } else if self.avg_bytes <= min_thresh_bytes as f64 {
                    true
                } else if self.avg_bytes >= max_thresh_bytes as f64 {
                    false
                } else {
                    let frac = (self.avg_bytes - min_thresh_bytes as f64)
                        / (max_thresh_bytes - min_thresh_bytes).max(1) as f64;
                    rng.gen::<f64>() >= frac * max_p
                }
            }
        };
        if admitted {
            self.bytes += len;
            self.packets.push_back((pkt, now));
            Ok(())
        } else {
            Err(pkt)
        }
    }

    fn dequeue(&mut self) -> Option<(Box<Packet>, SimTime)> {
        let (pkt, t) = self.packets.pop_front()?;
        self.bytes -= pkt.wire_len();
        Some((pkt, t))
    }
}

/// Scheduled outage window during which a link drops everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    pub from: SimTime,
    pub until: SimTime,
}

/// Random fault behaviour of a link.
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Independent per-packet loss probability.
    pub drop_probability: f64,
    /// Scheduled hard outages.
    pub outages: Vec<Outage>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel { drop_probability: 0.0, outages: Vec::new() }
    }
}

impl FaultModel {
    /// True when the link is inside a scheduled outage at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        self.outages.iter().any(|o| now >= o.from && now < o.until)
    }
}

/// Per-direction transmit statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    pub tx_packets: u64,
    pub tx_bytes: u64,
    pub dropped_queue: u64,
    pub dropped_fault: u64,
    /// Cumulative time the transmitter spent sending, for utilization.
    pub busy: SimDuration,
    /// Cumulative queueing delay experienced by transmitted packets.
    pub queue_delay: SimDuration,
}

impl DirStats {
    /// Transmitter utilization over an observation window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / window.as_secs_f64()
    }

    /// Mean queueing delay per transmitted packet.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.tx_packets == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.queue_delay.as_nanos() / self.tx_packets)
    }
}

/// A full-duplex point-to-point link.
#[derive(Debug)]
pub struct Link {
    pub id: LinkId,
    pub a: crate::node::NodeId,
    pub b: crate::node::NodeId,
    pub rate_bps: u64,
    pub propagation: SimDuration,
    pub fault: FaultModel,
    queues: [DirQueue; 2],
    pub stats: [DirStats; 2],
}

/// What happened when a packet was offered to a link.
///
/// Drop outcomes hand the rejected packet back to the caller, so observers
/// (drop hooks) can inspect it without the forwarding path ever cloning a
/// packet speculatively.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// Transmission begins now; the packet pops out after `tx + propagation`.
    StartedTransmit,
    /// Transmitter busy; packet queued.
    Queued,
    /// Dropped by the queue discipline; the packet is returned.
    DroppedQueue(Box<Packet>),
    /// Dropped by the fault model (random loss or outage); the packet is
    /// returned.
    DroppedFault(Box<Packet>),
}

impl Link {
    /// Create a link with the same queue discipline in both directions.
    pub fn new(
        id: LinkId,
        a: crate::node::NodeId,
        b: crate::node::NodeId,
        rate_bps: u64,
        propagation: SimDuration,
        discipline: QueueDiscipline,
    ) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        Link {
            id,
            a,
            b,
            rate_bps,
            propagation,
            fault: FaultModel::default(),
            queues: [DirQueue::new(discipline), DirQueue::new(discipline)],
            stats: [DirStats::default(), DirStats::default()],
        }
    }

    /// The node a packet travelling in `dir` arrives at.
    pub fn dst_node(&self, dir: Dir) -> crate::node::NodeId {
        match dir {
            Dir::AtoB => self.b,
            Dir::BtoA => self.a,
        }
    }

    /// The direction that carries traffic from `from` across this link.
    pub fn dir_from(&self, from: crate::node::NodeId) -> Dir {
        if from == self.a {
            Dir::AtoB
        } else {
            debug_assert_eq!(from, self.b, "node not an endpoint of this link");
            Dir::BtoA
        }
    }

    /// Offer a packet for transmission in `dir` at `now`.
    ///
    /// Returns what happened; when `StartedTransmit` is returned the caller
    /// must schedule `tx_done` at `now + serialization` and delivery at
    /// `now + serialization + propagation`.
    pub fn offer(&mut self, dir: Dir, pkt: Box<Packet>, now: SimTime, rng: &mut StdRng) -> Offer {
        if self.fault.is_down(now)
            || (self.fault.drop_probability > 0.0 && rng.gen::<f64>() < self.fault.drop_probability)
        {
            self.stats[dir.index()].dropped_fault += 1;
            return Offer::DroppedFault(pkt);
        }
        let q = &mut self.queues[dir.index()];
        if q.busy_until <= now && q.packets.is_empty() {
            // Idle transmitter: the packet goes straight to the wire.
            q.bytes += pkt.wire_len();
            q.packets.push_back((pkt, now));
            Offer::StartedTransmit
        } else {
            match q.enqueue(pkt, now, rng) {
                Ok(()) => Offer::Queued,
                Err(pkt) => {
                    self.stats[dir.index()].dropped_queue += 1;
                    Offer::DroppedQueue(pkt)
                }
            }
        }
    }

    /// Begin transmitting the head-of-line packet at `now`, returning the
    /// packet, its serialization time, and total one-way latency. The caller
    /// schedules the corresponding `tx_done` and delivery events.
    pub fn start_transmit(
        &mut self,
        dir: Dir,
        now: SimTime,
    ) -> Option<(Box<Packet>, SimDuration, SimDuration)> {
        let q = &mut self.queues[dir.index()];
        let (pkt, enqueued_at) = q.dequeue()?;
        let tx = SimDuration::transmission(pkt.wire_len(), self.rate_bps);
        q.busy_until = now + tx;
        let s = &mut self.stats[dir.index()];
        s.tx_packets += 1;
        s.tx_bytes += pkt.wire_len() as u64;
        s.busy += tx;
        s.queue_delay += now - enqueued_at;
        Some((pkt, tx, tx + self.propagation))
    }

    /// True when packets are waiting in `dir`.
    pub fn has_backlog(&self, dir: Dir) -> bool {
        !self.queues[dir.index()].packets.is_empty()
    }

    /// Bytes currently queued in `dir`.
    pub fn queued_bytes(&self, dir: Dir) -> usize {
        self.queues[dir.index()].bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{GroundTruth, PacketBuilder, Payload};
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn pkt(bytes: usize) -> Packet {
        let mut b = PacketBuilder::new();
        b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Payload::Synthetic(bytes),
            64,
            GroundTruth::default(),
        )
    }

    fn link(rate: u64, cap: usize) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            rate,
            SimDuration::from_micros(10),
            QueueDiscipline::DropTail { capacity_bytes: cap },
        )
    }

    #[test]
    fn idle_link_starts_transmit_immediately() {
        let mut l = link(1_000_000_000, 100_000);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng),
            Offer::StartedTransmit
        );
        let (p, tx, total) = l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // 958 + 42 header bytes = 1000 bytes at 1 Gbps = 8 us.
        assert_eq!(p.wire_len(), 1000);
        assert_eq!(tx, SimDuration::from_micros(8));
        assert_eq!(total, SimDuration::from_micros(18));
    }

    #[test]
    fn busy_link_queues_then_drops_when_full() {
        let mut l = link(1_000_000, 2000);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng),
            Offer::StartedTransmit
        );
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // Transmitter busy for 8ms: the next offers queue until capacity.
        assert_eq!(l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(1), &mut rng), Offer::Queued);
        assert_eq!(l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(2), &mut rng), Offer::Queued);
        let rejected = Box::new(pkt(958));
        let rejected_id = rejected.id;
        match l.offer(Dir::AtoB, rejected, SimTime(3), &mut rng) {
            Offer::DroppedQueue(p) => assert_eq!(p.id, rejected_id),
            other => panic!("expected queue drop, got {other:?}"),
        }
        assert_eq!(l.stats[0].dropped_queue, 1);
        assert!(l.has_backlog(Dir::AtoB));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link(1_000_000, 2000);
        let mut rng = StdRng::seed_from_u64(1);
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        // Reverse direction is still idle.
        assert_eq!(
            l.offer(Dir::BtoA, Box::new(pkt(100)), SimTime(1), &mut rng),
            Offer::StartedTransmit
        );
    }

    #[test]
    fn fault_drops_and_outages() {
        let mut l = link(1_000_000_000, 100_000);
        l.fault.drop_probability = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime::ZERO, &mut rng),
            Offer::DroppedFault(_)
        ));
        l.fault.drop_probability = 0.0;
        l.fault.outages.push(Outage {
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        });
        assert!(l.fault.is_down(SimTime::from_secs(15)));
        assert!(matches!(
            l.offer(Dir::AtoB, Box::new(pkt(10)), SimTime::from_secs(15), &mut rng),
            Offer::DroppedFault(_)
        ));
        assert!(!l.fault.is_down(SimTime::from_secs(20)));
        assert_eq!(l.stats[0].dropped_fault, 2);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1_000_000,
            SimDuration::ZERO,
            QueueDiscipline::Red {
                capacity_bytes: 1_000_000,
                min_thresh_bytes: 2_000,
                max_thresh_bytes: 20_000,
                max_p: 1.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(42);
        // Saturate the transmitter, then flood the queue.
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        let mut dropped = 0;
        let mut queued = 0;
        for i in 0..200 {
            match l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime(i), &mut rng) {
                Offer::Queued => queued += 1,
                Offer::DroppedQueue(_) => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        // RED must drop some but not all packets once the average climbs.
        assert!(dropped > 0, "RED never dropped");
        assert!(queued > 0, "RED dropped everything");
    }

    #[test]
    fn utilization_and_queue_delay_accounting() {
        let mut l = link(8_000_000, 1_000_000); // 1 byte per microsecond
        let mut rng = StdRng::seed_from_u64(1);
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng);
        l.start_transmit(Dir::AtoB, SimTime::ZERO).unwrap();
        l.offer(Dir::AtoB, Box::new(pkt(958)), SimTime::ZERO, &mut rng);
        // Second packet waits 1000 us for the first to serialize.
        let busy_until = SimTime::from_micros(1000);
        let (_, _, _) = l.start_transmit(Dir::AtoB, busy_until).unwrap();
        let s = &l.stats[0];
        assert_eq!(s.tx_packets, 2);
        assert_eq!(s.tx_bytes, 2000);
        assert_eq!(s.queue_delay, SimDuration::from_micros(1000));
        assert_eq!(s.mean_queue_delay(), SimDuration::from_micros(500));
        assert!((s.utilization(SimDuration::from_micros(2000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drop_tail_sizing_helper() {
        // 10 ms at 1 Gbps = 1.25 MB.
        match QueueDiscipline::drop_tail_for(1_000_000_000, 10) {
            QueueDiscipline::DropTail { capacity_bytes } => {
                assert_eq!(capacity_bytes, 1_250_000)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn dir_helpers() {
        let l = link(1, 1);
        assert_eq!(l.dir_from(NodeId(0)), Dir::AtoB);
        assert_eq!(l.dir_from(NodeId(1)), Dir::BtoA);
        assert_eq!(l.dst_node(Dir::AtoB), NodeId(1));
        assert_eq!(l.dst_node(Dir::BtoA), NodeId(0));
        assert_eq!(Dir::AtoB.flip(), Dir::BtoA);
    }
}
