//! Topology construction: a general builder plus the canonical three-tier
//! campus network preset used throughout CampusLab.

use crate::link::{Link, LinkId, QueueDiscipline};
use crate::lpm::Prefix;
use crate::network::Network;
use crate::node::{Node, NodeId, NodeKind};
use crate::time::SimDuration;
use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr};

/// Physical parameters of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    pub rate_bps: u64,
    pub propagation: SimDuration,
    pub queue: QueueDiscipline,
}

impl LinkSpec {
    /// A link with a drop-tail buffer holding ~5 ms at line rate.
    pub fn new(rate_bps: u64, propagation: SimDuration) -> Self {
        LinkSpec {
            rate_bps,
            propagation,
            queue: QueueDiscipline::drop_tail_for(rate_bps, 5),
        }
    }

    /// Gigabit shorthand.
    pub fn gbps(g: u64, propagation: SimDuration) -> Self {
        Self::new(g * 1_000_000_000, propagation)
    }
}

/// Incrementally builds a [`Network`], then computes routes.
pub struct TopologyBuilder {
    net: Network,
    /// Prefixes advertised by each node, used by `build` to fill routing
    /// tables via BFS (shortest hop-count paths).
    advertised: Vec<(NodeId, Prefix)>,
}

impl TopologyBuilder {
    /// Start a topology with the RNG seed used for RED and fault models.
    pub fn new(seed: u64) -> Self {
        TopologyBuilder { net: Network::new(seed), advertised: Vec::new() }
    }

    /// Add a switch.
    pub fn switch(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.net.node_count());
        self.net.push_node(Node::switch(id, name))
    }

    /// Add a host with one IPv4 address. The host advertises a /32 for
    /// itself; attach it with [`TopologyBuilder::attach_host`].
    pub fn host(&mut self, name: impl Into<String>, addr: Ipv4Addr) -> NodeId {
        let id = NodeId(self.net.node_count());
        let id = self.net.push_node(Node::host(id, name, vec![IpAddr::V4(addr)]));
        self.advertised.push((id, Prefix::v4(addr, 32)));
        id
    }

    /// Connect two nodes.
    pub fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.net.links.len());
        self.net.push_link(Link::new(id, a, b, spec.rate_bps, spec.propagation, spec.queue))
    }

    /// Connect a host to its access switch and set the link as its gateway.
    pub fn attach_host(&mut self, host: NodeId, switch: NodeId, spec: LinkSpec) -> LinkId {
        let link = self.link(host, switch, spec);
        match &mut self.net.nodes[host.0].kind {
            NodeKind::Host { gateway, .. } => *gateway = Some(link),
            NodeKind::Switch { .. } => panic!("attach_host target is not a host"),
        }
        link
    }

    /// Advertise an aggregate prefix from a node (e.g. an access switch
    /// advertising its /24, or the border advertising a default route).
    pub fn advertise(&mut self, node: NodeId, prefix: Prefix) {
        self.advertised.push((node, prefix));
    }

    /// Compute routes for every advertised prefix (BFS shortest paths) and
    /// return the finished network.
    pub fn build(mut self) -> Network {
        let n = self.net.node_count();
        // Adjacency: node -> (link, neighbor).
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n];
        for link in &self.net.links {
            adj[link.a.0].push((link.id, link.b));
            adj[link.b.0].push((link.id, link.a));
        }
        for &(origin, prefix) in &self.advertised {
            // BFS from the advertising node; `via[v]` is the link v uses
            // toward the origin.
            let mut via: Vec<Option<LinkId>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[origin.0] = true;
            let mut frontier = VecDeque::from([origin]);
            while let Some(u) = frontier.pop_front() {
                for &(link, v) in &adj[u.0] {
                    if !seen[v.0] {
                        seen[v.0] = true;
                        via[v.0] = Some(link);
                        // Hosts do not forward; don't BFS through them.
                        if matches!(self.net.nodes[v.0].kind, NodeKind::Switch { .. }) {
                            frontier.push_back(v);
                        }
                    }
                }
            }
            for (v, &hop) in via.iter().enumerate() {
                if v == origin.0 {
                    continue;
                }
                if let (Some(link), NodeKind::Switch { .. }) = (hop, &self.net.nodes[v].kind) {
                    self.net.nodes[v].install_route(prefix, link);
                }
            }
        }
        self.net
    }
}

/// Shape parameters for the canonical campus topology.
///
/// The defaults produce a small university: a border router behind a
/// 10 Gbps upstream (the paper's stated 10–20 Gbps range), a core, four
/// distribution switches, four access switches each, and a dozen hosts per
/// access switch, plus a server enclave (DNS resolver, web, mail) and a set
/// of external Internet hosts.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    pub name: String,
    /// Second octet of the campus 10.x.0.0/16 prefix; lets multiple
    /// simulated campuses coexist with disjoint address space.
    pub index: u8,
    pub dist_count: usize,
    pub access_per_dist: usize,
    pub hosts_per_access: usize,
    pub external_hosts: usize,
    pub upstream_gbps: u64,
    /// Overrides `upstream_gbps` with a sub-gigabit rate when set —
    /// the knob for congestion/performance experiments.
    pub upstream_mbps: Option<u64>,
    pub seed: u64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            name: "campus".into(),
            index: 1,
            dist_count: 4,
            access_per_dist: 4,
            hosts_per_access: 12,
            external_hosts: 24,
            upstream_gbps: 10,
            upstream_mbps: None,
            seed: 0xCA_1AB,
        }
    }
}

impl CampusConfig {
    /// The campus 10.index.0.0/16 aggregate.
    pub fn campus_prefix(&self) -> Prefix {
        Prefix::v4(Ipv4Addr::new(10, self.index, 0, 0), 16)
    }

    /// Address of host `h` on access switch `a` of distribution tier `d`.
    pub fn host_addr(&self, d: usize, a: usize, h: usize) -> Ipv4Addr {
        Ipv4Addr::new(
            10,
            self.index,
            (d * self.access_per_dist + a + 1) as u8,
            (h + 10) as u8,
        )
    }

    /// Address of the n-th external (Internet) host.
    pub fn external_addr(&self, n: usize) -> Ipv4Addr {
        // TEST-NET-3 plus a wrap into TEST-NET-2 for larger counts.
        if n < 200 {
            Ipv4Addr::new(203, 0, 113, (n + 1) as u8)
        } else {
            Ipv4Addr::new(198, 51, 100, ((n - 200) % 254 + 1) as u8)
        }
    }
}

/// The server enclave of a campus.
#[derive(Debug, Clone, Copy)]
pub struct CampusServers {
    /// The campus recursive DNS resolver (10.x.255.53).
    pub dns: NodeId,
    /// The campus web server (10.x.255.80).
    pub web: NodeId,
    /// The campus mail server (10.x.255.25).
    pub mail: NodeId,
}

/// A built campus: the network plus the handles experiments need.
pub struct Campus {
    pub net: Network,
    pub config: CampusConfig,
    /// The aggregation point representing the upstream Internet.
    pub internet: NodeId,
    /// The campus border router.
    pub border: NodeId,
    /// The campus core switch.
    pub core: NodeId,
    /// The upstream link (internet <-> border) — where the paper's border
    /// tap and monitoring appliance live.
    pub border_link: LinkId,
    /// All internal end hosts.
    pub hosts: Vec<NodeId>,
    pub servers: CampusServers,
    /// External Internet hosts (web services, open resolvers, attackers).
    pub external: Vec<NodeId>,
}

impl Campus {
    /// Build a campus from its configuration.
    pub fn build(config: CampusConfig) -> Campus {
        let mut b = TopologyBuilder::new(config.seed);
        let internet = b.switch("internet-xchg");
        let border = b.switch(format!("{}-border", config.name));
        let core = b.switch(format!("{}-core", config.name));

        let us = SimDuration::from_micros;
        // Upstream: the paper's 10-20 Gbps range, 5 ms to "the Internet".
        // A sub-gigabit override models an under-provisioned or degraded
        // uplink for performance experiments.
        let upstream_rate = config
            .upstream_mbps
            .map(|m| m * 1_000_000)
            .unwrap_or(config.upstream_gbps * 1_000_000_000);
        // Degraded sub-gigabit uplinks get the deep (bufferbloated) queue
        // real provider edges carry; healthy high-rate links keep a shallow
        // 5 ms buffer.
        let upstream_spec = if config.upstream_mbps.is_some() {
            LinkSpec {
                rate_bps: upstream_rate,
                propagation: SimDuration::from_millis(5),
                queue: QueueDiscipline::drop_tail_for(upstream_rate, 50),
            }
        } else {
            LinkSpec::new(upstream_rate, SimDuration::from_millis(5))
        };
        let border_link = b.link(internet, border, upstream_spec);
        b.link(border, core, LinkSpec::gbps(40, us(50)));

        // Server enclave on the core.
        let dns = b.host(
            format!("{}-dns", config.name),
            Ipv4Addr::new(10, config.index, 255, 53),
        );
        let web = b.host(
            format!("{}-web", config.name),
            Ipv4Addr::new(10, config.index, 255, 80),
        );
        let mail = b.host(
            format!("{}-mail", config.name),
            Ipv4Addr::new(10, config.index, 255, 25),
        );
        for server in [dns, web, mail] {
            b.attach_host(server, core, LinkSpec::gbps(10, us(20)));
        }

        // Distribution and access tiers.
        let mut hosts = Vec::new();
        for d in 0..config.dist_count {
            let dist = b.switch(format!("{}-dist{}", config.name, d));
            b.link(core, dist, LinkSpec::gbps(20, us(30)));
            for a in 0..config.access_per_dist {
                let access = b.switch(format!("{}-acc{}-{}", config.name, d, a));
                b.link(dist, access, LinkSpec::gbps(10, us(20)));
                let subnet = Ipv4Addr::new(
                    10,
                    config.index,
                    (d * config.access_per_dist + a + 1) as u8,
                    0,
                );
                b.advertise(access, Prefix::v4(subnet, 24));
                for h in 0..config.hosts_per_access {
                    let addr = config.host_addr(d, a, h);
                    let host = b.host(format!("{}-h{}-{}-{}", config.name, d, a, h), addr);
                    b.attach_host(host, access, LinkSpec::gbps(1, us(5)));
                    hosts.push(host);
                }
            }
        }

        // External hosts hang off the internet exchange.
        let mut external = Vec::new();
        for n in 0..config.external_hosts {
            let host = b.host(format!("ext{}", n), config.external_addr(n));
            b.attach_host(host, internet, LinkSpec::gbps(10, SimDuration::from_millis(2)));
            external.push(host);
        }

        // The border advertises the campus aggregate toward the Internet,
        // and a default route toward the Internet into the campus.
        b.advertise(border, config.campus_prefix());
        b.advertise(internet, Prefix::v4_default());

        let mut net = b.build();
        // The paper's monitoring premise: tap the border.
        net.set_tap(border_link, true);

        Campus {
            net,
            config,
            internet,
            border,
            core,
            border_link,
            hosts,
            servers: CampusServers { dns, web, mail },
            external,
        }
    }

    /// Convenience: the IPv4 address of a node.
    pub fn addr_of(&self, node: NodeId) -> Ipv4Addr {
        match self.net.node(node).primary_address() {
            Some(IpAddr::V4(a)) => a,
            _ => panic!("node has no IPv4 address"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{GroundTruth, PacketBuilder, Payload};
    use crate::time::SimTime;

    #[test]
    fn default_campus_builds() {
        let campus = Campus::build(CampusConfig::default());
        // 3 core switches + 3 servers + 4 dist + 16 access + 192 hosts + 24 ext
        assert_eq!(campus.hosts.len(), 4 * 4 * 12);
        assert_eq!(campus.external.len(), 24);
        assert!(campus.net.node_count() > 200);
    }

    #[test]
    fn host_to_host_across_campus() {
        let campus = Campus::build(CampusConfig::default());
        let mut net = campus.net;
        let src = campus.hosts[0];
        let dst = *campus.hosts.last().unwrap();
        let (src_ip, dst_ip) = match (
            net.node(src).primary_address().unwrap(),
            net.node(dst).primary_address().unwrap(),
        ) {
            (IpAddr::V4(a), IpAddr::V4(b)) => (a, b),
            _ => unreachable!(),
        };
        let mut b = PacketBuilder::new();
        net.inject(
            SimTime::ZERO,
            src,
            b.udp_v4(src_ip, dst_ip, 1, 2, Payload::Synthetic(100), 64, GroundTruth::default()),
        );
        let stats = net.run_to_completion();
        assert_eq!(stats.delivered, 1, "{stats:?}");
    }

    #[test]
    fn host_to_internet_and_back() {
        let campus = Campus::build(CampusConfig::default());
        let src_ip = campus.addr_of(campus.hosts[3]);
        let ext_ip = campus.addr_of(campus.external[0]);
        let mut net = campus.net;
        let mut b = PacketBuilder::new();
        net.inject(
            SimTime::ZERO,
            campus.hosts[3],
            b.udp_v4(src_ip, ext_ip, 1, 2, Payload::Synthetic(100), 64, GroundTruth::default()),
        );
        net.inject(
            SimTime::from_millis(50),
            campus.external[0],
            b.udp_v4(ext_ip, src_ip, 2, 1, Payload::Synthetic(100), 64, GroundTruth::default()),
        );
        let stats = net.run_to_completion();
        assert_eq!(stats.delivered, 2, "{stats:?}");
        // Both packets crossed the tapped border link.
        let border = net.link(campus.border_link);
        assert_eq!(border.stats[0].tx_packets + border.stats[1].tx_packets, 2);
    }

    #[test]
    fn dns_server_is_reachable() {
        let campus = Campus::build(CampusConfig::default());
        let src_ip = campus.addr_of(campus.hosts[7]);
        let dns_ip = campus.addr_of(campus.servers.dns);
        assert_eq!(dns_ip, Ipv4Addr::new(10, 1, 255, 53));
        let mut net = campus.net;
        let mut b = PacketBuilder::new();
        net.inject(
            SimTime::ZERO,
            campus.hosts[7],
            b.udp_v4(src_ip, dns_ip, 5353, 53, Payload::Synthetic(40), 64, GroundTruth::default()),
        );
        assert_eq!(net.run_to_completion().delivered, 1);
    }

    #[test]
    fn external_to_external_does_not_enter_campus() {
        let campus = Campus::build(CampusConfig::default());
        let a_ip = campus.addr_of(campus.external[0]);
        let b_ip = campus.addr_of(campus.external[1]);
        let border_before = campus.border_link;
        let mut net = campus.net;
        let mut builder = PacketBuilder::new();
        net.inject(
            SimTime::ZERO,
            campus.external[0],
            builder.udp_v4(a_ip, b_ip, 1, 2, Payload::Synthetic(10), 64, GroundTruth::default()),
        );
        let stats = net.run_to_completion();
        assert_eq!(stats.delivered, 1);
        let border = net.link(border_before);
        assert_eq!(border.stats[0].tx_packets + border.stats[1].tx_packets, 0);
    }

    #[test]
    fn sub_gigabit_upstream_override() {
        let campus = Campus::build(CampusConfig {
            upstream_mbps: Some(50),
            dist_count: 1,
            access_per_dist: 1,
            hosts_per_access: 2,
            external_hosts: 2,
            ..CampusConfig::default()
        });
        assert_eq!(campus.net.link(campus.border_link).rate_bps, 50_000_000);
    }

    #[test]
    fn two_campuses_have_disjoint_prefixes() {
        let c1 = CampusConfig { index: 1, ..CampusConfig::default() };
        let c2 = CampusConfig { index: 2, ..CampusConfig::default() };
        assert_ne!(c1.campus_prefix(), c2.campus_prefix());
        assert_ne!(c1.host_addr(0, 0, 0), c2.host_addr(0, 0, 0));
    }

    #[test]
    fn builder_rejects_attach_to_switch_target() {
        let mut b = TopologyBuilder::new(0);
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.attach_host(s1, s2, LinkSpec::gbps(1, SimDuration::ZERO));
        }));
        assert!(result.is_err());
    }
}
