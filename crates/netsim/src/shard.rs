//! The sharded execution engine: per-shard event loops synchronized by a
//! conservative time-window barrier.
//!
//! The topology is partitioned into shards — one per access/distribution
//! subtree in the campus — by cutting the highest-latency links (the
//! partitioner maximizes the cut threshold, because the minimum cut-link
//! propagation *is* the lookahead). Each shard owns its nodes, its internal
//! links, its sending directions of cross-shard links, and a private
//! [`EventQueue`](crate::event::EventQueue); shards execute windows of
//! simulated time `[T, T + lookahead)` in parallel and exchange cross-shard
//! arrivals at the window barrier.
//!
//! # The determinism contract
//!
//! Sharded execution reproduces the sequential engine byte-for-byte:
//! identical `NetStats`, identical Observatory bundles, identical hook
//! callbacks in identical order. Three mechanisms carry the contract:
//!
//! 1. **Canonical event keys.** Every event's `(time, class, lane, seq)`
//!    key (see [`crate::event::EventKey`]) depends only on causal
//!    structure, so the union of N shard queues pops in exactly the order
//!    one queue would. Per-(link, direction) RNG streams make loss and RED
//!    draws a function of the lane, not of global interleaving.
//! 2. **Serial micro-phases for exact-effect events.** Timers, chaos
//!    transitions and tapped-link arrivals may issue commands (or mutate
//!    global fault state) whose effects sequential execution applies
//!    *immediately*. The coordinator never lets those fire inside a
//!    window: master-queue events and queued tapped arrivals bound the
//!    window end, and at that bound the coordinator dispatches every event
//!    at that instant one at a time, in canonical key order, with live
//!    hooks and immediate command routing — exactly the sequential loop.
//!    The window-edge invariant makes this sound: any *newly created*
//!    tapped or cross-shard arrival fires at least `lookahead` after the
//!    window start, so it can never pop inside the window that created it.
//! 3. **Ordered hook replay at barriers.** Deliver/drop callbacks raised
//!    inside a window are logged per shard with their event key and
//!    replayed at the barrier in globally merged key order, so observer
//!    state sees the sequential callback sequence. Commands issued from
//!    replayed hooks are routed with their requested times (clamped to the
//!    shard clock) and counted as [`ShardReport::late_commands`]; none of
//!    the repo's experiments issue commands from deliver/drop hooks, so
//!    the counter doubles as a contract check.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

use crate::event::EventKey;
use crate::link::{Dir, Link, LinkId, QueueDiscipline};
use crate::network::{
    Command, Commands, DropReason, Event, NetStats, Network, SimHooks, PACKET_POOL_CAP,
};
use crate::node::{Node, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// Sentinel in [`Splice::remote`] marking a lane whose arrivals stay local.
const LOCAL: u32 = u32::MAX;

/// Shard count requested through the `CAMPUSLAB_SHARDS` environment
/// variable, if set to a positive integer.
pub(crate) fn shards_from_env() -> Option<usize> {
    std::env::var("CAMPUSLAB_SHARDS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// A packet arrival crossing a shard boundary, exchanged at window barriers.
pub(crate) struct CrossPacket {
    pub(crate) dst_shard: u32,
    pub(crate) key: EventKey,
    pub(crate) link: LinkId,
    pub(crate) dir: Dir,
    pub(crate) packet: Box<Packet>,
}

/// Cross-shard plumbing attached to a [`Network`] while it runs as one
/// shard: the per-lane routing table, the outbox drained at barriers, and
/// the min-heap of queued tapped-arrival times that bounds window ends.
pub(crate) struct Splice {
    /// `lane -> destination shard` for cross-shard lanes; [`LOCAL`] for
    /// lanes whose arrivals schedule locally.
    remote: Vec<u32>,
    /// Arrivals bound for other shards, routed by the coordinator.
    pub(crate) outbox: Vec<CrossPacket>,
    /// Fire times of tapped arrivals currently queued in this shard.
    tap_times: BinaryHeap<Reverse<u64>>,
}

impl Splice {
    fn new(lanes: usize) -> Self {
        Splice { remote: vec![LOCAL; lanes], outbox: Vec::new(), tap_times: BinaryHeap::new() }
    }

    /// The shard that owns arrivals on `lane`, when it is not this one.
    pub(crate) fn remote_shard(&self, lane: u32) -> Option<u32> {
        let s = self.remote[lane as usize];
        (s != LOCAL).then_some(s)
    }

    /// Record a tapped arrival queued for `at`; tapped arrivals must
    /// dispatch in serial phases, so their times cap window ends.
    pub(crate) fn note_tapped_arrival(&mut self, at: SimTime) {
        self.tap_times.push(Reverse(at.0));
    }

    fn next_tap_time(&self) -> Option<u64> {
        self.tap_times.peek().map(|&Reverse(t)| t)
    }
}

/// Counters describing one sharded run, for benches, tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shards the partitioner produced (may be fewer than requested).
    pub shards: usize,
    /// Conservative lookahead in nanoseconds (`u64::MAX` when unbounded).
    pub lookahead_ns: u64,
    /// Parallel windows executed.
    pub windows: u64,
    /// Serial micro-phases executed.
    pub serial_phases: u64,
    /// Packet arrivals exchanged across shard boundaries.
    pub cross_packets: u64,
    /// Hook callbacks replayed at barriers.
    pub replayed_hooks: u64,
    /// Commands issued from replayed (window-phase) hooks — applied after
    /// the window that raised them, so potentially later than sequential
    /// execution would have applied them. Zero for every experiment in
    /// this repo; nonzero values flag hooks outside the exact contract.
    pub late_commands: u64,
    /// True when the engine could not shard this run (packets already in
    /// flight) and fell back to the sequential loop.
    pub fell_back: bool,
}

/// How the partitioner assigned nodes to shards.
pub(crate) struct ShardPlan {
    pub(crate) shards: usize,
    /// Owning shard of each node.
    pub(crate) owner: Vec<u32>,
}

/// Union-find over node indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: usize) -> u32 {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            cur = std::mem::replace(&mut self.parent[cur as usize], root);
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Dense component ids in node order, plus the component count.
    fn components(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut id_of_root = vec![u32::MAX; n];
        let mut comp = vec![0u32; n];
        let mut count = 0u32;
        for (i, c) in comp.iter_mut().enumerate() {
            let r = self.find(i) as usize;
            if id_of_root[r] == u32::MAX {
                id_of_root[r] = count;
                count += 1;
            }
            *c = id_of_root[r];
        }
        (comp, count as usize)
    }
}

impl ShardPlan {
    /// Partition `net` into up to `wanted` shards.
    ///
    /// Candidate cut thresholds are the distinct link propagation delays,
    /// tried in descending order: cutting only links with propagation
    /// `>= thr` and taking connected components of the rest. The largest
    /// threshold yielding at least `wanted` components wins — it maximizes
    /// the lookahead, since every cross-shard link is a cut link. If no
    /// threshold reaches `wanted`, the one with the most components wins.
    /// Components are then bin-packed onto shards: largest first (ties by
    /// smallest node id) onto the least-loaded shard (ties by lowest
    /// index). Every step is deterministic.
    pub(crate) fn compute(net: &Network, wanted: usize) -> ShardPlan {
        let n = net.node_count();
        let single = ShardPlan { shards: 1, owner: vec![0; n] };
        if wanted <= 1 || n == 0 {
            return single;
        }
        let mut thresholds: Vec<u64> =
            (0..net.link_count()).map(|l| net.link(LinkId(l)).propagation.as_nanos()).collect();
        thresholds.sort_unstable();
        thresholds.dedup();
        thresholds.reverse();
        let mut best: Option<(Vec<u32>, usize)> = None;
        for &thr in &thresholds {
            let mut dsu = Dsu::new(n);
            for l in 0..net.link_count() {
                let link = net.link(LinkId(l));
                if link.propagation.as_nanos() < thr {
                    dsu.union(link.a.0, link.b.0);
                }
            }
            let (comp, count) = dsu.components();
            let reached = count >= wanted;
            if best.as_ref().is_none_or(|&(_, c)| count > c) {
                best = Some((comp, count));
            }
            if reached {
                break;
            }
        }
        let Some((comp, count)) = best else { return single };
        if count <= 1 {
            return single;
        }
        // Bin-pack components onto shards.
        let shard_count = wanted.min(count);
        let mut size = vec![0usize; count];
        let mut min_id = vec![usize::MAX; count];
        for (i, &c) in comp.iter().enumerate() {
            size[c as usize] += 1;
            min_id[c as usize] = min_id[c as usize].min(i);
        }
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by_key(|&c| (Reverse(size[c]), min_id[c]));
        let mut load = vec![0usize; shard_count];
        let mut shard_of_comp = vec![0u32; count];
        for c in order {
            let s = (0..shard_count).min_by_key(|&s| (load[s], s)).expect("shard_count >= 1");
            shard_of_comp[c] = s as u32;
            load[s] += size[c];
        }
        let owner = comp.iter().map(|&c| shard_of_comp[c as usize]).collect();
        ShardPlan { shards: shard_count, owner }
    }
}

/// One deliver/drop callback captured inside a window.
enum HookRecord {
    Deliver { node: NodeId, packet: Packet, latency: SimDuration },
    Drop { reason: DropReason, packet: Packet },
}

struct LogEntry {
    key: EventKey,
    ordinal: u32,
    now: SimTime,
    record: HookRecord,
}

/// The buffering hook adapter shards dispatch through inside a window.
/// Tap and timer callbacks are engine invariants, not loggable events —
/// the coordinator routes them to serial phases, so seeing one here means
/// the window bound was computed wrong.
struct WindowLog {
    enabled: bool,
    key: EventKey,
    ordinal: u32,
    entries: Vec<LogEntry>,
}

impl WindowLog {
    fn new(enabled: bool) -> Self {
        WindowLog { enabled, key: EventKey::root(SimTime::ZERO, 0), ordinal: 0, entries: Vec::new() }
    }

    fn push(&mut self, now: SimTime, record: HookRecord) {
        let ordinal = self.ordinal;
        self.ordinal += 1;
        self.entries.push(LogEntry { key: self.key, ordinal, now, record });
    }
}

impl SimHooks for WindowLog {
    fn on_tap(&mut self, _: SimTime, _: LinkId, _: Dir, _: &Packet, _: &mut Commands) {
        unreachable!("tapped arrival dispatched inside a shard window");
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        _: &mut Commands,
    ) {
        if self.enabled {
            self.push(now, HookRecord::Deliver { node, packet: packet.clone(), latency });
        }
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, _: &mut Commands) {
        if self.enabled {
            self.push(now, HookRecord::Drop { reason, packet: packet.clone() });
        }
    }

    fn on_timer(&mut self, _: SimTime, _: u64, _: &mut Commands) {
        unreachable!("timer dispatched inside a shard window");
    }
}

/// One shard: its network slice plus its window hook log.
struct ShardState {
    net: Network,
    log: WindowLog,
}

impl ShardState {
    /// Run this shard's event loop up to (exclusive) `cap` nanoseconds,
    /// buffering hook callbacks.
    fn run_window(&mut self, cap: u64) {
        let mut cmds = Commands::default();
        while let Some(k) = self.net.queue.peek_key() {
            if k.time.0 >= cap {
                break;
            }
            let (key, ev) = self.net.queue.pop().expect("peeked event vanished");
            #[cfg(debug_assertions)]
            if let Event::Arrive { link, .. } = &ev {
                debug_assert!(!self.net.tapped[link.0], "tapped arrival popped inside a window");
            }
            self.log.key = key;
            self.log.ordinal = 0;
            self.net.dispatch(key.time, ev, &mut self.log, &mut cmds);
            debug_assert!(cmds.items.is_empty(), "window hooks must not issue commands");
        }
    }
}

/// Worker/coordinator handshake for the persistent window executor.
#[derive(Default)]
struct Ctrl {
    state: Mutex<CtrlState>,
    work: Condvar,
    done: Condvar,
}

#[derive(Default)]
struct CtrlState {
    gen: u64,
    cap: u64,
    done: usize,
    quit: bool,
}

/// The contiguous shard range worker `w` of `workers` drives. Balanced
/// splitting (`⌊w·n/workers⌋ .. ⌊(w+1)·n/workers⌋`) keeps every range
/// non-empty whenever `workers <= n` — which [`crate::par::worker_count`]
/// guarantees — so exactly `workers` threads are spawned. `run_windows`
/// waits for `workers` completions per window; a skipped (empty-range)
/// worker would deadlock the first parallel window.
fn worker_range(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    debug_assert!(0 < workers && workers <= n);
    (w * n / workers)..((w + 1) * n / workers)
}

fn worker_loop(cells: &[Mutex<ShardState>], range: std::ops::Range<usize>, ctrl: &Ctrl) {
    let mut seen = 0u64;
    loop {
        let cap = {
            let mut g = ctrl.state.lock().expect("ctrl poisoned");
            while g.gen == seen && !g.quit {
                g = ctrl.work.wait(g).expect("ctrl poisoned");
            }
            if g.quit {
                return;
            }
            seen = g.gen;
            g.cap
        };
        for i in range.clone() {
            cells[i].lock().expect("shard poisoned").run_window(cap);
        }
        let _g = {
            let mut g = ctrl.state.lock().expect("ctrl poisoned");
            g.done += 1;
            g
        };
        ctrl.done.notify_all();
    }
}

/// Dispatch one window `[.., cap)` across every shard.
fn run_windows(cells: &[Mutex<ShardState>], cap: u64, workers: usize, ctrl: &Ctrl) {
    if workers <= 1 {
        for cell in cells {
            cell.lock().expect("shard poisoned").run_window(cap);
        }
        return;
    }
    let mut g = ctrl.state.lock().expect("ctrl poisoned");
    g.gen += 1;
    g.cap = cap;
    g.done = 0;
    ctrl.work.notify_all();
    while g.done < workers {
        g = ctrl.done.wait(g).expect("ctrl poisoned");
    }
}

/// Apply hook-issued commands, routing each to its owner: timers to the
/// master root queue, injections to the owning shard (keyed by the master
/// root counter, so sequence numbers match sequential assignment), filter
/// changes to the owning shard's node.
///
/// `phase_now` is `Some(t)` when routing live from a serial phase at
/// global instant `t`, and `None` when replaying window-buffered hooks
/// (whose commands are late by construction).
fn route_commands(
    master: &mut Network,
    cells: &[Mutex<ShardState>],
    owner: &[u32],
    items: Vec<Command>,
    phase_now: Option<SimTime>,
    report: &mut ShardReport,
) {
    for cmd in items {
        if phase_now.is_none() {
            report.late_commands += 1;
        }
        match cmd {
            Command::InstallFilter(node, filter) => {
                cells[owner[node.0] as usize]
                    .lock()
                    .expect("shard poisoned")
                    .net
                    .install_filter(node, filter);
            }
            Command::RemoveFilter(node) => {
                cells[owner[node.0] as usize].lock().expect("shard poisoned").net.remove_filter(node);
            }
            Command::SetTimer(at, token) => master.set_timer(at, token),
            Command::Inject(at, node, packet) => {
                let mut key = master.next_root_key(at);
                let mut st = cells[owner[node.0] as usize].lock().expect("shard poisoned");
                key.time = match phase_now {
                    // Live routing matches the sequential engine's
                    // `EventQueue::schedule` clamp: a request in the past
                    // fires at the global serial-phase instant, not at
                    // the (possibly older) shard-local clock. In-contract
                    // the shard clock never runs ahead of `t`, so the
                    // extra max is a safety net for late-command chains.
                    Some(t) => key.time.max(t).max(st.net.queue.now()),
                    // A replayed hook may request a time the shard clock
                    // has already passed; clamp (the command is already
                    // counted as late).
                    None => key.time.max(st.net.queue.now()),
                };
                let packet = st.net.box_packet(packet);
                st.net.queue.schedule(key, Event::Inject { node, packet });
            }
        }
    }
}

/// Replay window-buffered hook callbacks in globally merged canonical
/// order, routing any commands they issue.
fn replay_window_hooks(
    master: &mut Network,
    cells: &[Mutex<ShardState>],
    owner: &[u32],
    hooks: &mut dyn SimHooks,
    report: &mut ShardReport,
) {
    let mut all: Vec<LogEntry> = Vec::new();
    for cell in cells {
        let mut st = cell.lock().expect("shard poisoned");
        all.append(&mut st.log.entries);
    }
    if all.is_empty() {
        return;
    }
    all.sort_unstable_by_key(|e| (e.key, e.ordinal));
    let mut cmds = Commands::default();
    for e in &all {
        match &e.record {
            HookRecord::Deliver { node, packet, latency } => {
                hooks.on_deliver(e.now, *node, packet, *latency, &mut cmds);
            }
            HookRecord::Drop { reason, packet } => {
                hooks.on_drop(e.now, *reason, packet, &mut cmds);
            }
        }
        report.replayed_hooks += 1;
        if !cmds.items.is_empty() {
            route_commands(master, cells, owner, std::mem::take(&mut cmds.items), None, report);
        }
    }
}

/// Move every outboxed cross-shard arrival into its destination shard's
/// queue, maintaining the destination's tapped-arrival index.
fn route_outboxes(cells: &[Mutex<ShardState>], report: &mut ShardReport) {
    for i in 0..cells.len() {
        let out = {
            let mut st = cells[i].lock().expect("shard poisoned");
            std::mem::take(&mut st.net.splice.as_mut().expect("shard without splice").outbox)
        };
        for cp in out {
            let mut st = cells[cp.dst_shard as usize].lock().expect("shard poisoned");
            if st.net.tapped[cp.link.0] {
                st.net
                    .splice
                    .as_mut()
                    .expect("shard without splice")
                    .note_tapped_arrival(cp.key.time);
            }
            st.net.queue.schedule(cp.key, Event::Arrive { link: cp.link, dir: cp.dir, packet: cp.packet });
            report.cross_packets += 1;
        }
    }
}

/// A placeholder node for slots a shard (or the master, mid-run) does not
/// own. Chaos toggles may touch it; nothing else does.
fn stub_node(i: usize) -> Node {
    Node::switch(NodeId(i), String::new())
}

/// A placeholder link preserving identity and endpoints only.
fn stub_link(link: &Link) -> Link {
    Link::new(
        link.id,
        link.a,
        link.b,
        1,
        SimDuration::ZERO,
        QueueDiscipline::DropTail { capacity_bytes: 0 },
    )
}

fn add_net_stats(into: &mut NetStats, from: &NetStats) {
    into.injected += from.injected;
    into.delivered += from.delivered;
    into.delivered_bytes += from.delivered_bytes;
    into.dropped_queue += from.dropped_queue;
    into.dropped_fault += from.dropped_fault;
    into.dropped_filter += from.dropped_filter;
    into.dropped_ttl += from.dropped_ttl;
    into.dropped_no_route += from.dropped_no_route;
    into.dropped_node_down += from.dropped_node_down;
    into.latency_sum += from.latency_sum;
}

impl Network {
    /// Counters from the most recent sharded run, if any.
    pub fn shard_report(&self) -> Option<ShardReport> {
        self.shard_report
    }

    /// Run under the sharded engine with up to `shards` shards.
    ///
    /// Byte-identical to [`Network::run_sequential`] for hooks honouring
    /// the engine contract (commands only from tap/timer callbacks); see
    /// the module docs. Falls back to the sequential loop when the
    /// simulation cannot be partitioned (packets already in flight).
    pub fn run_sharded(&mut self, hooks: &mut dyn SimHooks, until: Option<SimTime>, shards: usize) {
        // Splitting moves per-direction link state between networks, which
        // is only sound while no packet is queued or on the wire.
        let splittable = (0..self.link_count()).all(|l| self.link(LinkId(l)).is_quiescent());
        let pending = if splittable { self.queue.drain_sorted() } else { Vec::new() };
        let only_roots =
            pending.iter().all(|(_, e)| matches!(e, Event::Inject { .. } | Event::Timer { .. } | Event::Chaos { .. }));
        if !splittable || !only_roots || self.node_count() == 0 {
            for (k, e) in pending {
                self.queue.schedule(k, e);
            }
            self.shard_report = Some(ShardReport { shards: 1, fell_back: true, ..Default::default() });
            self.run_sequential(hooks, until);
            return;
        }

        let plan = ShardPlan::compute(self, shards);
        let n = plan.shards;
        let owner = &plan.owner;

        // With null hooks a tap fires a no-op, so tapped links need no
        // serialization — they neither bound the lookahead nor force
        // serial phases, and the shard copies simply drop the tap flags.
        let enabled = !hooks.is_null();
        let mut cross = vec![false; self.link_count()];
        let mut min_prop = u64::MAX;
        for (li, c) in cross.iter_mut().enumerate() {
            let l = self.link(LinkId(li));
            *c = owner[l.a.0] != owner[l.b.0];
            if *c || (enabled && self.tapped[li]) {
                min_prop = min_prop.min(l.propagation.as_nanos());
            }
        }
        // Any event dispatched at `t` schedules its earliest cross-shard
        // or tapped arrival no sooner than `t + 1 (serialization floor) +
        // propagation`, so windows of this length never miss one.
        let lookahead = min_prop.saturating_add(1);

        // Carve the master network into shard slices.
        let now0 = self.queue.now();
        let states: Vec<ShardState> = (0..n)
            .map(|s| {
                let s = s as u32;
                let mut net = Network::new(self.seed);
                net.queue.set_now(now0);
                net.nodes = self
                    .nodes
                    .iter_mut()
                    .enumerate()
                    .map(|(i, node)| {
                        if owner[i] == s {
                            std::mem::replace(node, stub_node(i))
                        } else {
                            stub_node(i)
                        }
                    })
                    .collect();
                net.links = self
                    .links
                    .iter_mut()
                    .enumerate()
                    .map(|(li, link)| {
                        if cross[li] {
                            if owner[link.a.0] == s || owner[link.b.0] == s {
                                link.shard_clone()
                            } else {
                                stub_link(link)
                            }
                        } else if owner[link.a.0] == s {
                            let stub = stub_link(link);
                            std::mem::replace(link, stub)
                        } else {
                            stub_link(link)
                        }
                    })
                    .collect();
                net.tapped =
                    if enabled { self.tapped.clone() } else { vec![false; self.tapped.len()] };
                let mut sp = Splice::new(net.links.len() * 2);
                for (li, l) in net.links.iter().enumerate() {
                    if cross[li] {
                        if owner[l.a.0] == s {
                            sp.remote[li * 2] = owner[l.b.0];
                        }
                        if owner[l.b.0] == s {
                            sp.remote[li * 2 + 1] = owner[l.a.0];
                        }
                    }
                }
                net.splice = Some(Box::new(sp));
                ShardState { net, log: WindowLog::new(enabled) }
            })
            .collect();
        let cells: Vec<Mutex<ShardState>> = states.into_iter().map(Mutex::new).collect();

        // Distribute the pending root schedule: injections to their owning
        // shard, timers and chaos transitions back to the master queue.
        for (key, ev) in pending {
            match ev {
                Event::Inject { node, packet } => {
                    cells[owner[node.0] as usize]
                        .lock()
                        .expect("shard poisoned")
                        .net
                        .queue
                        .schedule(key, Event::Inject { node, packet });
                }
                ev => self.queue.schedule(key, ev),
            }
        }

        let mut report = ShardReport { shards: n, lookahead_ns: lookahead, ..Default::default() };
        let workers = crate::par::worker_count(n);
        let ctrl = Ctrl::default();
        std::thread::scope(|scope| {
            if workers > 1 {
                for w in 0..workers {
                    let range = worker_range(n, workers, w);
                    let (cells, ctrl) = (&cells, &ctrl);
                    scope.spawn(move || worker_loop(cells, range, ctrl));
                }
            }
            self.coordinate(hooks, until, &cells, owner, workers, &ctrl, &mut report);
            let mut g = ctrl.state.lock().expect("ctrl poisoned");
            g.quit = true;
            drop(g);
            ctrl.work.notify_all();
        });

        // Reassemble the master network from the shard slices.
        let mut final_now = self.queue.now();
        let mut leftovers: Vec<(EventKey, Event)> = Vec::new();
        for (s, cell) in cells.into_iter().enumerate() {
            let s = s as u32;
            let st = cell.into_inner().expect("shard poisoned");
            let Network { nodes, links, mut queue, stats, obs, mut pool, .. } = st.net;
            final_now = final_now.max(queue.now());
            leftovers.extend(queue.drain_sorted());
            add_net_stats(&mut self.stats, &stats);
            self.obs.merge_from(&obs);
            self.pool.append(&mut pool);
            for (i, node) in nodes.into_iter().enumerate() {
                if owner[i] == s {
                    self.nodes[i] = node;
                }
            }
            for (li, mut link) in links.into_iter().enumerate() {
                if cross[li] {
                    if owner[link.a.0] == s {
                        self.links[li].adopt_dir(Dir::AtoB, &mut link);
                    }
                    if owner[link.b.0] == s {
                        self.links[li].adopt_dir(Dir::BtoA, &mut link);
                    }
                } else if owner[link.a.0] == s {
                    self.links[li] = link;
                }
            }
        }
        self.pool.truncate(PACKET_POOL_CAP);
        self.queue.set_now(final_now);
        leftovers.sort_unstable_by_key(|e| e.0);
        for (k, e) in leftovers {
            self.queue.schedule(k, e);
        }
        self.shard_report = Some(report);
    }

    /// The conservative window / serial-phase alternation at the heart of
    /// the engine. `self` is the master: it holds the root-event queue
    /// (timers, chaos) and the root sequence counter.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one run
    fn coordinate(
        &mut self,
        hooks: &mut dyn SimHooks,
        until: Option<SimTime>,
        cells: &[Mutex<ShardState>],
        owner: &[u32],
        workers: usize,
        ctrl: &Ctrl,
        report: &mut ShardReport,
    ) {
        let until_cap = until.map(|u| u.as_nanos().saturating_add(1)).unwrap_or(u64::MAX);
        let lookahead = report.lookahead_ns;
        loop {
            let mut t_shard = u64::MAX;
            let mut t_tap = u64::MAX;
            for cell in cells {
                let mut st = cell.lock().expect("shard poisoned");
                if let Some(t) = st.net.queue.peek_time() {
                    t_shard = t_shard.min(t.0);
                }
                if let Some(t) = st.net.splice.as_ref().expect("shard without splice").next_tap_time()
                {
                    t_tap = t_tap.min(t);
                }
            }
            let t_master = self.queue.peek_time().map(|t| t.0).unwrap_or(u64::MAX);
            let t = t_shard.min(t_master);
            if t >= until_cap || t == u64::MAX {
                break;
            }
            let cap = t.saturating_add(lookahead).min(t_master).min(t_tap).min(until_cap);
            if cap > t {
                report.windows += 1;
                run_windows(cells, cap, workers, ctrl);
                replay_window_hooks(self, cells, owner, hooks, report);
            } else {
                report.serial_phases += 1;
                self.serial_phase(hooks, cells, owner, t, report);
            }
            route_outboxes(cells, report);
        }
    }

    /// Dispatch every event at exactly instant `t`, one at a time in
    /// canonical key order across the master and all shard queues, with
    /// live hooks and immediate command routing — the sequential loop,
    /// narrowed to one instant. Commands that schedule new work at `t`
    /// are picked up within the same phase, exactly as sequential
    /// execution would.
    fn serial_phase(
        &mut self,
        hooks: &mut dyn SimHooks,
        cells: &[Mutex<ShardState>],
        owner: &[u32],
        t: u64,
        report: &mut ShardReport,
    ) {
        let mut cmds = Commands::default();
        loop {
            let mut best: Option<(EventKey, usize)> = self
                .queue
                .peek_key()
                .filter(|k| k.time.0 == t)
                .map(|k| (k, usize::MAX));
            for (i, cell) in cells.iter().enumerate() {
                let mut st = cell.lock().expect("shard poisoned");
                if let Some(k) = st.net.queue.peek_key() {
                    if k.time.0 == t && best.is_none_or(|(b, _)| k < b) {
                        best = Some((k, i));
                    }
                }
            }
            let Some((_, src)) = best else { break };
            if src == usize::MAX {
                let (key, ev) = self.queue.pop().expect("peeked event vanished");
                let chaos = if let Event::Chaos { action } = &ev { Some(*action) } else { None };
                self.dispatch(key.time, ev, hooks, &mut cmds);
                if let Some(action) = chaos {
                    // Fault state is replicated: every shard's copy of the
                    // affected element flips, but telemetry counts once
                    // (on the master, in `dispatch` above).
                    for cell in cells {
                        cell.lock().expect("shard poisoned").net.apply_chaos_quiet(action);
                    }
                }
            } else {
                let mut st = cells[src].lock().expect("shard poisoned");
                let (key, ev) = st.net.queue.pop().expect("peeked event vanished");
                if let Event::Arrive { link, .. } = &ev {
                    if st.net.tapped[link.0] {
                        let popped =
                            st.net.splice.as_mut().expect("shard without splice").tap_times.pop();
                        debug_assert_eq!(popped, Some(Reverse(key.time.0)));
                    }
                }
                st.net.dispatch(key.time, ev, hooks, &mut cmds);
            }
            if !cmds.items.is_empty() {
                route_commands(self, cells, owner, std::mem::take(&mut cmds.items), Some(SimTime(t)), report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::worker_range;

    /// Every `(n, workers)` combination with `workers <= n` must yield
    /// exactly `workers` non-empty ranges tiling `0..n`: `run_windows`
    /// waits for `workers` completions, so a skipped worker deadlocks the
    /// first parallel window (regression: ceil-chunking left the third of
    /// three workers empty at 4 shards, hanging any 3-core run).
    #[test]
    fn worker_ranges_tile_without_empties() {
        for n in 1..=32 {
            for workers in 1..=n {
                let mut next = 0;
                for w in 0..workers {
                    let r = worker_range(n, workers, w);
                    assert_eq!(r.start, next, "gap or overlap at n={n} workers={workers} w={w}");
                    assert!(!r.is_empty(), "empty range at n={n} workers={workers} w={w}");
                    next = r.end;
                }
                assert_eq!(next, n, "ranges do not cover 0..{n} with {workers} workers");
            }
        }
    }
}
