//! The network: nodes + links + the event loop that moves packets.
//!
//! User code observes and steers a running simulation through the
//! [`SimHooks`] trait. Hooks receive immutable views of simulator state and
//! push [`Command`]s, which the loop applies after each callback — this
//! keeps the borrow structure simple and every run deterministic.

use crate::chaos::ChaosAction;
use crate::event::{EventKey, EventQueue};
use crate::link::{Dir, Link, LinkId, Offer};
use crate::node::{FilterAction, Node, NodeId, NodeKind, PacketFilter};
use crate::observe::NetObs;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// Retired `Box<Packet>` allocations kept for reuse; bounds the arena so
/// a burst does not pin memory forever.
pub(crate) const PACKET_POOL_CAP: usize = 8192;

/// Why a packet failed to reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Queue discipline rejected it (congestion).
    Queue,
    /// Link fault model rejected it (loss or outage).
    Fault,
    /// An ingress packet program dropped it.
    Filter,
    /// TTL expired in transit.
    Ttl,
    /// No route to the destination.
    NoRoute,
    /// The node it arrived at (or departed from) was down.
    NodeDown,
}

/// Aggregate simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetStats {
    pub injected: u64,
    pub delivered: u64,
    pub delivered_bytes: u64,
    pub dropped_queue: u64,
    pub dropped_fault: u64,
    pub dropped_filter: u64,
    pub dropped_ttl: u64,
    pub dropped_no_route: u64,
    pub dropped_node_down: u64,
    /// Sum of end-to-end latencies over delivered packets.
    pub latency_sum: SimDuration,
}

impl NetStats {
    /// Total drops across all causes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_queue
            + self.dropped_fault
            + self.dropped_filter
            + self.dropped_ttl
            + self.dropped_no_route
            + self.dropped_node_down
    }

    /// Mean end-to-end latency of delivered packets.
    pub fn mean_latency(&self) -> SimDuration {
        if self.delivered == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.latency_sum.as_nanos() / self.delivered)
    }

    /// Delivered fraction of injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.injected as f64
    }
}

/// Deferred mutations pushed by hooks and applied by the event loop.
pub enum Command {
    /// Attach (or replace) the ingress program on a node.
    InstallFilter(NodeId, Box<dyn PacketFilter>),
    /// Detach the ingress program from a node.
    RemoveFilter(NodeId),
    /// Fire `on_timer` with this token at the given instant.
    SetTimer(SimTime, u64),
    /// Inject a packet at a node at the given instant.
    Inject(SimTime, NodeId, Packet),
}

/// Command buffer handed to every hook invocation.
#[derive(Default)]
pub struct Commands {
    pub(crate) items: Vec<Command>,
}

impl Commands {
    /// Attach (or replace) a node's ingress program.
    pub fn install_filter(&mut self, node: NodeId, filter: Box<dyn PacketFilter>) {
        self.items.push(Command::InstallFilter(node, filter));
    }

    /// Detach a node's ingress program.
    pub fn remove_filter(&mut self, node: NodeId) {
        self.items.push(Command::RemoveFilter(node));
    }

    /// Request an `on_timer` callback at `at`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.items.push(Command::SetTimer(at, token));
    }

    /// Inject a packet from `node` at `at`.
    pub fn inject(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        self.items.push(Command::Inject(at, node, packet));
    }
}

/// Observation and steering callbacks for a running simulation.
///
/// All methods have empty defaults; implement only what you need.
#[allow(unused_variables)]
pub trait SimHooks {
    /// A packet finished traversing a tapped link (what a physical optical
    /// tap feeding a capture appliance would see).
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {}

    /// A packet reached its destination host.
    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
    }

    /// A packet was dropped.
    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {}

    /// A timer requested via [`Commands::set_timer`] fired.
    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {}

    /// True when every callback is a no-op ([`NullHooks`]). The sharded
    /// engine skips hook logging entirely for such runs.
    fn is_null(&self) -> bool {
        false
    }
}

/// A no-op hook set for runs that only need final statistics.
pub struct NullHooks;

impl SimHooks for NullHooks {
    fn is_null(&self) -> bool {
        true
    }
}

/// Events keep packets boxed so a heap entry is pointer-sized: sifting
/// the binary heap moves words, not whole packets.
pub(crate) enum Event {
    Inject { node: NodeId, packet: Box<Packet> },
    TxDone { link: LinkId, dir: Dir },
    Arrive { link: LinkId, dir: Dir, packet: Box<Packet> },
    Timer { token: u64 },
    /// A chaos-plan fault transition (link flap, node crash/recover,
    /// brownout). Riding the same queue as packet events keeps chaos runs
    /// byte-deterministic: the transition lands at exactly one canonical
    /// key regardless of how the run is driven.
    Chaos { action: ChaosAction },
}

/// The simulated campus network.
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) tapped: Vec<bool>,
    /// The seed per-direction link RNG streams derive from.
    pub(crate) seed: u64,
    /// Root-event counter: injections, timers and chaos transitions are
    /// numbered in program order, which is the canonical tie-break for
    /// simultaneous stimuli.
    pub(crate) root_seq: u64,
    /// Retired packet boxes reused by [`Network::inject`]-style paths.
    /// Deliberately `Box<Packet>`: the pool exists to recycle the heap
    /// allocation itself, which events carry by pointer.
    #[allow(clippy::vec_box)]
    pub(crate) pool: Vec<Box<Packet>>,
    /// Present only while this network runs as one shard of a sharded
    /// execution: cross-shard routing tables, the outbox, and the hook log
    /// (see `crate::shard`).
    pub(crate) splice: Option<Box<crate::shard::Splice>>,
    /// Counters from the most recent sharded run (see `crate::shard`).
    pub(crate) shard_report: Option<crate::shard::ShardReport>,
    pub stats: NetStats,
    /// Observatory sink: the same counters as `stats` plus histograms and
    /// chaos/event telemetry, renderable as a deterministic metrics dump.
    pub obs: NetObs,
}

impl Network {
    /// Build an empty network with a deterministic RNG seed (used by RED
    /// and the fault models).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(),
            tapped: Vec::new(),
            seed,
            root_seq: 0,
            pool: Vec::new(),
            splice: None,
            shard_report: None,
            stats: NetStats::default(),
            obs: NetObs::new(),
        }
    }

    /// Add a node; used by the topology builder.
    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        debug_assert_eq!(node.id, id);
        self.nodes.push(node);
        id
    }

    /// Add a link; used by the topology builder.
    pub(crate) fn push_link(&mut self, mut link: Link) -> LinkId {
        let id = LinkId(self.links.len());
        debug_assert_eq!(link.id, id);
        link.reseed_dirs(self.seed);
        self.nodes[link.a.0].ports.push(id);
        self.nodes[link.b.0].ports.push(id);
        self.links.push(link);
        self.tapped.push(false);
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Mutable link accessor.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Look up a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Mark a link as tapped: every packet completing a traversal of it is
    /// reported through [`SimHooks::on_tap`].
    pub fn set_tap(&mut self, link: LinkId, enabled: bool) {
        self.tapped[link.0] = enabled;
    }

    /// The canonical key of the next root event at `time`.
    pub(crate) fn next_root_key(&mut self, time: SimTime) -> EventKey {
        let key = EventKey::root(time, self.root_seq);
        self.root_seq += 1;
        key
    }

    /// Box a packet, reusing a retired allocation when one is pooled.
    pub(crate) fn box_packet(&mut self, packet: Packet) -> Box<Packet> {
        match self.pool.pop() {
            Some(mut b) => {
                *b = packet;
                b
            }
            None => Box::new(packet),
        }
    }

    /// Retire a packet box into the reuse pool.
    fn retire(&mut self, packet: Box<Packet>) {
        if self.pool.len() < PACKET_POOL_CAP {
            self.pool.push(packet);
        }
    }

    /// Schedule a packet injection: the packet departs `node` at `at`.
    ///
    /// The packet is boxed here, once; from this point it moves through
    /// queues, events and hooks as a pointer and is never copied.
    pub fn inject(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        let key = self.next_root_key(at);
        let packet = self.box_packet(packet);
        self.queue.schedule(key, Event::Inject { node, packet });
    }

    /// Schedule an `on_timer` callback.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        let key = self.next_root_key(at);
        self.queue.schedule(key, Event::Timer { token });
    }

    /// Schedule a chaos fault transition; usually called via
    /// [`crate::chaos::ChaosPlan::apply_to`].
    pub fn schedule_chaos(&mut self, at: SimTime, action: ChaosAction) {
        let key = self.next_root_key(at);
        self.queue.schedule(key, Event::Chaos { action });
    }

    /// Mutate fault state for a chaos transition, without telemetry.
    /// The sharded coordinator applies one transition to every shard's
    /// copy of the affected element but counts it only once.
    pub(crate) fn apply_chaos_quiet(&mut self, action: ChaosAction) {
        match action {
            ChaosAction::LinkDown(l) => self.links[l.0].fault.forced_down = true,
            ChaosAction::LinkUp(l) => self.links[l.0].fault.forced_down = false,
            ChaosAction::NodeDown(n) => self.nodes[n.0].forced_down = true,
            ChaosAction::NodeUp(n) => self.nodes[n.0].forced_down = false,
            ChaosAction::BrownoutStart { link, factor } => {
                self.links[link.0].fault.rate_factor = factor.clamp(0.0, 1.0);
            }
            ChaosAction::BrownoutEnd(link) => self.links[link.0].fault.rate_factor = 1.0,
        }
    }

    /// Apply a chaos transition immediately.
    fn apply_chaos(&mut self, action: ChaosAction) {
        self.obs.on_chaos(&action);
        self.apply_chaos_quiet(action);
    }

    /// Attach an ingress packet program to a node immediately.
    pub fn install_filter(&mut self, node: NodeId, filter: Box<dyn PacketFilter>) {
        self.nodes[node.0].filter = Some(filter);
    }

    /// Detach a node's ingress program immediately.
    pub fn remove_filter(&mut self, node: NodeId) {
        self.nodes[node.0].filter = None;
    }

    /// Run until the event queue drains or the clock passes `until`.
    ///
    /// When the `CAMPUSLAB_SHARDS` environment variable is set to `n ≥ 1`,
    /// the run is transparently routed through the sharded engine with `n`
    /// shards; the determinism contract guarantees identical results.
    pub fn run(&mut self, hooks: &mut dyn SimHooks, until: Option<SimTime>) {
        if let Some(n) = crate::shard::shards_from_env() {
            self.run_sharded(hooks, until, n);
            return;
        }
        self.run_sequential(hooks, until);
    }

    /// The single-queue event loop (also the fallback engine for
    /// topologies the partitioner cannot split).
    pub fn run_sequential(&mut self, hooks: &mut dyn SimHooks, until: Option<SimTime>) {
        let mut cmds = Commands::default();
        while let Some(t) = self.queue.peek_time() {
            if let Some(u) = until {
                if t > u {
                    break;
                }
            }
            let (key, event) = self.queue.pop().expect("peeked event vanished");
            self.dispatch(key.time, event, hooks, &mut cmds);
            self.apply(std::mem::take(&mut cmds.items));
        }
    }

    /// Timestamp of the next pending event, or `None` when the queue is
    /// drained. Lets a windowed multiplexer (the plaza scheduler) decide
    /// whether a deadline-capped [`Network::run`] left work behind.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run to completion with no observers; returns final statistics.
    pub fn run_to_completion(&mut self) -> NetStats {
        self.run(&mut NullHooks, None);
        self.stats
    }

    pub(crate) fn apply(&mut self, items: Vec<Command>) {
        for cmd in items {
            match cmd {
                Command::InstallFilter(node, filter) => self.install_filter(node, filter),
                Command::RemoveFilter(node) => self.remove_filter(node),
                Command::SetTimer(at, token) => self.set_timer(at, token),
                Command::Inject(at, node, packet) => self.inject(at, node, packet),
            }
        }
    }

    pub(crate) fn dispatch(&mut self, now: SimTime, event: Event, hooks: &mut dyn SimHooks, cmds: &mut Commands) {
        self.obs.on_event();
        match event {
            Event::Inject { node, mut packet } => {
                self.stats.injected += 1;
                self.obs.on_inject();
                // Injection time rides in the packet: end-to-end latency
                // needs no side lookup table keyed by packet id.
                packet.injected_at = now;
                if self.nodes[node.0].is_down(now) {
                    self.drop_node_down(now, node, packet, hooks, cmds);
                    return;
                }
                self.forward(now, node, packet, hooks, cmds);
            }
            Event::TxDone { link, dir } => {
                if self.links[link.0].has_backlog(dir) {
                    self.begin_transmission(now, link, dir);
                }
            }
            Event::Arrive { link, dir, packet } => {
                if self.tapped[link.0] {
                    hooks.on_tap(now, link, dir, &packet, cmds);
                }
                let node = self.links[link.0].dst_node(dir);
                self.receive(now, node, packet, hooks, cmds);
            }
            Event::Timer { token } => hooks.on_timer(now, token, cmds),
            Event::Chaos { action } => self.apply_chaos(action),
        }
    }

    /// Count and report a packet swallowed by a down node.
    fn drop_node_down(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: Box<Packet>,
        hooks: &mut dyn SimHooks,
        cmds: &mut Commands,
    ) {
        self.nodes[node.0].stats.dropped_node_down += 1;
        self.stats.dropped_node_down += 1;
        self.obs.on_drop(DropReason::NodeDown);
        hooks.on_drop(now, DropReason::NodeDown, &packet, cmds);
        self.retire(packet);
    }

    /// A packet arrives at `node` from the wire.
    fn receive(
        &mut self,
        now: SimTime,
        node: NodeId,
        mut packet: Box<Packet>,
        hooks: &mut dyn SimHooks,
        cmds: &mut Commands,
    ) {
        // A down node swallows everything before its pipeline runs.
        if self.nodes[node.0].is_down(now) {
            self.drop_node_down(now, node, packet, hooks, cmds);
            return;
        }
        // Ingress program first, exactly like a programmable ASIC.
        if let Some(filter) = self.nodes[node.0].filter.as_mut() {
            if filter.decide(now, &packet) == FilterAction::Drop {
                self.nodes[node.0].stats.dropped_filter += 1;
                self.stats.dropped_filter += 1;
                self.obs.on_drop(DropReason::Filter);
                hooks.on_drop(now, DropReason::Filter, &packet, cmds);
                self.retire(packet);
                return;
            }
        }
        match &self.nodes[node.0].kind {
            NodeKind::Host { .. } => {
                // Hosts sink everything addressed to them; anything else is
                // a routing error.
                if self.nodes[node.0].owns_address(packet.network.dst()) {
                    let n = &mut self.nodes[node.0];
                    n.stats.received += 1;
                    n.stats.received_bytes += packet.wire_len() as u64;
                    self.stats.delivered += 1;
                    self.stats.delivered_bytes += packet.wire_len() as u64;
                    let latency = now - packet.injected_at;
                    self.stats.latency_sum += latency;
                    self.obs.on_deliver(packet.wire_len() as u64, latency.as_nanos());
                    hooks.on_deliver(now, node, &packet, latency, cmds);
                } else {
                    self.nodes[node.0].stats.dropped_no_route += 1;
                    self.stats.dropped_no_route += 1;
                    self.obs.on_drop(DropReason::NoRoute);
                    hooks.on_drop(now, DropReason::NoRoute, &packet, cmds);
                }
                self.retire(packet);
            }
            NodeKind::Switch { .. } => {
                if !packet.network.decrement_ttl() {
                    self.nodes[node.0].stats.dropped_ttl += 1;
                    self.stats.dropped_ttl += 1;
                    self.obs.on_drop(DropReason::Ttl);
                    hooks.on_drop(now, DropReason::Ttl, &packet, cmds);
                    self.retire(packet);
                    return;
                }
                self.nodes[node.0].stats.forwarded += 1;
                self.forward(now, node, packet, hooks, cmds);
            }
        }
    }

    /// Route `packet` out of `node` and offer it to the next link.
    fn forward(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: Box<Packet>,
        hooks: &mut dyn SimHooks,
        cmds: &mut Commands,
    ) {
        let Some(link_id) = self.nodes[node.0].route_cached(packet.network.dst()) else {
            self.nodes[node.0].stats.dropped_no_route += 1;
            self.stats.dropped_no_route += 1;
            self.obs.on_drop(DropReason::NoRoute);
            hooks.on_drop(now, DropReason::NoRoute, &packet, cmds);
            self.retire(packet);
            return;
        };
        let link = &mut self.links[link_id.0];
        let dir = link.dir_from(node);
        // The link hands a rejected packet back, so the happy path moves
        // the packet by value with no speculative clone.
        match link.offer(dir, packet, now) {
            Offer::StartedTransmit => {
                self.obs.on_enqueue_depth(self.links[link_id.0].queued_bytes(dir) as u64);
                self.begin_transmission(now, link_id, dir);
            }
            Offer::Queued => {
                self.obs.on_enqueue_depth(self.links[link_id.0].queued_bytes(dir) as u64);
            }
            Offer::DroppedQueue(packet) => {
                self.stats.dropped_queue += 1;
                self.obs.on_drop(DropReason::Queue);
                hooks.on_drop(now, DropReason::Queue, &packet, cmds);
                self.retire(packet);
            }
            Offer::DroppedFault(packet) => {
                self.stats.dropped_fault += 1;
                self.obs.on_drop(DropReason::Fault);
                hooks.on_drop(now, DropReason::Fault, &packet, cmds);
                self.retire(packet);
            }
        }
    }

    fn begin_transmission(&mut self, now: SimTime, link: LinkId, dir: Dir) {
        if let Some((packet, tx, total, seq)) = self.links[link.0].start_transmit(dir, now) {
            let lane = (link.0 * 2 + dir.index()) as u32;
            self.queue
                .schedule(EventKey::tx_done(now + tx, lane, seq), Event::TxDone { link, dir });
            let at = now + total;
            let key = EventKey::arrive(at, lane, seq);
            if let Some(sp) = self.splice.as_mut() {
                // Cross-shard wire: the arrival belongs to the receiving
                // shard and is exchanged at the window barrier. The
                // transmit-complete above stays local (the transmitter is
                // ours either way).
                if let Some(dst_shard) = sp.remote_shard(lane) {
                    sp.outbox.push(crate::shard::CrossPacket {
                        dst_shard,
                        key,
                        link,
                        dir,
                        packet,
                    });
                    return;
                }
                if self.tapped[link.0] {
                    sp.note_tapped_arrival(at);
                }
            }
            self.queue.schedule(key, Event::Arrive { link, dir, packet });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::QueueDiscipline;
    use crate::lpm::Prefix;
    use crate::packet::{GroundTruth, PacketBuilder, Payload};
    use crate::time::SimDuration;
    use std::net::Ipv4Addr;

    /// h1 -- s1 -- h2, 1 Gbps links, 10 us propagation each.
    fn tiny_net() -> (Network, NodeId, NodeId, NodeId, LinkId, LinkId) {
        let mut net = Network::new(7);
        let h1 = net.push_node(Node::host(NodeId(0), "h1", vec!["10.0.0.1".parse().unwrap()]));
        let s1 = net.push_node(Node::switch(NodeId(1), "s1"));
        let h2 = net.push_node(Node::host(NodeId(2), "h2", vec!["10.0.0.2".parse().unwrap()]));
        let l1 = net.push_link(Link::new(
            LinkId(0),
            h1,
            s1,
            1_000_000_000,
            SimDuration::from_micros(10),
            QueueDiscipline::DropTail { capacity_bytes: 1_000_000 },
        ));
        let l2 = net.push_link(Link::new(
            LinkId(1),
            s1,
            h2,
            1_000_000_000,
            SimDuration::from_micros(10),
            QueueDiscipline::DropTail { capacity_bytes: 1_000_000 },
        ));
        if let NodeKind::Host { gateway, .. } = &mut net.nodes[h1.0].kind {
            *gateway = Some(l1);
        }
        if let NodeKind::Host { gateway, .. } = &mut net.nodes[h2.0].kind {
            *gateway = Some(l2);
        }
        net.nodes[s1.0].install_route(Prefix::v4(Ipv4Addr::new(10, 0, 0, 2), 32), l2);
        net.nodes[s1.0].install_route(Prefix::v4(Ipv4Addr::new(10, 0, 0, 1), 32), l1);
        (net, h1, s1, h2, l1, l2)
    }

    fn test_packet(bytes: usize) -> Packet {
        let mut b = PacketBuilder::new();
        b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            Payload::Synthetic(bytes),
            64,
            GroundTruth::default(),
        )
    }

    #[test]
    fn packet_crosses_two_links() {
        let (mut net, h1, _, h2, _, _) = tiny_net();
        net.inject(SimTime::ZERO, h1, test_packet(958));
        let stats = net.run_to_completion();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(net.node(h2).stats.received, 1);
        // Two 8 us serializations + two 10 us propagations = 36 us.
        assert_eq!(stats.mean_latency(), SimDuration::from_micros(36));
    }

    #[test]
    fn hooks_see_tap_and_delivery() {
        struct Observer {
            taps: u64,
            delivers: u64,
        }
        impl SimHooks for Observer {
            fn on_tap(&mut self, _: SimTime, _: LinkId, _: Dir, _: &Packet, _: &mut Commands) {
                self.taps += 1;
            }
            fn on_deliver(
                &mut self,
                _: SimTime,
                _: NodeId,
                _: &Packet,
                _: SimDuration,
                _: &mut Commands,
            ) {
                self.delivers += 1;
            }
        }
        let (mut net, h1, _, _, _, l2) = tiny_net();
        net.set_tap(l2, true);
        for i in 0..5 {
            net.inject(SimTime::from_micros(i * 100), h1, test_packet(100));
        }
        let mut obs = Observer { taps: 0, delivers: 0 };
        net.run(&mut obs, None);
        assert_eq!(obs.taps, 5);
        assert_eq!(obs.delivers, 5);
    }

    #[test]
    fn filter_drops_at_ingress() {
        struct DropUdp;
        impl PacketFilter for DropUdp {
            fn decide(&mut self, _: SimTime, p: &Packet) -> FilterAction {
                if p.transport.dst_port() == Some(2000) {
                    FilterAction::Drop
                } else {
                    FilterAction::Forward
                }
            }
        }
        let (mut net, h1, s1, h2, _, _) = tiny_net();
        net.install_filter(s1, Box::new(DropUdp));
        net.inject(SimTime::ZERO, h1, test_packet(100));
        let stats = net.run_to_completion();
        assert_eq!(stats.dropped_filter, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(net.node(h2).stats.received, 0);
        assert_eq!(net.node(s1).stats.dropped_filter, 1);
    }

    #[test]
    fn filter_installed_mid_run_via_commands() {
        struct DropAll;
        impl PacketFilter for DropAll {
            fn decide(&mut self, _: SimTime, _: &Packet) -> FilterAction {
                FilterAction::Drop
            }
        }
        struct Installer {
            switch: NodeId,
            installed: bool,
        }
        impl SimHooks for Installer {
            fn on_timer(&mut self, _: SimTime, token: u64, cmds: &mut Commands) {
                assert_eq!(token, 42);
                cmds.install_filter(self.switch, Box::new(DropAll));
                self.installed = true;
            }
        }
        let (mut net, h1, s1, _, _, _) = tiny_net();
        // One packet before the filter lands, one after.
        net.inject(SimTime::ZERO, h1, test_packet(100));
        net.set_timer(SimTime::from_millis(1), 42);
        net.inject(SimTime::from_millis(2), h1, test_packet(100));
        let mut hooks = Installer { switch: s1, installed: false };
        net.run(&mut hooks, None);
        assert!(hooks.installed);
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.dropped_filter, 1);
    }

    #[test]
    fn no_route_is_counted() {
        let (mut net, h1, _, _, _, _) = tiny_net();
        let mut b = PacketBuilder::new();
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 99), // no route on s1
            1, 2, Payload::Synthetic(10), 64, GroundTruth::default(),
        );
        net.inject(SimTime::ZERO, h1, pkt);
        let stats = net.run_to_completion();
        assert_eq!(stats.dropped_no_route, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn ttl_expiry_is_counted() {
        let (mut net, h1, _, _, _, _) = tiny_net();
        let mut b = PacketBuilder::new();
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1, 2, Payload::Synthetic(10), 1, GroundTruth::default(),
        );
        net.inject(SimTime::ZERO, h1, pkt);
        let stats = net.run_to_completion();
        assert_eq!(stats.dropped_ttl, 1);
    }

    #[test]
    fn congestion_drops_under_overload() {
        // Squeeze a 1 Gbps burst through a 10 Mbps access link with a tiny
        // buffer: most packets must drop.
        let (mut net, h1, _, _, l1, _) = tiny_net();
        net.link_mut(l1).rate_bps = 10_000_000;
        let mut builder = PacketBuilder::new();
        for _ in 0..1000 {
            let pkt = builder.udp_v4(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1, 2, Payload::Synthetic(1458), 64, GroundTruth::default(),
            );
            net.inject(SimTime::ZERO, h1, pkt);
        }
        // Shrink the buffer after construction for the test.
        let stats = net.run_to_completion();
        assert_eq!(stats.injected, 1000);
        assert_eq!(stats.delivered + stats.dropped_total(), 1000);
        // 1000 * 1500B = 1.5 MB burst > 1 MB buffer: some drops expected.
        assert!(stats.dropped_queue > 0, "expected queue drops, got {stats:?}");
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = || {
            let (mut net, h1, _, _, l1, _) = tiny_net();
            net.link_mut(l1).fault.drop_probability = 0.3;
            let mut b = PacketBuilder::new();
            for i in 0..500u64 {
                let pkt = b.udp_v4(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    1, 2, Payload::Synthetic(100), 64, GroundTruth::default(),
                );
                net.inject(SimTime::from_micros(i * 17), h1, pkt);
            }
            net.run_to_completion()
        };
        assert_eq!(run(), run());
    }

    /// The Observatory mirrors NetStats: the two accounting surfaces are
    /// bumped at the same sites and must never disagree.
    #[test]
    fn obs_counters_agree_with_netstats() {
        let (mut net, h1, s1, _, l1, _) = tiny_net();
        net.link_mut(l1).fault.drop_probability = 0.2;
        struct DropOdd;
        impl PacketFilter for DropOdd {
            fn decide(&mut self, _: SimTime, p: &Packet) -> FilterAction {
                if p.transport.src_port() == Some(1001) {
                    FilterAction::Drop
                } else {
                    FilterAction::Forward
                }
            }
        }
        net.install_filter(s1, Box::new(DropOdd));
        let mut b = PacketBuilder::new();
        for i in 0..300u64 {
            let pkt = b.udp_v4(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000 + (i % 2) as u16, 2000,
                Payload::Synthetic(120), 64, GroundTruth::default(),
            );
            net.inject(SimTime::from_micros(i * 13), h1, pkt);
        }
        let stats = net.run_to_completion();
        let obs = &net.obs;
        assert_eq!(obs.injected(), stats.injected);
        assert_eq!(obs.delivered(), stats.delivered);
        assert_eq!(obs.delivered_bytes(), stats.delivered_bytes);
        assert_eq!(obs.dropped(DropReason::Queue), stats.dropped_queue);
        assert_eq!(obs.dropped(DropReason::Fault), stats.dropped_fault);
        assert_eq!(obs.dropped(DropReason::Filter), stats.dropped_filter);
        assert_eq!(obs.dropped(DropReason::Ttl), stats.dropped_ttl);
        assert_eq!(obs.dropped(DropReason::NoRoute), stats.dropped_no_route);
        assert_eq!(obs.dropped(DropReason::NodeDown), stats.dropped_node_down);
        assert_eq!(obs.dropped_total(), stats.dropped_total());
        assert!(stats.dropped_fault > 0 && stats.dropped_filter > 0, "test exercised no drops");
        // Latency histogram covers exactly the delivered packets, and its
        // sum matches the stats' latency accumulator (ns truncated to us).
        let lat = obs.latency_histogram();
        assert_eq!(lat.count(), stats.delivered);
        // Each observation truncates ns -> us, so the histogram sum brackets
        // the exact accumulator to within one us per delivered packet.
        let exact_ns = stats.latency_sum.as_nanos() as u128;
        assert!(lat.sum() * 1_000 <= exact_ns);
        assert!((lat.sum() + lat.count() as u128) * 1_000 > exact_ns);
        assert!(obs.event_seq() > stats.injected, "every injection is at least one event");
        // The dump renders and is stable.
        assert_eq!(net.obs.render(), net.obs.render());
    }

    #[test]
    fn find_node_by_name() {
        let (net, h1, s1, _, _, _) = tiny_net();
        assert_eq!(net.find_node("h1"), Some(h1));
        assert_eq!(net.find_node("s1"), Some(s1));
        assert_eq!(net.find_node("nope"), None);
    }
}
