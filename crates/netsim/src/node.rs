//! Nodes: hosts, switches and the upstream "internet" aggregation point.

use crate::link::{LinkId, Outage};
use crate::fxhash::FxHashMap;
use crate::lpm::LpmTable;
use crate::packet::Packet;
use crate::time::SimTime;
use std::net::IpAddr;

/// Identifies a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub usize);

/// The verdict of an ingress packet program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Forward normally.
    Forward,
    /// Drop at ingress.
    Drop,
}

/// An ingress packet program attached to a switch — the deployment target
/// for compiled learning models (paper §5, road-map step (iii)).
///
/// The program runs on every packet entering the switch, before routing,
/// exactly like a match-action pipeline on a programmable ASIC.
pub trait PacketFilter: Send {
    /// Decide this packet's fate.
    fn decide(&mut self, now: SimTime, packet: &Packet) -> FilterAction;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "filter"
    }
}

/// Role-specific node state.
#[derive(Debug)]
pub enum NodeKind {
    /// An end host with one or more addresses, attached by a single access
    /// link it uses as its default gateway.
    Host { addrs: Vec<IpAddr>, gateway: Option<LinkId> },
    /// A switch/router forwarding by longest-prefix match.
    Switch { routes: LpmTable<LinkId> },
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeStats {
    /// Packets delivered to this node as final destination.
    pub received: u64,
    /// Bytes delivered to this node as final destination.
    pub received_bytes: u64,
    /// Packets this node forwarded.
    pub forwarded: u64,
    /// Packets dropped because no route matched.
    pub dropped_no_route: u64,
    /// Packets dropped because the TTL expired.
    pub dropped_ttl: u64,
    /// Packets dropped by the ingress filter.
    pub dropped_filter: u64,
    /// Packets swallowed because this node was down.
    pub dropped_node_down: u64,
}

/// A node in the simulated network.
pub struct Node {
    pub id: NodeId,
    pub name: String,
    pub kind: NodeKind,
    /// Links attached to this node.
    pub ports: Vec<LinkId>,
    /// Optional ingress program (switches only, but harmless on hosts).
    pub filter: Option<Box<dyn PacketFilter>>,
    pub stats: NodeStats,
    /// Scheduled failure windows: while one covers `now`, the node drops
    /// every packet it would otherwise receive or originate.
    pub down_windows: Vec<Outage>,
    /// Chaos-driven hard-down toggle (`ChaosAction::NodeDown`/`NodeUp`).
    pub forced_down: bool,
    /// Memoized `route()` results. The LPM table is a linear scan, and a
    /// forwarding node sees the same handful of destinations over and over;
    /// cleared whenever a route is installed.
    route_cache: FxHashMap<IpAddr, Option<LinkId>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("ports", &self.ports)
            .field("filter", &self.filter.as_ref().map(|x| x.name().to_string()))
            .field("stats", &self.stats)
            .finish()
    }
}

impl Node {
    /// Create a host node.
    pub fn host(id: NodeId, name: impl Into<String>, addrs: Vec<IpAddr>) -> Self {
        Node {
            id,
            name: name.into(),
            kind: NodeKind::Host { addrs, gateway: None },
            ports: Vec::new(),
            filter: None,
            stats: NodeStats::default(),
            down_windows: Vec::new(),
            forced_down: false,
            route_cache: FxHashMap::default(),
        }
    }

    /// Create a switch node.
    pub fn switch(id: NodeId, name: impl Into<String>) -> Self {
        Node {
            id,
            name: name.into(),
            kind: NodeKind::Switch { routes: LpmTable::new() },
            ports: Vec::new(),
            filter: None,
            stats: NodeStats::default(),
            down_windows: Vec::new(),
            forced_down: false,
            route_cache: FxHashMap::default(),
        }
    }

    /// True when this node is failed at `now` (scheduled window or chaos
    /// toggle). The healthy path costs one bool and one `is_empty`.
    pub fn is_down(&self, now: SimTime) -> bool {
        self.forced_down
            || (!self.down_windows.is_empty() && self.down_windows.iter().any(|w| w.contains(now)))
    }

    /// True when `ip` is one of this host's addresses.
    pub fn owns_address(&self, ip: IpAddr) -> bool {
        match &self.kind {
            NodeKind::Host { addrs, .. } => addrs.contains(&ip),
            NodeKind::Switch { .. } => false,
        }
    }

    /// The host's primary address.
    pub fn primary_address(&self) -> Option<IpAddr> {
        match &self.kind {
            NodeKind::Host { addrs, .. } => addrs.first().copied(),
            NodeKind::Switch { .. } => None,
        }
    }

    /// Next-hop link for `dst`, per this node's role.
    pub fn route(&self, dst: IpAddr) -> Option<LinkId> {
        match &self.kind {
            NodeKind::Host { gateway, .. } => *gateway,
            NodeKind::Switch { routes } => routes.lookup(dst).copied(),
        }
    }

    /// `route()`, memoized. Switches pay the linear LPM scan once per
    /// destination; hosts just read their gateway.
    pub(crate) fn route_cached(&mut self, dst: IpAddr) -> Option<LinkId> {
        match &self.kind {
            NodeKind::Host { gateway, .. } => *gateway,
            NodeKind::Switch { routes } => *self
                .route_cache
                .entry(dst)
                .or_insert_with(|| routes.lookup(dst).copied()),
        }
    }

    /// Install a route (switches only; panics on hosts, which route via
    /// their gateway).
    pub fn install_route(&mut self, prefix: crate::lpm::Prefix, link: LinkId) {
        match &mut self.kind {
            NodeKind::Switch { routes } => {
                routes.insert(prefix, link);
                self.route_cache.clear();
            }
            NodeKind::Host { .. } => panic!("cannot install routes on a host"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm::Prefix;
    use std::net::Ipv4Addr;

    #[test]
    fn host_routes_via_gateway() {
        let mut h = Node::host(NodeId(0), "h0", vec!["10.0.0.1".parse().unwrap()]);
        assert_eq!(h.route("8.8.8.8".parse().unwrap()), None);
        if let NodeKind::Host { gateway, .. } = &mut h.kind {
            *gateway = Some(LinkId(3));
        }
        assert_eq!(h.route("8.8.8.8".parse().unwrap()), Some(LinkId(3)));
        assert!(h.owns_address("10.0.0.1".parse().unwrap()));
        assert!(!h.owns_address("10.0.0.2".parse().unwrap()));
        assert_eq!(h.primary_address(), Some("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn switch_routes_by_lpm() {
        let mut s = Node::switch(NodeId(1), "core");
        s.install_route(Prefix::v4(Ipv4Addr::new(10, 0, 0, 0), 8), LinkId(1));
        s.install_route(Prefix::v4_default(), LinkId(0));
        assert_eq!(s.route("10.9.9.9".parse().unwrap()), Some(LinkId(1)));
        assert_eq!(s.route("1.1.1.1".parse().unwrap()), Some(LinkId(0)));
        assert_eq!(s.primary_address(), None);
    }

    #[test]
    #[should_panic(expected = "cannot install routes on a host")]
    fn installing_route_on_host_panics() {
        let mut h = Node::host(NodeId(0), "h0", vec![]);
        h.install_route(Prefix::v4_default(), LinkId(0));
    }
}
