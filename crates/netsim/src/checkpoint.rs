//! PhoenixRun: freeze/thaw of a quiescent simulation engine.
//!
//! A checkpoint is taken *between* [`Network::run`] calls — no event is
//! mid-dispatch, no shard splice is live — and captures every bit of
//! dynamic state that distinguishes this engine from one freshly built
//! from the same topology: the pending event set (with canonical keys),
//! per-direction link queues and their private RNG streams, fault-model
//! state (including live Gilbert–Elliott channel state), node and network
//! counters, and the Observatory sink.
//!
//! Restore deliberately does NOT rebuild static topology (nodes, links,
//! routes, taps are cheap and deterministic to reconstruct from the
//! scenario); the caller rebuilds the same network shape and then applies
//! the frozen dynamic state on top. The determinism contract then gives
//! the strong property the CrashCart harness pins: running the remainder
//! of the schedule on a thawed engine reproduces the uninterrupted run's
//! observable output byte-for-byte.
//!
//! What is deliberately not captured:
//! * the packet-box reuse pool (allocation caching, content-irrelevant),
//! * memoized route caches (rebuilt lazily, behavior-identical),
//! * trait-object ingress filters (the control plane re-installs its own
//!   filters from its own frozen state),
//! * the shard report of the previous windowed run (diagnostics only).

use crate::chaos::ChaosAction;
use crate::event::{EventKey, EventQueue};
use crate::link::{Dir, FrozenLink, LinkId};
use crate::network::{Event, Network, NetStats};
use crate::node::{NodeId, NodeStats};
use crate::packet::Packet;
use crate::time::SimTime;
use campuslab_obs::ObsSink;

/// Serializable mirror of a pending engine event. Packets ride by value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FrozenEvent {
    Inject { node: NodeId, packet: Packet },
    TxDone { link: LinkId, dir: Dir },
    Arrive { link: LinkId, dir: Dir, packet: Packet },
    Timer { token: u64 },
    Chaos { action: ChaosAction },
}

/// A node's dynamic (non-topology) state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrozenNode {
    pub stats: NodeStats,
    pub down_windows: Vec<crate::link::Outage>,
    pub forced_down: bool,
}

/// The engine's full dynamic state at a quiescent instant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrozenNetwork {
    /// Simulation clock at the freeze barrier.
    pub now: SimTime,
    /// Seed the per-direction RNG streams derive from (sanity-checked on
    /// restore; the live stream positions ride in each frozen link).
    pub seed: u64,
    /// Root-event counter (injections / timers / chaos numbered so far).
    pub root_seq: u64,
    pub stats: NetStats,
    /// The Observatory value sink (schema is rebuilt by `NetObs::new`).
    pub obs: ObsSink,
    /// Pending events in canonical key order.
    pub events: Vec<(EventKey, FrozenEvent)>,
    pub nodes: Vec<FrozenNode>,
    pub links: Vec<FrozenLink>,
    pub tapped: Vec<bool>,
}

impl Network {
    /// Freeze the engine's dynamic state. Non-destructive: the pending
    /// event set is drained, cloned, and re-scheduled — the canonical key
    /// order depends only on the key set, so subsequent pops are
    /// unchanged.
    ///
    /// Panics if called while a shard splice is live (mid-sharded-window);
    /// checkpoints belong at run-call boundaries.
    pub fn checkpoint(&mut self) -> FrozenNetwork {
        assert!(
            self.splice.is_none(),
            "checkpoint must be taken at a quiescent barrier, not mid-shard-window"
        );
        let now = self.queue.now();
        let drained = self.queue.drain_sorted();
        let mut events = Vec::with_capacity(drained.len());
        for (key, event) in &drained {
            events.push((*key, freeze_event(event)));
        }
        // Put the queue back exactly as it was: the drained run is sorted,
        // so every re-schedule hits the staged-lane fast path.
        for (key, event) in drained {
            self.queue.schedule(key, event);
        }
        FrozenNetwork {
            now,
            seed: self.seed,
            root_seq: self.root_seq,
            stats: self.stats,
            obs: self.obs.sink.clone(),
            events,
            nodes: self
                .nodes
                .iter()
                .map(|n| FrozenNode {
                    stats: n.stats,
                    down_windows: n.down_windows.clone(),
                    forced_down: n.forced_down,
                })
                .collect(),
            links: self.links.iter().map(|l| l.freeze()).collect(),
            tapped: self.tapped.clone(),
        }
    }

    /// Apply a frozen state onto this engine, which must have been rebuilt
    /// with the same static topology (same node/link counts, same seed).
    /// Ingress filters are NOT restored here; the owner of each filter
    /// re-installs it from its own thawed state.
    pub fn restore(&mut self, frozen: FrozenNetwork) {
        assert!(self.splice.is_none(), "cannot restore into a live shard splice");
        assert_eq!(self.nodes.len(), frozen.nodes.len(), "restore onto a different topology");
        assert_eq!(self.links.len(), frozen.links.len(), "restore onto a different topology");
        assert_eq!(self.seed, frozen.seed, "restore onto a network built with a different seed");
        self.root_seq = frozen.root_seq;
        self.stats = frozen.stats;
        self.obs.sink = frozen.obs;
        self.tapped = frozen.tapped;
        for (node, f) in self.nodes.iter_mut().zip(frozen.nodes) {
            node.stats = f.stats;
            node.down_windows = f.down_windows;
            node.forced_down = f.forced_down;
        }
        for (link, f) in self.links.iter_mut().zip(frozen.links) {
            link.thaw(f);
        }
        // Rebuild the pending set into a fresh queue: events are frozen in
        // canonical order, so each schedule is an O(1) staged append, and
        // the clock is advanced only after everything is in.
        let mut queue = EventQueue::new();
        for (key, event) in frozen.events {
            queue.schedule(key, thaw_event(event));
        }
        queue.set_now(frozen.now);
        self.queue = queue;
        self.pool.clear();
        self.shard_report = None;
    }
}

fn freeze_event(event: &Event) -> FrozenEvent {
    match event {
        Event::Inject { node, packet } => {
            FrozenEvent::Inject { node: *node, packet: (**packet).clone() }
        }
        Event::TxDone { link, dir } => FrozenEvent::TxDone { link: *link, dir: *dir },
        Event::Arrive { link, dir, packet } => {
            FrozenEvent::Arrive { link: *link, dir: *dir, packet: (**packet).clone() }
        }
        Event::Timer { token } => FrozenEvent::Timer { token: *token },
        Event::Chaos { action } => FrozenEvent::Chaos { action: *action },
    }
}

fn thaw_event(event: FrozenEvent) -> Event {
    match event {
        FrozenEvent::Inject { node, packet } => {
            Event::Inject { node, packet: Box::new(packet) }
        }
        FrozenEvent::TxDone { link, dir } => Event::TxDone { link, dir },
        FrozenEvent::Arrive { link, dir, packet } => {
            Event::Arrive { link, dir, packet: Box::new(packet) }
        }
        FrozenEvent::Timer { token } => Event::Timer { token },
        FrozenEvent::Chaos { action } => Event::Chaos { action },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, QueueDiscipline};
    use crate::lpm::Prefix;
    use crate::node::{Node, NodeKind};
    use crate::packet::{GroundTruth, PacketBuilder, Payload};
    use crate::time::SimDuration;
    use std::net::Ipv4Addr;

    /// h1 -- s1 -- h2 with lossy links, same shape as network.rs tests.
    fn lossy_net() -> (Network, NodeId) {
        let mut net = Network::new(77);
        let h1 = net.push_node(Node::host(NodeId(0), "h1", vec!["10.0.0.1".parse().unwrap()]));
        let s1 = net.push_node(Node::switch(NodeId(1), "s1"));
        let h2 = net.push_node(Node::host(NodeId(2), "h2", vec!["10.0.0.2".parse().unwrap()]));
        let l1 = net.push_link(Link::new(
            LinkId(0), h1, s1, 50_000_000, SimDuration::from_micros(10),
            QueueDiscipline::Red {
                capacity_bytes: 60_000,
                min_thresh_bytes: 10_000,
                max_thresh_bytes: 40_000,
                max_p: 0.3,
            },
        ));
        let l2 = net.push_link(Link::new(
            LinkId(1), s1, h2, 50_000_000, SimDuration::from_micros(10),
            QueueDiscipline::DropTail { capacity_bytes: 30_000 },
        ));
        if let NodeKind::Host { gateway, .. } = &mut net.nodes[h1.0].kind {
            *gateway = Some(l1);
        }
        if let NodeKind::Host { gateway, .. } = &mut net.nodes[h2.0].kind {
            *gateway = Some(l2);
        }
        net.nodes[s1.0].install_route(Prefix::v4(Ipv4Addr::new(10, 0, 0, 2), 32), l2);
        net.nodes[s1.0].install_route(Prefix::v4(Ipv4Addr::new(10, 0, 0, 1), 32), l1);
        net.link_mut(l1).fault.drop_probability = 0.05;
        net.link_mut(l1).fault.burst =
            Some(crate::link::GilbertElliott::new(0.02, 0.2, 0.0, 0.6));
        (net, h1)
    }

    fn blast(net: &mut Network, h1: NodeId, from_us: u64, n: u64) {
        let mut b = PacketBuilder::new();
        for i in 0..n {
            let pkt = b.udp_v4(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000, 2000, Payload::Synthetic(600), 64, GroundTruth::default(),
            );
            net.inject(SimTime::from_micros(from_us + i * 40), h1, pkt);
        }
    }

    /// checkpoint() must not perturb the run: continuing after a freeze
    /// gives the same stats as never freezing.
    #[test]
    fn checkpoint_is_non_destructive() {
        let run_with_freeze = |freeze: bool| {
            let (mut net, h1) = lossy_net();
            blast(&mut net, h1, 0, 400);
            net.run(&mut crate::network::NullHooks, Some(SimTime::from_millis(2)));
            if freeze {
                let _ = net.checkpoint();
            }
            net.run(&mut crate::network::NullHooks, None);
            (net.stats, net.obs.render())
        };
        assert_eq!(run_with_freeze(false), run_with_freeze(true));
    }

    /// Freeze mid-run, thaw into a freshly built topology, finish both;
    /// the thawed engine must match the uninterrupted one byte-for-byte.
    #[test]
    fn restore_resumes_identically() {
        let (mut net, h1) = lossy_net();
        blast(&mut net, h1, 0, 400);
        // Leave future stimuli pending across the barrier too.
        blast(&mut net, h1, 3_000, 100);
        net.run(&mut crate::network::NullHooks, Some(SimTime::from_millis(2)));
        let frozen = net.checkpoint();

        // Round-trip the frozen state through its serialized form.
        let json = serde_json::to_string(&frozen).unwrap();
        let thawed: FrozenNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(frozen, thawed);

        let (mut fresh, _) = lossy_net();
        fresh.restore(thawed);
        assert_eq!(fresh.now(), net.now());

        net.run(&mut crate::network::NullHooks, None);
        fresh.run(&mut crate::network::NullHooks, None);
        assert_eq!(net.stats, fresh.stats);
        assert_eq!(net.obs.render(), fresh.obs.render());
        assert!(net.stats.injected == 500 && net.stats.delivered > 0);
    }

    /// Restoring with pending chaos transitions and node/link fault state.
    #[test]
    fn restore_carries_fault_state() {
        let build = || {
            let (mut net, h1) = lossy_net();
            blast(&mut net, h1, 0, 200);
            net.schedule_chaos(SimTime::from_micros(500), ChaosAction::NodeDown(NodeId(1)));
            net.schedule_chaos(SimTime::from_millis(4), ChaosAction::NodeUp(NodeId(1)));
            blast(&mut net, h1, 5_000, 50);
            (net, h1)
        };
        let (mut net, _) = build();
        net.run(&mut crate::network::NullHooks, Some(SimTime::from_millis(1)));
        let frozen = net.checkpoint();
        assert!(net.nodes[1].forced_down, "chaos transition must be live at the barrier");

        let (mut fresh, _) = build();
        // Fresh copy has different pending events (chaos from build());
        // restore overwrites the whole pending set.
        fresh.restore(frozen);
        net.run(&mut crate::network::NullHooks, None);
        fresh.run(&mut crate::network::NullHooks, None);
        assert_eq!(net.stats, fresh.stats);
        assert_eq!(net.obs.render(), fresh.obs.render());
    }
}
