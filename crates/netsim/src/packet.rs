//! The owned packet representation that moves through the simulator.
//!
//! A [`Packet`] carries parsed header `Repr`s from `campuslab-wire` plus a
//! payload that is either real bytes (DNS messages, HTTP request lines —
//! anything the capture plane will want to inspect) or a synthetic length
//! (bulk data whose content is irrelevant). `to_bytes` serializes the packet
//! into an exact wire image for pcap dumps and byte-accurate capture.

use crate::time::SimTime;
use campuslab_wire::udp::PseudoHeader;
use campuslab_wire::{
    EtherType, EthernetAddress, EthernetRepr, IcmpRepr, IpProtocol, Ipv4Repr, Ipv6Repr, TcpRepr,
    UdpRepr, ETHERNET_HEADER_LEN,
};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Ground-truth annotations attached by the traffic generator. These ride
/// along with the packet *in the simulator only* — they are the labels a
/// real network never gives you, and the datastore stores them separately
/// from the packet bytes exactly so experiments can measure how well models
/// recover them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GroundTruth {
    /// Flow this packet belongs to (generator-assigned).
    pub flow_id: u64,
    /// Application class id (interpreted by `campuslab-traffic`).
    pub app_class: u16,
    /// Attack campaign id if this packet is malicious.
    pub attack: Option<u16>,
}

impl GroundTruth {
    /// True when the packet is part of an attack campaign.
    pub fn is_malicious(&self) -> bool {
        self.attack.is_some()
    }
}

/// Network-layer header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NetworkHeader {
    V4(Ipv4Repr),
    V6(Ipv6Repr),
}

impl NetworkHeader {
    /// Source address, version-agnostic.
    pub fn src(&self) -> IpAddr {
        match self {
            NetworkHeader::V4(h) => IpAddr::V4(h.src),
            NetworkHeader::V6(h) => IpAddr::V6(h.src),
        }
    }

    /// Destination address, version-agnostic.
    pub fn dst(&self) -> IpAddr {
        match self {
            NetworkHeader::V4(h) => IpAddr::V4(h.dst),
            NetworkHeader::V6(h) => IpAddr::V6(h.dst),
        }
    }

    /// Transport protocol field.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            NetworkHeader::V4(h) => h.protocol,
            NetworkHeader::V6(h) => h.protocol,
        }
    }

    /// TTL / hop limit.
    pub fn ttl(&self) -> u8 {
        match self {
            NetworkHeader::V4(h) => h.ttl,
            NetworkHeader::V6(h) => h.hop_limit,
        }
    }

    /// Decrement TTL in place, returning false when it hits zero.
    pub fn decrement_ttl(&mut self) -> bool {
        match self {
            NetworkHeader::V4(h) => {
                h.ttl = h.ttl.saturating_sub(1);
                h.ttl > 0
            }
            NetworkHeader::V6(h) => {
                h.hop_limit = h.hop_limit.saturating_sub(1);
                h.hop_limit > 0
            }
        }
    }

    fn header_len(&self) -> usize {
        match self {
            NetworkHeader::V4(_) => campuslab_wire::IPV4_HEADER_LEN,
            NetworkHeader::V6(_) => campuslab_wire::IPV6_HEADER_LEN,
        }
    }

    fn pseudo(&self) -> PseudoHeader {
        match self {
            NetworkHeader::V4(h) => PseudoHeader::V4 { src: h.src, dst: h.dst },
            NetworkHeader::V6(h) => PseudoHeader::V6 { src: h.src, dst: h.dst },
        }
    }
}

/// Transport-layer header.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TransportHeader {
    Udp(UdpRepr),
    Tcp(TcpRepr),
    Icmp(IcmpRepr),
    /// Raw IP payload with no transport structure.
    None,
}

impl TransportHeader {
    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Udp(u) => Some(u.src_port),
            TransportHeader::Tcp(t) => Some(t.src_port),
            _ => None,
        }
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Udp(u) => Some(u.dst_port),
            TransportHeader::Tcp(t) => Some(t.dst_port),
            _ => None,
        }
    }

    fn header_len(&self) -> usize {
        match self {
            TransportHeader::Udp(_) => campuslab_wire::UDP_HEADER_LEN,
            TransportHeader::Tcp(t) => t.header_len(),
            TransportHeader::Icmp(i) => i.total_len(), // payload included below
            TransportHeader::None => 0,
        }
    }
}

/// Packet payload: real bytes when content matters, a bare length otherwise.
///
/// Real bytes live behind an `Arc<[u8]>`, so cloning a payload (and hence a
/// [`Packet`]) is a reference-count bump, never a buffer copy. Payload bytes
/// are immutable once built, which is exactly the semantics of bytes on the
/// wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    Bytes(Arc<[u8]>),
    /// `len` bytes of zeros when serialized.
    Synthetic(usize),
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload::Bytes(bytes.into())
    }
}

// Hand-rolled (the derive cannot thaw `Arc<[u8]>`), shaped exactly like the
// enum derive output so checkpoint payloads stay format-uniform.
impl serde::Serialize for Payload {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Payload::Bytes(b) => {
                out.push_str("{\"Bytes\":");
                b[..].serialize_json(out);
                out.push('}');
            }
            Payload::Synthetic(n) => {
                out.push_str("{\"Synthetic\":");
                n.serialize_json(out);
                out.push('}');
            }
        }
    }
}

impl serde::Deserialize for Payload {
    fn deserialize_json(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let pairs = v.as_object()?;
        if pairs.len() != 1 {
            return Err(serde::json::Error::new("expected single-variant payload object"));
        }
        match pairs[0].0.as_str() {
            "Bytes" => {
                let bytes: Vec<u8> = serde::Deserialize::deserialize_json(&pairs[0].1)?;
                Ok(Payload::Bytes(bytes.into()))
            }
            "Synthetic" => Ok(Payload::Synthetic(serde::Deserialize::deserialize_json(&pairs[0].1)?)),
            _ => Err(serde::json::Error::new("unknown payload variant")),
        }
    }
}

impl Payload {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Synthetic(n) => *n,
        }
    }

    /// True when the payload has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Real bytes if present.
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Synthetic(_) => None,
        }
    }

    fn materialize(&self) -> std::borrow::Cow<'_, [u8]> {
        match self {
            Payload::Bytes(b) => std::borrow::Cow::Borrowed(b),
            Payload::Synthetic(n) => std::borrow::Cow::Owned(vec![0u8; *n]),
        }
    }
}

/// Number of `Packet::clone` calls since process start. The forwarding fast
/// path is designed to move packets without copying them; this counter lets
/// tests assert the property instead of trusting it.
static PACKET_CLONES: AtomicU64 = AtomicU64::new(0);

/// Total `Packet::clone` calls so far, process-wide.
pub fn clone_count() -> u64 {
    PACKET_CLONES.load(Ordering::Relaxed)
}

/// A packet in flight through the simulated campus network.
#[derive(Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Packet {
    /// Globally unique id, assigned at injection.
    pub id: u64,
    pub src_mac: EthernetAddress,
    pub dst_mac: EthernetAddress,
    pub network: NetworkHeader,
    pub transport: TransportHeader,
    pub payload: Payload,
    pub truth: GroundTruth,
    /// Instant the simulator injected this packet, stamped by the event
    /// loop; carried in the packet so end-to-end latency needs no side
    /// lookup table.
    pub injected_at: SimTime,
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        PACKET_CLONES.fetch_add(1, Ordering::Relaxed);
        Packet {
            id: self.id,
            src_mac: self.src_mac,
            dst_mac: self.dst_mac,
            network: self.network,
            transport: self.transport.clone(),
            payload: self.payload.clone(),
            truth: self.truth,
            injected_at: self.injected_at,
        }
    }
}

impl Packet {
    /// Total on-wire length including the Ethernet header.
    pub fn wire_len(&self) -> usize {
        let l4 = match &self.transport {
            TransportHeader::Icmp(i) => i.total_len(),
            t => t.header_len() + self.payload.len(),
        };
        ETHERNET_HEADER_LEN + self.network.header_len() + l4
    }

    /// Serialize the full frame to bytes, with correct lengths and
    /// checksums, exactly as a border tap would see it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let pseudo = self.network.pseudo();
        // Layer 4 first so the IP length fields are exact.
        let mut l4 = Vec::new();
        match &self.transport {
            TransportHeader::Udp(u) => u.emit(&mut l4, &self.payload.materialize(), &pseudo),
            TransportHeader::Tcp(t) => t.emit(&mut l4, &self.payload.materialize(), &pseudo),
            TransportHeader::Icmp(i) => i.emit(&mut l4),
            TransportHeader::None => l4.extend_from_slice(&self.payload.materialize()),
        }
        let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + self.network.header_len() + l4.len());
        let ethertype = match self.network {
            NetworkHeader::V4(_) => EtherType::Ipv4,
            NetworkHeader::V6(_) => EtherType::Ipv6,
        };
        EthernetRepr { dst: self.dst_mac, src: self.src_mac, ethertype }.emit(&mut frame);
        match self.network {
            NetworkHeader::V4(mut h) => {
                h.payload_len = l4.len();
                h.emit(&mut frame);
            }
            NetworkHeader::V6(mut h) => {
                h.payload_len = l4.len();
                h.emit(&mut frame);
            }
        }
        frame.extend_from_slice(&l4);
        frame
    }

    /// The canonical 5-tuple (src ip, dst ip, protocol, src port, dst port),
    /// with zero ports for portless transports.
    pub fn five_tuple(&self) -> (IpAddr, IpAddr, IpProtocol, u16, u16) {
        (
            self.network.src(),
            self.network.dst(),
            self.network.protocol(),
            self.transport.src_port().unwrap_or(0),
            self.transport.dst_port().unwrap_or(0),
        )
    }
}

/// A builder for the common packet shapes the traffic generator emits.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    next_id: u64,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Create a builder with ids starting at zero.
    pub fn new() -> Self {
        PacketBuilder { next_id: 0 }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// A UDP/IPv4 packet.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_v4(
        &mut self,
        src: std::net::Ipv4Addr,
        dst: std::net::Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Payload,
        ttl: u8,
        truth: GroundTruth,
    ) -> Packet {
        let id = self.next_id();
        Packet {
            id,
            src_mac: EthernetAddress::from_host_id(u32::from(src)),
            dst_mac: EthernetAddress::from_host_id(u32::from(dst)),
            network: NetworkHeader::V4(Ipv4Repr {
                src,
                dst,
                protocol: IpProtocol::Udp,
                ttl,
                payload_len: campuslab_wire::UDP_HEADER_LEN + payload.len(),
                dscp: 0,
                identification: id as u16,
                dont_fragment: true,
            }),
            transport: TransportHeader::Udp(UdpRepr { src_port, dst_port }),
            payload,
            truth,
            injected_at: SimTime::ZERO,
        }
    }

    /// A TCP/IPv4 packet with the given control flags.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_v4(
        &mut self,
        src: std::net::Ipv4Addr,
        dst: std::net::Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        tcp: TcpRepr,
        payload: Payload,
        truth: GroundTruth,
    ) -> Packet {
        let id = self.next_id();
        let mut tcp = tcp;
        tcp.src_port = src_port;
        tcp.dst_port = dst_port;
        Packet {
            id,
            src_mac: EthernetAddress::from_host_id(u32::from(src)),
            dst_mac: EthernetAddress::from_host_id(u32::from(dst)),
            network: NetworkHeader::V4(Ipv4Repr {
                src,
                dst,
                protocol: IpProtocol::Tcp,
                ttl: 64,
                payload_len: tcp.header_len() + payload.len(),
                dscp: 0,
                identification: id as u16,
                dont_fragment: true,
            }),
            transport: TransportHeader::Tcp(tcp),
            payload,
            truth,
            injected_at: SimTime::ZERO,
        }
    }

    /// A UDP/IPv6 packet. The campus fabric is dual-stack capable even
    /// though the default workload is IPv4; this path exercises the v6
    /// wire formats end to end.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_v6(
        &mut self,
        src: std::net::Ipv6Addr,
        dst: std::net::Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        payload: Payload,
        hop_limit: u8,
        truth: GroundTruth,
    ) -> Packet {
        let id = self.next_id();
        Packet {
            id,
            src_mac: EthernetAddress::from_host_id(u128::from(src) as u32),
            dst_mac: EthernetAddress::from_host_id(u128::from(dst) as u32),
            network: NetworkHeader::V6(Ipv6Repr {
                src,
                dst,
                protocol: IpProtocol::Udp,
                hop_limit,
                payload_len: campuslab_wire::UDP_HEADER_LEN + payload.len(),
                traffic_class: 0,
                flow_label: (id as u32) & 0xf_ffff,
            }),
            transport: TransportHeader::Udp(UdpRepr { src_port, dst_port }),
            payload,
            truth,
            injected_at: SimTime::ZERO,
        }
    }

    /// An ICMP echo request/reply.
    pub fn icmp_v4(
        &mut self,
        src: std::net::Ipv4Addr,
        dst: std::net::Ipv4Addr,
        icmp: IcmpRepr,
        truth: GroundTruth,
    ) -> Packet {
        let id = self.next_id();
        Packet {
            id,
            src_mac: EthernetAddress::from_host_id(u32::from(src)),
            dst_mac: EthernetAddress::from_host_id(u32::from(dst)),
            network: NetworkHeader::V4(Ipv4Repr {
                src,
                dst,
                protocol: IpProtocol::Icmp,
                ttl: 64,
                payload_len: icmp.total_len(),
                dscp: 0,
                identification: id as u16,
                dont_fragment: true,
            }),
            transport: TransportHeader::Icmp(icmp),
            payload: Payload::Synthetic(0),
            truth,
            injected_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_wire::{DnsMessage, DnsType, TcpControl};
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::new()
    }

    #[test]
    fn udp_packet_serializes_and_reparses() {
        let mut b = builder();
        let query = DnsMessage::query(9, "www.example.edu", DnsType::A);
        let mut body = Vec::new();
        query.emit(&mut body).unwrap();
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 1, 5),
            Ipv4Addr::new(10, 0, 0, 53),
            40000,
            53,
            Payload::Bytes(body.into()),
            64,
            GroundTruth::default(),
        );
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), pkt.wire_len());
        let (eth, l3) = EthernetRepr::parse(&bytes).unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        let (ip, l4) = Ipv4Repr::parse(l3).unwrap();
        assert_eq!(ip.src, Ipv4Addr::new(10, 0, 1, 5));
        let (udp, payload) = UdpRepr::parse(
            l4,
            &PseudoHeader::V4 { src: ip.src, dst: ip.dst },
        )
        .unwrap();
        assert_eq!(udp.dst_port, 53);
        let msg = DnsMessage::parse(payload).unwrap();
        assert_eq!(msg.questions[0].name, "www.example.edu");
    }

    #[test]
    fn synthetic_payload_counts_length_without_allocation() {
        let mut b = builder();
        let pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Payload::Synthetic(1000),
            64,
            GroundTruth::default(),
        );
        assert_eq!(pkt.wire_len(), 14 + 20 + 8 + 1000);
        assert_eq!(pkt.to_bytes().len(), pkt.wire_len());
    }

    #[test]
    fn tcp_packet_round_trips() {
        let mut b = builder();
        let pkt = b.tcp_v4(
            Ipv4Addr::new(10, 0, 2, 9),
            Ipv4Addr::new(203, 0, 113, 80),
            50000,
            443,
            TcpRepr {
                src_port: 0,
                dst_port: 0,
                seq: 1000,
                ack: 0,
                control: TcpControl::SYN,
                window: 65535,
                mss: Some(1460),
                window_scale: Some(7),
            },
            Payload::Synthetic(0),
            GroundTruth { flow_id: 1, app_class: 2, attack: None },
        );
        let bytes = pkt.to_bytes();
        let (_, l3) = EthernetRepr::parse(&bytes).unwrap();
        let (ip, l4) = Ipv4Repr::parse(l3).unwrap();
        let (tcp, _) = TcpRepr::parse(
            l4,
            &PseudoHeader::V4 { src: ip.src, dst: ip.dst },
        )
        .unwrap();
        assert!(tcp.control.syn);
        assert_eq!(tcp.mss, Some(1460));
        assert_eq!(pkt.five_tuple().4, 443);
    }

    #[test]
    fn ttl_decrements_to_zero() {
        let mut b = builder();
        let mut pkt = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Payload::Synthetic(0),
            2,
            GroundTruth::default(),
        );
        assert!(pkt.network.decrement_ttl());
        assert!(!pkt.network.decrement_ttl());
        assert_eq!(pkt.network.ttl(), 0);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut b = builder();
        let p1 = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1, 2, Payload::Synthetic(0), 64, GroundTruth::default(),
        );
        let p2 = b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1, 2, Payload::Synthetic(0), 64, GroundTruth::default(),
        );
        assert!(p2.id > p1.id);
    }

    #[test]
    fn ground_truth_classification() {
        assert!(!GroundTruth::default().is_malicious());
        assert!(GroundTruth { flow_id: 0, app_class: 0, attack: Some(3) }.is_malicious());
    }

    #[test]
    fn udp_v6_packet_round_trips() {
        let mut b = builder();
        let pkt = b.udp_v6(
            "2001:db8::10".parse().unwrap(),
            "2001:db8:ffff::53".parse().unwrap(),
            40_000,
            53,
            Payload::Synthetic(120),
            64,
            GroundTruth::default(),
        );
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), pkt.wire_len());
        let (eth, l3) = EthernetRepr::parse(&bytes).unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv6);
        let (ip, l4) = campuslab_wire::Ipv6Repr::parse(l3).unwrap();
        assert_eq!(ip.hop_limit, 64);
        let (udp, payload) = UdpRepr::parse(
            l4,
            &PseudoHeader::V6 { src: ip.src, dst: ip.dst },
        )
        .unwrap();
        assert_eq!(udp.dst_port, 53);
        assert_eq!(payload.len(), 120);
        assert_eq!(
            pkt.five_tuple().0,
            "2001:db8::10".parse::<std::net::IpAddr>().unwrap()
        );
    }

    #[test]
    fn icmp_packet_round_trips() {
        let mut b = builder();
        let pkt = b.icmp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 254),
            IcmpRepr::echo_request(77, 1, b"abcdefgh"),
            GroundTruth::default(),
        );
        let bytes = pkt.to_bytes();
        let (_, l3) = EthernetRepr::parse(&bytes).unwrap();
        let (ip, l4) = Ipv4Repr::parse(l3).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Icmp);
        let icmp = IcmpRepr::parse(l4).unwrap();
        assert_eq!(icmp.ident(), 77);
    }
}
