//! The simulator's Observatory schema: a [`NetObs`] bundles a
//! [`Registry`] describing every netsim metric with the [`ObsSink`] the
//! event loop bumps. One `NetObs` per [`crate::network::Network`] — no
//! globals, no locks, and parallel runs each own their sink, so the fast
//! path stays a plain `u64` add.
//!
//! The counters deliberately mirror [`crate::network::NetStats`]: the
//! aggregate struct stays the cheap programmatic surface, while the
//! registry is the renderable, mergeable export surface. A coherence test
//! in `network.rs` pins the two to agree.

use crate::chaos::ChaosAction;
use crate::network::DropReason;
use campuslab_obs::{CounterId, HistogramId, ObsSink, Registry};

/// Queue-depth histogram bounds, bytes (≤1 KB .. ≤10 MB, then +Inf).
pub const QUEUE_DEPTH_BOUNDS: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Delivery-latency histogram bounds, microseconds (≤10 us .. ≤1 s, then +Inf).
pub const LATENCY_BOUNDS: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Metrics registry + sink for one simulated network.
#[derive(Debug, Clone)]
pub struct NetObs {
    registry: Registry,
    /// The value store the event loop bumps. Public so the loop can write
    /// without an extra indirection; read it back through the typed ids.
    pub sink: ObsSink,
    events: CounterId,
    injected: CounterId,
    delivered: CounterId,
    delivered_bytes: CounterId,
    /// Indexed by [`drop_index`]: queue, fault, filter, ttl, no_route, node_down.
    drops: [CounterId; 6],
    /// Indexed by [`chaos_index`]: link_down, link_up, node_down, node_up,
    /// brownout_start, brownout_end.
    chaos: [CounterId; 6],
    queue_depth: HistogramId,
    latency_us: HistogramId,
}

/// Stable index of a [`DropReason`] into [`NetObs::drops`].
pub fn drop_index(reason: DropReason) -> usize {
    match reason {
        DropReason::Queue => 0,
        DropReason::Fault => 1,
        DropReason::Filter => 2,
        DropReason::Ttl => 3,
        DropReason::NoRoute => 4,
        DropReason::NodeDown => 5,
    }
}

/// Stable index of a [`ChaosAction`] kind into [`NetObs::chaos`].
pub fn chaos_index(action: &ChaosAction) -> usize {
    match action {
        ChaosAction::LinkDown(_) => 0,
        ChaosAction::LinkUp(_) => 1,
        ChaosAction::NodeDown(_) => 2,
        ChaosAction::NodeUp(_) => 3,
        ChaosAction::BrownoutStart { .. } => 4,
        ChaosAction::BrownoutEnd(_) => 5,
    }
}

impl Default for NetObs {
    fn default() -> Self {
        NetObs::new()
    }
}

impl NetObs {
    /// Build the netsim schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let events = reg.counter(
            "sim_events_total",
            "events dispatched by the simulator loop (doubles as the event sequence number)",
        );
        let injected = reg.counter("sim_injected_packets_total", "packets scheduled into the network");
        let delivered =
            reg.counter("sim_delivered_packets_total", "packets that reached their destination host");
        let delivered_bytes =
            reg.counter("sim_delivered_bytes_total", "wire bytes of delivered packets");
        let drop_help = "packets dropped, by cause";
        let drops = [
            reg.counter_with_label("sim_dropped_packets_total", Some("reason=\"queue\""), drop_help),
            reg.counter_with_label("sim_dropped_packets_total", Some("reason=\"fault\""), drop_help),
            reg.counter_with_label("sim_dropped_packets_total", Some("reason=\"filter\""), drop_help),
            reg.counter_with_label("sim_dropped_packets_total", Some("reason=\"ttl\""), drop_help),
            reg.counter_with_label("sim_dropped_packets_total", Some("reason=\"no_route\""), drop_help),
            reg.counter_with_label(
                "sim_dropped_packets_total",
                Some("reason=\"node_down\""),
                drop_help,
            ),
        ];
        let chaos_help = "chaos-plan fault transitions applied, by kind";
        let chaos = [
            reg.counter_with_label("sim_chaos_transitions_total", Some("kind=\"link_down\""), chaos_help),
            reg.counter_with_label("sim_chaos_transitions_total", Some("kind=\"link_up\""), chaos_help),
            reg.counter_with_label("sim_chaos_transitions_total", Some("kind=\"node_down\""), chaos_help),
            reg.counter_with_label("sim_chaos_transitions_total", Some("kind=\"node_up\""), chaos_help),
            reg.counter_with_label(
                "sim_chaos_transitions_total",
                Some("kind=\"brownout_start\""),
                chaos_help,
            ),
            reg.counter_with_label(
                "sim_chaos_transitions_total",
                Some("kind=\"brownout_end\""),
                chaos_help,
            ),
        ];
        let queue_depth = reg.histogram(
            "sim_link_queue_depth_bytes",
            "egress queue depth sampled at each enqueue",
            &QUEUE_DEPTH_BOUNDS,
        );
        let latency_us = reg.histogram(
            "sim_delivery_latency_us",
            "end-to-end delivery latency in microseconds",
            &LATENCY_BOUNDS,
        );
        let sink = reg.sink();
        NetObs {
            registry: reg,
            sink,
            events,
            injected,
            delivered,
            delivered_bytes,
            drops,
            chaos,
            queue_depth,
            latency_us,
        }
    }

    /// One event popped off the simulator queue.
    #[inline]
    pub(crate) fn on_event(&mut self) {
        self.sink.inc(self.events);
    }

    #[inline]
    pub(crate) fn on_inject(&mut self) {
        self.sink.inc(self.injected);
    }

    #[inline]
    pub(crate) fn on_deliver(&mut self, wire_bytes: u64, latency_ns: u64) {
        self.sink.inc(self.delivered);
        self.sink.add(self.delivered_bytes, wire_bytes);
        self.sink.observe(self.latency_us, latency_ns / 1_000);
    }

    #[inline]
    pub(crate) fn on_drop(&mut self, reason: DropReason) {
        self.sink.inc(self.drops[drop_index(reason)]);
    }

    #[inline]
    pub(crate) fn on_chaos(&mut self, action: &ChaosAction) {
        self.sink.inc(self.chaos[chaos_index(action)]);
    }

    #[inline]
    pub(crate) fn on_enqueue_depth(&mut self, bytes: u64) {
        self.sink.observe(self.queue_depth, bytes);
    }

    /// Events dispatched so far — the simulator's event sequence number.
    pub fn event_seq(&self) -> u64 {
        self.sink.counter(self.events)
    }

    /// Injected-packet counter.
    pub fn injected(&self) -> u64 {
        self.sink.counter(self.injected)
    }

    /// Delivered-packet counter.
    pub fn delivered(&self) -> u64 {
        self.sink.counter(self.delivered)
    }

    /// Delivered wire bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.sink.counter(self.delivered_bytes)
    }

    /// Drop counter for one cause.
    pub fn dropped(&self, reason: DropReason) -> u64 {
        self.sink.counter(self.drops[drop_index(reason)])
    }

    /// Drops summed over every cause.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().map(|&c| self.sink.counter(c)).sum()
    }

    /// The queue-depth histogram.
    pub fn queue_depth_histogram(&self) -> &campuslab_obs::Histogram {
        self.sink.histogram(self.queue_depth)
    }

    /// The delivery-latency histogram (microseconds).
    pub fn latency_histogram(&self) -> &campuslab_obs::Histogram {
        self.sink.histogram(self.latency_us)
    }

    /// Chaos transitions applied, summed over every kind.
    pub fn chaos_transitions_total(&self) -> u64 {
        self.chaos.iter().map(|&c| self.sink.counter(c)).sum()
    }

    /// Injected → delivered ratio, straight from the registry counters.
    pub fn delivery_ratio(&self) -> f64 {
        let inj = self.injected();
        if inj == 0 {
            return 0.0;
        }
        self.delivered() as f64 / inj as f64
    }

    /// Render this network's metrics as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fold another network's sink (same schema by construction) into this
    /// one — used when a sweep aggregates per-point runs.
    pub fn merge_from(&mut self, other: &NetObs) {
        self.sink.merge_from(&other.sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkId;

    #[test]
    fn schema_renders_all_families_zeroed() {
        let obs = NetObs::new();
        let text = obs.render();
        for family in [
            "sim_events_total",
            "sim_injected_packets_total",
            "sim_delivered_packets_total",
            "sim_delivered_bytes_total",
            "sim_dropped_packets_total{reason=\"queue\"} 0",
            "sim_chaos_transitions_total{kind=\"brownout_end\"} 0",
            "sim_link_queue_depth_bytes_bucket{le=\"+Inf\"} 0",
            "sim_delivery_latency_us_count 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn drop_and_chaos_indices_are_dense_and_distinct() {
        use crate::network::DropReason::*;
        let reasons = [Queue, Fault, Filter, Ttl, NoRoute, NodeDown];
        let mut seen: Vec<usize> = reasons.iter().map(|&r| drop_index(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        let actions = [
            ChaosAction::LinkDown(LinkId(0)),
            ChaosAction::LinkUp(LinkId(0)),
            ChaosAction::NodeDown(crate::node::NodeId(0)),
            ChaosAction::NodeUp(crate::node::NodeId(0)),
            ChaosAction::BrownoutStart { link: LinkId(0), factor: 0.5 },
            ChaosAction::BrownoutEnd(LinkId(0)),
        ];
        let mut seen: Vec<usize> = actions.iter().map(chaos_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
