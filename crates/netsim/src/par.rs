//! Scoped-thread fan-out for embarrassingly parallel simulation work.
//!
//! Experiments and cross-campus sweeps are independent, self-seeded runs:
//! each one owns its RNG and its simulated clock, so running them on
//! separate OS threads cannot change any result. [`parallel_map`]
//! preserves input order in its output, which keeps reports and
//! statistics byte-identical to a sequential run — determinism is a
//! property of the work items, parallelism only changes wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on a pool of scoped worker threads, preserving
/// input order in the output.
///
/// `f` receives `(index, &item)`. Workers pull the next unclaimed index
/// from a shared counter, so long and short items balance automatically.
/// With one worker (or one item) this degrades to a plain sequential map
/// with no thread spawned.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, worker_count(items.len()), f)
}

/// [`parallel_map`] with an explicit worker count (still capped at the
/// item count). Exposed so callers and tests can pin the pool size
/// regardless of machine shape.
pub fn parallel_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// [`parallel_map_with`] over *owned* items: each worker takes its item
/// by value, so the closure can consume it (sort a batch in place, move
/// records into a segment) instead of cloning out of a shared slice.
/// Input order is preserved in the output.
pub fn parallel_map_vec<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = work.get(i) else { break };
                let item = cell
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index claimed once");
                *slots[i].lock().expect("result slot poisoned") = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// How many workers a fan-out over `items` should use: the
/// `CAMPUSLAB_JOBS` environment variable when set, otherwise the
/// machine's available parallelism, both capped at the item count.
pub fn worker_count(items: usize) -> usize {
    let jobs = std::env::var("CAMPUSLAB_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    jobs.min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_with(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map_with(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_result() {
        // Unbalanced work: item i busy-loops proportionally to i, so
        // workers finish out of order; the output must not.
        let items: Vec<usize> = (0..32).collect();
        let out = parallel_map_with(&items, 4, |_, &x| {
            let mut acc = 0u64;
            for k in 0..(x * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            (x, acc)
        });
        let seq: Vec<(usize, u64)> = items
            .iter()
            .map(|&x| {
                let mut acc = 0u64;
                for k in 0..(x * 1000) {
                    acc = acc.wrapping_add(k as u64);
                }
                (x, acc)
            })
            .collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn owned_map_consumes_and_preserves_order() {
        // Non-Clone payloads prove the closure really takes ownership.
        struct NoClone(usize);
        let items: Vec<NoClone> = (0..64).map(NoClone).collect();
        let out = parallel_map_vec(items, 4, |i, t| {
            assert_eq!(i, t.0);
            t.0 * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<NoClone> = Vec::new();
        assert!(parallel_map_vec(empty, 4, |_, t| t.0).is_empty());
    }

    #[test]
    fn worker_count_respects_caps() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
    }
}
