//! # campuslab-netsim
//!
//! A deterministic, packet-level, discrete-event simulator of a campus
//! network — the "real-world production network" substrate that the
//! CampusLab platform treats as both data source and testbed (the paper's
//! Figure 1).
//!
//! Design notes:
//!
//! * **Event-driven, explicit stepping** (smoltcp-style): a single
//!   [`EventQueue`](event::EventQueue) orders all packet departures,
//!   transmissions and timer callbacks; ties break by insertion order so
//!   every run with the same seed is byte-for-byte reproducible.
//! * **Real headers, optional payload bytes**: packets carry parsed
//!   `campuslab-wire` header structs and serialize to exact wire images on
//!   demand, so the capture plane and pcap dumps see real bytes while the
//!   simulator core stays allocation-light.
//! * **Hooks + commands**: observers implement [`SimHooks`](network::SimHooks)
//!   and steer the simulation by pushing [`Command`](network::Command)s —
//!   the pattern that lets a control loop watch a tap and install packet
//!   filters mid-run without borrow gymnastics.
//! * **Ground truth rides along**: the traffic generator annotates each
//!   packet with flow/app/attack labels that the simulated network itself
//!   never inspects — they exist so experiments can measure how well
//!   learning models recover them.
//!
//! ```
//! use campuslab_netsim::prelude::*;
//!
//! let campus = Campus::build(CampusConfig::default());
//! let src = campus.hosts[0];
//! let src_ip = campus.addr_of(src);
//! let dns_ip = campus.addr_of(campus.servers.dns);
//! let mut net = campus.net;
//! let mut pb = PacketBuilder::new();
//! let pkt = pb.udp_v4(src_ip, dns_ip, 40000, 53,
//!                     Payload::Synthetic(64), 64, GroundTruth::default());
//! net.inject(SimTime::ZERO, src, pkt);
//! let stats = net.run_to_completion();
//! assert_eq!(stats.delivered, 1);
//! ```

#![deny(rust_2018_idioms)]
#![deny(unreachable_pub)]

pub mod time;
pub mod event;
pub mod packet;
pub mod lpm;
pub mod link;
pub mod node;
pub mod fxhash;
pub mod network;
pub mod observe;
pub mod par;
pub mod shard;
pub mod topology;
pub mod chaos;
pub mod checkpoint;

/// The types most users need, in one import.
pub mod prelude {
    pub use crate::chaos::{ChaosAction, ChaosConfig, ChaosPlan};
    pub use crate::checkpoint::{FrozenNetwork, FrozenNode};
    pub use crate::link::{
        Dir, FaultModel, GilbertElliott, LinkId, Outage, QueueDiscipline, RateWindow,
    };
    pub use crate::lpm::{LpmTable, Prefix};
    pub use crate::network::{
        Command, Commands, DropReason, NetStats, Network, NullHooks, SimHooks,
    };
    pub use crate::node::{FilterAction, NodeId, PacketFilter};
    pub use crate::observe::NetObs;
    pub use crate::shard::ShardReport;
    pub use crate::packet::{
        GroundTruth, NetworkHeader, Packet, PacketBuilder, Payload, TransportHeader,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Campus, CampusConfig, CampusServers, LinkSpec, TopologyBuilder};
}

pub use prelude::*;
