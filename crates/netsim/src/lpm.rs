//! Longest-prefix-match routing tables for IPv4 and IPv6.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A CIDR prefix over either address family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Prefix {
    /// Network address with host bits cleared.
    pub addr: IpAddr,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// An IPv4 prefix; host bits are masked off.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length out of range");
        let masked = if len == 0 {
            0
        } else {
            u32::from(addr) & (u32::MAX << (32 - len))
        };
        Prefix { addr: IpAddr::V4(Ipv4Addr::from(masked)), len }
    }

    /// An IPv6 prefix; host bits are masked off.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length out of range");
        let masked = if len == 0 {
            0
        } else {
            u128::from(addr) & (u128::MAX << (128 - len))
        };
        Prefix { addr: IpAddr::V6(Ipv6Addr::from(masked)), len }
    }

    /// The default (match-everything) IPv4 route.
    pub fn v4_default() -> Self {
        Prefix::v4(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// True when `ip` falls inside this prefix.
    pub fn contains(&self, ip: IpAddr) -> bool {
        match (self.addr, ip) {
            (IpAddr::V4(net), IpAddr::V4(ip)) => {
                if self.len == 0 {
                    return true;
                }
                let mask = u32::MAX << (32 - self.len);
                (u32::from(ip) & mask) == u32::from(net)
            }
            (IpAddr::V6(net), IpAddr::V6(ip)) => {
                if self.len == 0 {
                    return true;
                }
                let mask = u128::MAX << (128 - self.len);
                (u128::from(ip) & mask) == u128::from(net)
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// A longest-prefix-match table mapping prefixes to values.
///
/// Lookups scan entries sorted by descending prefix length, which is simple,
/// correct, and plenty fast for campus-scale tables (tens of routes). The
/// data-plane crate has its own TCAM model; this table is the control-plane
/// view.
#[derive(Debug, Clone, Default)]
pub struct LpmTable<V> {
    // Sorted by descending prefix length so the first hit is the longest.
    entries: Vec<(Prefix, V)>,
}

impl<V: Clone> LpmTable<V> {
    /// An empty table.
    pub fn new() -> Self {
        LpmTable { entries: Vec::new() }
    }

    /// Insert a route. Re-inserting the same prefix replaces its value.
    pub fn insert(&mut self, prefix: Prefix, value: V) {
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = value;
            return;
        }
        let pos = self
            .entries
            .partition_point(|(p, _)| p.len >= prefix.len);
        self.entries.insert(pos, (prefix, value));
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, ip: IpAddr) -> Option<&V> {
        self.entries
            .iter()
            .find(|(p, _)| p.contains(ip))
            .map(|(_, v)| v)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(prefix, value)` entries, longest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Prefix, V)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_host_bits() {
        let p = Prefix::v4(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr, IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn contains_respects_length() {
        let p = Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert!(p.contains("10.1.200.4".parse().unwrap()));
        assert!(!p.contains("10.2.0.1".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let p = Prefix::v4_default();
        assert!(p.contains("255.255.255.255".parse().unwrap()));
        assert!(p.contains("0.0.0.0".parse().unwrap()));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTable::new();
        t.insert(Prefix::v4_default(), "upstream");
        t.insert(Prefix::v4(Ipv4Addr::new(10, 0, 0, 0), 8), "campus");
        t.insert(Prefix::v4(Ipv4Addr::new(10, 5, 0, 0), 16), "cs-dept");
        t.insert(Prefix::v4(Ipv4Addr::new(10, 5, 1, 0), 24), "cs-lab");
        assert_eq!(t.lookup("10.5.1.77".parse().unwrap()), Some(&"cs-lab"));
        assert_eq!(t.lookup("10.5.9.1".parse().unwrap()), Some(&"cs-dept"));
        assert_eq!(t.lookup("10.200.0.1".parse().unwrap()), Some(&"campus"));
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()), Some(&"upstream"));
    }

    #[test]
    fn reinsert_replaces() {
        let mut t = LpmTable::new();
        let p = Prefix::v4(Ipv4Addr::new(10, 0, 0, 0), 8);
        t.insert(p, 1);
        t.insert(p, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("10.0.0.1".parse().unwrap()), Some(&2));
    }

    #[test]
    fn v6_lookup() {
        let mut t = LpmTable::new();
        t.insert(Prefix::v6("2001:db8::".parse().unwrap(), 32), "campus6");
        t.insert(Prefix::v6(Ipv6Addr::UNSPECIFIED, 0), "default6");
        assert_eq!(t.lookup("2001:db8::42".parse().unwrap()), Some(&"campus6"));
        assert_eq!(t.lookup("2600::1".parse().unwrap()), Some(&"default6"));
    }

    #[test]
    fn empty_table_misses() {
        let t: LpmTable<u8> = LpmTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup("10.0.0.1".parse().unwrap()), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lookup_agrees_with_bruteforce(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..40),
            probe in any::<u32>(),
        ) {
            let mut t = LpmTable::new();
            let mut list = Vec::new();
            for (i, &(addr, len)) in routes.iter().enumerate() {
                let p = Prefix::v4(Ipv4Addr::from(addr), len);
                t.insert(p, i);
                list.retain(|&(q, _): &(Prefix, usize)| q != p);
                list.push((p, i));
            }
            let ip = IpAddr::V4(Ipv4Addr::from(probe));
            let expected = list
                .iter()
                .filter(|(p, _)| p.contains(ip))
                .max_by_key(|(p, _)| p.len)
                .map(|&(_, v)| v);
            // When multiple same-length prefixes match they are identical
            // after masking, so insert-order/replace semantics agree.
            prop_assert_eq!(t.lookup(ip).copied(), expected);
        }
    }
}
