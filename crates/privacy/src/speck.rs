//! SPECK64/128: a tiny ARX block cipher (Beaulieu et al., 2013) implemented
//! from the specification. CampusLab uses it purely as a keyed PRF for
//! prefix-preserving anonymization and pseudonymization — **not** as a
//! general-purpose encryption facility.

/// Number of rounds for SPECK64/128.
const ROUNDS: usize = 27;

/// A SPECK64/128 instance with an expanded key schedule.
#[derive(Debug, Clone)]
pub struct Speck64 {
    round_keys: [u32; ROUNDS],
}

#[inline]
fn round_fwd(x: &mut u32, y: &mut u32, k: u32) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

impl Speck64 {
    /// Expand a 128-bit key.
    pub fn new(key: u128) -> Self {
        // Key words: k = (l2, l1, l0, k0) little-end first per the spec.
        let mut k0 = (key & 0xffff_ffff) as u32;
        let mut l = [
            ((key >> 32) & 0xffff_ffff) as u32,
            ((key >> 64) & 0xffff_ffff) as u32,
            ((key >> 96) & 0xffff_ffff) as u32,
        ];
        let mut round_keys = [0u32; ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = k0;
            let mut li = l[i % 3];
            round_fwd(&mut li, &mut k0, i as u32);
            l[i % 3] = li;
        }
        Speck64 { round_keys }
    }

    /// Encrypt one 64-bit block.
    pub fn encrypt(&self, block: u64) -> u64 {
        let mut x = (block >> 32) as u32;
        let mut y = block as u32;
        for &k in &self.round_keys {
            round_fwd(&mut x, &mut y, k);
        }
        (u64::from(x) << 32) | u64::from(y)
    }

    /// A pseudorandom bit derived from a 64-bit input (the MSB of the
    /// ciphertext) — the decision oracle prefix-preserving anonymization
    /// needs.
    pub fn prf_bit(&self, input: u64) -> bool {
        self.encrypt(input) >> 63 == 1
    }

    /// A pseudorandom 64-bit value for pseudonymization.
    pub fn prf_u64(&self, input: u64) -> u64 {
        self.encrypt(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The published SPECK64/128 test vector:
        // key = 1b1a1918 13121110 0b0a0908 03020100
        // plaintext = 3b726574 7475432d -> ciphertext 8c6fa548 454e028b
        let key: u128 = 0x1b1a1918_13121110_0b0a0908_03020100;
        let cipher = Speck64::new(key);
        let pt: u64 = 0x3b726574_7475432d;
        assert_eq!(cipher.encrypt(pt), 0x8c6fa548_454e028b);
    }

    #[test]
    fn deterministic_and_key_dependent() {
        let c1 = Speck64::new(7);
        let c2 = Speck64::new(7);
        let c3 = Speck64::new(8);
        assert_eq!(c1.encrypt(42), c2.encrypt(42));
        assert_ne!(c1.encrypt(42), c3.encrypt(42));
    }

    #[test]
    fn bits_look_balanced() {
        let c = Speck64::new(0xfeed_beef);
        let ones = (0..10_000u64).filter(|&i| c.prf_bit(i)).count();
        // A PRF bit should be near 50/50 over sequential inputs.
        assert!((4_500..5_500).contains(&ones), "ones {ones}");
    }

    #[test]
    fn avalanche_on_single_bit_flips() {
        let c = Speck64::new(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let base = c.encrypt(0x0123_4567_89ab_cdef);
        for bit in 0..64 {
            let flipped = c.encrypt(0x0123_4567_89ab_cdef ^ (1u64 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!(diff >= 16, "weak avalanche at bit {bit}: {diff}");
        }
    }
}
