//! # campuslab-privacy
//!
//! Privacy-preserving data collection (Figure 1's gate between the campus
//! network and the data store): prefix-preserving address anonymization,
//! record scrubbing, and the governance policy the paper assigns to the
//! university IT organization.
//!
//! * [`speck`] — SPECK64/128 as a keyed PRF (validated against the
//!   published test vector).
//! * [`cryptopan`] — Crypto-PAn-style prefix-preserving anonymization:
//!   subnet structure survives, identities don't (the property experiment
//!   E4 verifies and then measures the model-utility cost of).
//! * [`scrub`] — record-level scrubbing policies (addresses, ports, DNS
//!   names, labels).
//! * [`policy`] — the role/purpose/data-class decision matrix with an
//!   audit log; encodes "internal use only".
//! * [`dp`] — Laplace-mechanism aggregate release with a privacy-budget
//!   ledger, for the one data class that might ever leave the university.

//!
//! ```
//! use campuslab_privacy::{common_prefix_len_v4, PrefixPreservingAnon};
//! use std::net::Ipv4Addr;
//!
//! let anon = PrefixPreservingAnon::new(0xfeed_beef);
//! let a = anon.anonymize_v4(Ipv4Addr::new(10, 1, 7, 20));
//! let b = anon.anonymize_v4(Ipv4Addr::new(10, 1, 7, 99));
//! // Same /24 before, same /24 after — identities gone, structure kept.
//! assert!(common_prefix_len_v4(a, b) >= 24);
//! ```

pub mod speck;
pub mod cryptopan;
pub mod scrub;
pub mod policy;
pub mod dp;

pub use dp::{BudgetExhausted, BudgetLedger, LaplaceMechanism, NoisedValue};
pub use cryptopan::{common_prefix_len_v4, common_prefix_len_v6, PrefixPreservingAnon};
pub use policy::{AuditEntry, DataClass, PolicyEngine, Purpose, Role, Verdict};
pub use scrub::{ScrubPolicy, Scrubber};
pub use speck::Speck64;
