//! Prefix-preserving IP address anonymization (Crypto-PAn construction,
//! Xu et al. 2002) over the SPECK PRF.
//!
//! Invariant: for any two addresses that share exactly a k-bit prefix, the
//! anonymized addresses also share exactly a k-bit prefix. Subnet structure
//! — which is what features and routing care about — survives; identities
//! do not.

use crate::speck::Speck64;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A keyed, deterministic, prefix-preserving address anonymizer.
#[derive(Debug, Clone)]
pub struct PrefixPreservingAnon {
    prf: Speck64,
    /// Domain separator so v4 and v6 use disjoint PRF inputs.
    v6_prf: Speck64,
}

impl PrefixPreservingAnon {
    /// Create from a 128-bit key held by the IT organization.
    pub fn new(key: u128) -> Self {
        PrefixPreservingAnon {
            prf: Speck64::new(key),
            v6_prf: Speck64::new(key ^ 0x6666_6666_6666_6666_6666_6666_6666_6666),
        }
    }

    /// Anonymize an IPv4 address.
    ///
    /// For each bit position i, the output bit is the input bit XOR a PRF
    /// bit computed from the i-bit input prefix — the classic Crypto-PAn
    /// one-time-pad-per-prefix construction.
    pub fn anonymize_v4(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let input = u32::from(addr);
        let mut output = 0u32;
        for i in 0..32u32 {
            // The i-bit prefix, left-aligned, plus the length in the low
            // bits so distinct lengths give distinct PRF inputs.
            let prefix = if i == 0 { 0 } else { input >> (32 - i) } as u64;
            let pad = self.prf.prf_bit((prefix << 6) | u64::from(i));
            let bit = (input >> (31 - i)) & 1;
            output = (output << 1) | (bit ^ u32::from(pad));
        }
        Ipv4Addr::from(output)
    }

    /// Anonymize an IPv6 address (same construction over 128 bits; the PRF
    /// input hashes the prefix into 58 bits, which keeps the invariant
    /// because equal prefixes map to equal PRF inputs).
    pub fn anonymize_v6(&self, addr: Ipv6Addr) -> Ipv6Addr {
        let input = u128::from(addr);
        let mut output = 0u128;
        for i in 0..128u32 {
            let prefix = if i == 0 { 0 } else { input >> (128 - i) };
            // Fold the up-to-128-bit prefix through the PRF to 64 bits
            // first, then mix in the position.
            let folded = self
                .v6_prf
                .prf_u64((prefix as u64) ^ self.v6_prf.prf_u64((prefix >> 64) as u64));
            let pad = self.v6_prf.prf_bit(folded ^ u64::from(i).rotate_left(32));
            let bit = (input >> (127 - i)) & 1;
            output = (output << 1) | (bit ^ u128::from(pad));
        }
        Ipv6Addr::from(output)
    }

    /// Anonymize either address family.
    pub fn anonymize(&self, addr: IpAddr) -> IpAddr {
        match addr {
            IpAddr::V4(a) => IpAddr::V4(self.anonymize_v4(a)),
            IpAddr::V6(a) => IpAddr::V6(self.anonymize_v6(a)),
        }
    }

    /// Deterministic pseudonym for a port number (format-preserving within
    /// u16 space is not required; the mapping just needs to be stable and
    /// keyed). Well-known ports (< 1024) are preserved — they are service
    /// identifiers, not user identifiers.
    pub fn pseudonymize_port(&self, port: u16) -> u16 {
        if port < 1024 {
            port
        } else {
            1024 + (self.prf.prf_u64(0x7070_0000 | u64::from(port)) % (65536 - 1024)) as u16
        }
    }
}

/// The length of the longest common prefix of two IPv4 addresses.
pub fn common_prefix_len_v4(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
    (u32::from(a) ^ u32::from(b)).leading_zeros()
}

/// The length of the longest common prefix of two IPv6 addresses.
pub fn common_prefix_len_v6(a: Ipv6Addr, b: Ipv6Addr) -> u32 {
    (u128::from(a) ^ u128::from(b)).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon() -> PrefixPreservingAnon {
        PrefixPreservingAnon::new(0x0123_4567_89ab_cdef_0f0f_0f0f_0f0f_0f0f)
    }

    #[test]
    fn deterministic() {
        let a = anon();
        let ip = Ipv4Addr::new(10, 1, 3, 77);
        assert_eq!(a.anonymize_v4(ip), a.anonymize_v4(ip));
    }

    #[test]
    fn different_keys_differ() {
        let a = PrefixPreservingAnon::new(1);
        let b = PrefixPreservingAnon::new(2);
        let ip = Ipv4Addr::new(10, 1, 3, 77);
        assert_ne!(a.anonymize_v4(ip), b.anonymize_v4(ip));
    }

    #[test]
    fn addresses_actually_change() {
        let a = anon();
        let mut changed = 0;
        for i in 0..256 {
            let ip = Ipv4Addr::new(10, 1, 1, i as u8);
            if a.anonymize_v4(ip) != ip {
                changed += 1;
            }
        }
        assert!(changed > 250, "only {changed}/256 changed");
    }

    #[test]
    fn prefix_preservation_exact_v4() {
        let a = anon();
        let pairs = [
            (Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(10, 1, 2, 200)),   // /24 shared
            (Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(10, 1, 99, 3)),    // /16 shared
            (Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(192, 168, 0, 1)),  // divergent early
            (Ipv4Addr::new(203, 0, 113, 9), Ipv4Addr::new(203, 0, 113, 10)),
        ];
        for (x, y) in pairs {
            let shared = common_prefix_len_v4(x, y);
            let shared_anon = common_prefix_len_v4(a.anonymize_v4(x), a.anonymize_v4(y));
            assert_eq!(shared, shared_anon, "{x} vs {y}");
        }
    }

    #[test]
    fn prefix_preservation_exhaustive_last_octet() {
        let a = anon();
        let base = Ipv4Addr::new(10, 5, 7, 0);
        let anon_base = a.anonymize_v4(base);
        for i in 1..=255u8 {
            let other = Ipv4Addr::new(10, 5, 7, i);
            assert_eq!(
                common_prefix_len_v4(base, other),
                common_prefix_len_v4(anon_base, a.anonymize_v4(other)),
                "failed at {other}"
            );
        }
    }

    #[test]
    fn injective_over_a_subnet() {
        let a = anon();
        let mut seen = std::collections::HashSet::new();
        for i in 0..=255u8 {
            assert!(seen.insert(a.anonymize_v4(Ipv4Addr::new(10, 9, 9, i))));
        }
    }

    #[test]
    fn prefix_preservation_v6() {
        let a = anon();
        let x: Ipv6Addr = "2001:db8:aaaa::1".parse().unwrap();
        let y: Ipv6Addr = "2001:db8:aaaa::ffff".parse().unwrap();
        let z: Ipv6Addr = "2001:db9::1".parse().unwrap();
        assert_eq!(
            common_prefix_len_v6(x, y),
            common_prefix_len_v6(a.anonymize_v6(x), a.anonymize_v6(y))
        );
        assert_eq!(
            common_prefix_len_v6(x, z),
            common_prefix_len_v6(a.anonymize_v6(x), a.anonymize_v6(z))
        );
        assert_ne!(a.anonymize_v6(x), x);
    }

    #[test]
    fn port_pseudonymization_preserves_wellknown() {
        let a = anon();
        assert_eq!(a.pseudonymize_port(53), 53);
        assert_eq!(a.pseudonymize_port(443), 443);
        let p = a.pseudonymize_port(51515);
        assert!(p >= 1024);
        assert_eq!(p, a.pseudonymize_port(51515));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prefix_invariant_holds_for_random_pairs(x in any::<u32>(), y in any::<u32>(), key in any::<u128>()) {
            let a = PrefixPreservingAnon::new(key);
            let (x, y) = (Ipv4Addr::from(x), Ipv4Addr::from(y));
            prop_assert_eq!(
                common_prefix_len_v4(x, y),
                common_prefix_len_v4(a.anonymize_v4(x), a.anonymize_v4(y))
            );
        }

        #[test]
        fn anonymization_is_injective_on_random_sets(addrs in proptest::collection::hash_set(any::<u32>(), 1..200)) {
            let a = PrefixPreservingAnon::new(0xabcd);
            let out: std::collections::HashSet<Ipv4Addr> = addrs
                .iter()
                .map(|&x| a.anonymize_v4(Ipv4Addr::from(x)))
                .collect();
            prop_assert_eq!(out.len(), addrs.len());
        }
    }
}
