//! The data-governance policy engine: "arbitrating what data can or cannot
//! be made available to which of the university's many different
//! constituents" (paper §5), with an audit log.

use serde::Serialize;

/// Who is asking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Role {
    /// The IT organization: owns the store, sees everything.
    ItOperator,
    /// University networking researchers (the paper's primary audience).
    Researcher,
    /// Internal audit / compliance.
    Auditor,
    /// Anyone outside the university.
    External,
}

/// Why they are asking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Purpose {
    /// Operating and defending the network.
    SecurityOperations,
    /// Developing and evaluating learning models.
    Research,
    /// Compliance review.
    Audit,
}

/// What they are asking for, ordered from most to least sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum DataClass {
    /// Raw packets with payloads — full identifying power.
    RawPackets,
    /// Packet/flow/DNS records with identities intact but payloads gone.
    IdentifiedRecords,
    /// Prefix-preservingly anonymized records.
    AnonymizedRecords,
    /// Aggregates only (counts, histograms, rates).
    AggregateStats,
}

/// The engine's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    Allow,
    Deny,
}

/// One entry in the access audit log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditEntry {
    pub ts_ns: u64,
    pub role: Role,
    pub purpose: Purpose,
    pub class: DataClass,
    pub verdict: Verdict,
}

/// The policy engine. The matrix encodes the paper's stance: data stays
/// internal; researchers get anonymized records; only the IT organization
/// touches raw packets, and only for security operations.
#[derive(Debug, Default)]
pub struct PolicyEngine {
    audit: Vec<AuditEntry>,
}

impl PolicyEngine {
    /// A fresh engine with an empty audit log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The decision matrix, side-effect free.
    pub fn decide(role: Role, purpose: Purpose, class: DataClass) -> Verdict {
        use DataClass::*;
        use Purpose::*;
        use Role::*;
        let allow = match (role, purpose) {
            // IT operators defending the network see everything.
            (ItOperator, SecurityOperations) => true,
            // IT operators doing research follow the researcher rules.
            (ItOperator, Research) => class >= AnonymizedRecords,
            (ItOperator, Audit) => class >= IdentifiedRecords,
            // Researchers never see raw payloads or unanonymized records.
            (Researcher, Research) => class >= AnonymizedRecords,
            (Researcher, SecurityOperations) => false,
            (Researcher, Audit) => false,
            // Auditors review identified records but not payloads.
            (Auditor, Audit) => class >= IdentifiedRecords,
            (Auditor, _) => false,
            // The paper: the data store is "only meant for internal use".
            (External, _) => false,
        };
        if allow {
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }

    /// Decide and record the access attempt.
    pub fn check(&mut self, ts_ns: u64, role: Role, purpose: Purpose, class: DataClass) -> Verdict {
        let verdict = Self::decide(role, purpose, class);
        self.audit.push(AuditEntry { ts_ns, role, purpose, class, verdict });
        verdict
    }

    /// The audit log so far.
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Denied attempts in the log.
    pub fn denials(&self) -> impl Iterator<Item = &AuditEntry> {
        self.audit.iter().filter(|e| e.verdict == Verdict::Deny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DataClass::*;
    use Purpose::*;
    use Role::*;

    #[test]
    fn external_parties_get_nothing() {
        for purpose in [SecurityOperations, Research, Audit] {
            for class in [RawPackets, IdentifiedRecords, AnonymizedRecords, AggregateStats] {
                assert_eq!(PolicyEngine::decide(External, purpose, class), Verdict::Deny);
            }
        }
    }

    #[test]
    fn researchers_get_anonymized_not_raw() {
        assert_eq!(
            PolicyEngine::decide(Researcher, Research, AnonymizedRecords),
            Verdict::Allow
        );
        assert_eq!(
            PolicyEngine::decide(Researcher, Research, AggregateStats),
            Verdict::Allow
        );
        assert_eq!(
            PolicyEngine::decide(Researcher, Research, IdentifiedRecords),
            Verdict::Deny
        );
        assert_eq!(PolicyEngine::decide(Researcher, Research, RawPackets), Verdict::Deny);
    }

    #[test]
    fn it_sec_ops_sees_everything() {
        for class in [RawPackets, IdentifiedRecords, AnonymizedRecords, AggregateStats] {
            assert_eq!(
                PolicyEngine::decide(ItOperator, SecurityOperations, class),
                Verdict::Allow
            );
        }
        // ...but an IT operator doing research is treated as a researcher.
        assert_eq!(
            PolicyEngine::decide(ItOperator, Research, RawPackets),
            Verdict::Deny
        );
    }

    #[test]
    fn auditors_see_identified_but_not_raw() {
        assert_eq!(
            PolicyEngine::decide(Auditor, Audit, IdentifiedRecords),
            Verdict::Allow
        );
        assert_eq!(PolicyEngine::decide(Auditor, Audit, RawPackets), Verdict::Deny);
        assert_eq!(
            PolicyEngine::decide(Auditor, Research, AggregateStats),
            Verdict::Deny
        );
    }

    #[test]
    fn audit_log_records_all_attempts() {
        let mut engine = PolicyEngine::new();
        engine.check(1, Researcher, Research, AnonymizedRecords);
        engine.check(2, Researcher, Research, RawPackets);
        engine.check(3, External, Research, AggregateStats);
        assert_eq!(engine.audit_log().len(), 3);
        let denials: Vec<_> = engine.denials().collect();
        assert_eq!(denials.len(), 2);
        assert_eq!(denials[0].ts_ns, 2);
        assert_eq!(denials[1].role, External);
    }
}
