//! Record scrubbing: applies the anonymization policy to the record types
//! before they are released beyond the IT organization's enclave.

use crate::cryptopan::PrefixPreservingAnon;
use campuslab_capture::{DnsMetaRecord, FlowRecord, PacketRecord};

/// What survives scrubbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubPolicy {
    /// Prefix-preservingly anonymize IP addresses.
    pub anonymize_addresses: bool,
    /// Pseudonymize ephemeral ports (well-known ports always survive).
    pub pseudonymize_ports: bool,
    /// Replace DNS query names with keyed pseudonyms, keeping the TLD.
    pub pseudonymize_qnames: bool,
    /// Strip ground-truth labels (for release outside the research group).
    pub strip_labels: bool,
}

impl ScrubPolicy {
    /// The policy for researchers inside the university: anonymized
    /// identities, labels intact (labels are synthetic anyway).
    pub fn internal_research() -> Self {
        ScrubPolicy {
            anonymize_addresses: true,
            pseudonymize_ports: true,
            pseudonymize_qnames: true,
            strip_labels: false,
        }
    }

    /// The strictest policy: everything identifying removed or recoded.
    pub fn maximal() -> Self {
        ScrubPolicy {
            anonymize_addresses: true,
            pseudonymize_ports: true,
            pseudonymize_qnames: true,
            strip_labels: true,
        }
    }
}

/// A scrubber bound to a key and a policy.
pub struct Scrubber {
    anon: PrefixPreservingAnon,
    /// Domain-separated PRF for name pseudonyms.
    name_prf: crate::speck::Speck64,
    policy: ScrubPolicy,
}

impl Scrubber {
    /// Create a scrubber.
    pub fn new(key: u128, policy: ScrubPolicy) -> Self {
        Scrubber {
            anon: PrefixPreservingAnon::new(key),
            name_prf: crate::speck::Speck64::new(key ^ 0x5c5c_5c5c_5c5c_5c5c_5c5c_5c5c_5c5c_5c5c),
            policy,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> ScrubPolicy {
        self.policy
    }

    /// Scrub one packet record.
    pub fn scrub_packet(&self, mut rec: PacketRecord) -> PacketRecord {
        if self.policy.anonymize_addresses {
            rec.src = self.anon.anonymize(rec.src);
            rec.dst = self.anon.anonymize(rec.dst);
        }
        if self.policy.pseudonymize_ports {
            rec.src_port = self.anon.pseudonymize_port(rec.src_port);
            rec.dst_port = self.anon.pseudonymize_port(rec.dst_port);
        }
        if self.policy.strip_labels {
            rec.flow_id = 0;
            rec.label_app = 0;
            rec.label_attack = 0;
        }
        rec
    }

    /// Scrub a flow record.
    pub fn scrub_flow(&self, mut f: FlowRecord) -> FlowRecord {
        if self.policy.anonymize_addresses {
            f.key.src = self.anon.anonymize(f.key.src);
            f.key.dst = self.anon.anonymize(f.key.dst);
        }
        if self.policy.pseudonymize_ports {
            f.key.src_port = self.anon.pseudonymize_port(f.key.src_port);
            f.key.dst_port = self.anon.pseudonymize_port(f.key.dst_port);
        }
        if self.policy.strip_labels {
            f.label_app = 0;
            f.label_attack = 0;
        }
        f
    }

    /// Scrub a DNS metadata record.
    pub fn scrub_dns(&self, mut d: DnsMetaRecord) -> DnsMetaRecord {
        if self.policy.anonymize_addresses {
            d.client = self.anon.anonymize(d.client);
            d.server = self.anon.anonymize(d.server);
        }
        if self.policy.pseudonymize_qnames {
            d.qname = self.pseudonymize_qname(&d.qname);
        }
        if self.policy.strip_labels {
            d.label_attack = 0;
        }
        d
    }

    /// Keyed pseudonym for a DNS name: each label is recoded to a stable
    /// hex token; the TLD is preserved so coarse category statistics
    /// survive.
    pub fn pseudonymize_qname(&self, qname: &str) -> String {
        if qname.is_empty() {
            return String::new();
        }
        let labels: Vec<&str> = qname.split('.').collect();
        let mut out = Vec::with_capacity(labels.len());
        for (i, label) in labels.iter().enumerate() {
            if i + 1 == labels.len() {
                out.push((*label).to_string());
            } else {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in label.bytes() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
                }
                out.push(format!("{:012x}", self.name_prf.encrypt(h) & 0xffff_ffff_ffff));
            }
        }
        out.join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, FlowKey, TcpFlags};

    fn packet() -> PacketRecord {
        PacketRecord {
            ts_ns: 1,
            direction: Direction::Inbound,
            src: "203.0.113.7".parse().unwrap(),
            dst: "10.1.1.10".parse().unwrap(),
            protocol: 17,
            src_port: 53,
            dst_port: 49_152,
            wire_len: 100,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 77,
            label_app: 1,
            label_attack: 1,
        }
    }

    #[test]
    fn internal_policy_recodes_identity_keeps_labels() {
        let s = Scrubber::new(42, ScrubPolicy::internal_research());
        let out = s.scrub_packet(packet());
        assert_ne!(out.src, packet().src);
        assert_ne!(out.dst, packet().dst);
        assert_eq!(out.src_port, 53, "well-known port preserved");
        assert_ne!(out.dst_port, 49_152, "ephemeral port recoded");
        assert_eq!(out.label_attack, 1, "labels preserved for research");
        assert_eq!(out.wire_len, 100, "volume features preserved");
    }

    #[test]
    fn maximal_policy_strips_labels() {
        let s = Scrubber::new(42, ScrubPolicy::maximal());
        let out = s.scrub_packet(packet());
        assert_eq!(out.label_app, 0);
        assert_eq!(out.label_attack, 0);
        assert_eq!(out.flow_id, 0);
    }

    #[test]
    fn scrubbing_is_deterministic_per_key() {
        let s1 = Scrubber::new(42, ScrubPolicy::internal_research());
        let s2 = Scrubber::new(42, ScrubPolicy::internal_research());
        let s3 = Scrubber::new(43, ScrubPolicy::internal_research());
        assert_eq!(s1.scrub_packet(packet()), s2.scrub_packet(packet()));
        assert_ne!(s1.scrub_packet(packet()).src, s3.scrub_packet(packet()).src);
    }

    #[test]
    fn flow_scrubbing_keeps_both_directions_joinable() {
        let s = Scrubber::new(42, ScrubPolicy::internal_research());
        let key = FlowKey {
            src: "10.1.1.10".parse().unwrap(),
            dst: "203.0.113.7".parse().unwrap(),
            protocol: 6,
            src_port: 50_000,
            dst_port: 443,
        };
        let f = FlowRecord {
            key,
            first_ts_ns: 0,
            last_ts_ns: 1,
            fwd_packets: 1,
            fwd_bytes: 1,
            rev_packets: 0,
            rev_bytes: 0,
            syn_count: 0,
            fin_count: 0,
            rst_count: 0,
            mean_iat_ns: 0,
            min_len: 0,
            max_len: 0,
            label_app: 0,
            label_attack: 0,
        };
        let scrubbed = s.scrub_flow(f.clone());
        // Scrubbing the reversed key gives the reversed scrubbed key:
        // conversations remain joinable after anonymization.
        let mut rev = f;
        rev.key = rev.key.reversed();
        let scrubbed_rev = s.scrub_flow(rev);
        assert_eq!(scrubbed.key.reversed(), scrubbed_rev.key);
    }

    #[test]
    fn qname_pseudonym_keeps_tld_and_structure() {
        let s = Scrubber::new(42, ScrubPolicy::internal_research());
        let out = s.pseudonymize_qname("www.cs.example.edu");
        assert!(out.ends_with(".edu"));
        assert_eq!(out.split('.').count(), 4);
        assert!(!out.contains("example"));
        // Stability and distinctness.
        assert_eq!(out, s.pseudonymize_qname("www.cs.example.edu"));
        assert_ne!(out, s.pseudonymize_qname("www.ee.example.edu"));
        // Shared labels map to shared pseudo-labels (joinability).
        let a = s.pseudonymize_qname("a.example.edu");
        let b = s.pseudonymize_qname("b.example.edu");
        assert_eq!(
            a.split('.').nth(1).unwrap(),
            b.split('.').nth(1).unwrap()
        );
        assert_eq!(s.pseudonymize_qname(""), "");
    }

    #[test]
    fn dns_record_scrub() {
        let s = Scrubber::new(42, ScrubPolicy::maximal());
        let d = DnsMetaRecord {
            ts_ns: 5,
            direction: Direction::Outbound,
            client: "10.1.1.10".parse().unwrap(),
            server: "10.1.255.53".parse().unwrap(),
            qname: "secret-project.example.edu".into(),
            qtype: 1,
            is_response: false,
            answer_count: 0,
            wire_len: 80,
            amplification_prone: false,
            label_attack: 1,
        };
        let out = s.scrub_dns(d.clone());
        assert_ne!(out.client, d.client);
        assert!(!out.qname.contains("secret-project"));
        assert_eq!(out.label_attack, 0);
        assert!(out.amplification_prone == d.amplification_prone);
    }
}
