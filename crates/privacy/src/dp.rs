//! Differentially-private aggregate release: the one data class the
//! governance matrix could ever justify releasing beyond the university is
//! aggregate statistics — and even those leak without noise. The Laplace
//! mechanism here makes `AggregateStats` releases (ε, 0)-DP, with a privacy
//! budget ledger the IT organization can audit.

use crate::speck::Speck64;
use serde::Serialize;

/// A seeded Laplace sampler over the SPECK PRF (no floating-point RNG state
/// to carry around; releases are reproducible given the key and a nonce).
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    prf: Speck64,
    epsilon: f64,
}

/// One released, noised statistic.
#[derive(Debug, Clone, Serialize)]
pub struct NoisedValue {
    pub name: String,
    pub value: f64,
    pub epsilon_spent: f64,
}

impl LaplaceMechanism {
    /// A mechanism with per-release budget `epsilon`.
    pub fn new(key: u128, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        LaplaceMechanism { prf: Speck64::new(key ^ 0xD9D9_D9D9), epsilon }
    }

    /// Uniform in (0, 1) derived from the PRF and a nonce.
    fn uniform(&self, nonce: u64) -> f64 {
        let bits = self.prf.prf_u64(nonce);
        // 53 mantissa bits, strictly inside (0, 1).
        ((bits >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    /// One Laplace(0, sensitivity/epsilon) draw.
    fn laplace(&self, nonce: u64, sensitivity: f64) -> f64 {
        let u = self.uniform(nonce) - 0.5;
        let b = sensitivity / self.epsilon;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Release a count (sensitivity 1) with Laplace noise, clamped at zero.
    pub fn release_count(&self, name: &str, true_count: u64, nonce: u64) -> NoisedValue {
        let noised = (true_count as f64 + self.laplace(nonce, 1.0)).max(0.0);
        NoisedValue { name: name.to_string(), value: noised, epsilon_spent: self.epsilon }
    }

    /// Release a bounded sum with the given sensitivity (max per-record
    /// contribution).
    pub fn release_sum(
        &self,
        name: &str,
        true_sum: f64,
        sensitivity: f64,
        nonce: u64,
    ) -> NoisedValue {
        assert!(sensitivity > 0.0);
        NoisedValue {
            name: name.to_string(),
            value: true_sum + self.laplace(nonce, sensitivity),
            epsilon_spent: self.epsilon,
        }
    }
}

/// A privacy-budget ledger: composition is additive, and releases stop when
/// the budget is spent.
#[derive(Debug)]
pub struct BudgetLedger {
    total_epsilon: f64,
    spent: f64,
    releases: Vec<NoisedValue>,
}

/// Why a release was refused.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BudgetExhausted {
    pub requested: f64,
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exhausted: requested eps={}, remaining eps={}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExhausted {}

impl BudgetLedger {
    /// A ledger with a total ε budget.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(total_epsilon > 0.0);
        BudgetLedger { total_epsilon, spent: 0.0, releases: Vec::new() }
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.total_epsilon - self.spent).max(0.0)
    }

    /// Record a release, debiting its ε; refuses when the budget is gone.
    pub fn record(&mut self, release: NoisedValue) -> Result<&NoisedValue, BudgetExhausted> {
        if release.epsilon_spent > self.remaining() + 1e-12 {
            return Err(BudgetExhausted {
                requested: release.epsilon_spent,
                remaining: self.remaining(),
            });
        }
        self.spent += release.epsilon_spent;
        self.releases.push(release);
        Ok(self.releases.last().expect("just pushed"))
    }

    /// Every release made so far.
    pub fn releases(&self) -> &[NoisedValue] {
        &self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_per_key_and_nonce() {
        let m1 = LaplaceMechanism::new(42, 1.0);
        let m2 = LaplaceMechanism::new(42, 1.0);
        let m3 = LaplaceMechanism::new(43, 1.0);
        assert_eq!(m1.release_count("c", 100, 7).value, m2.release_count("c", 100, 7).value);
        assert_ne!(m1.release_count("c", 100, 7).value, m3.release_count("c", 100, 7).value);
        assert_ne!(m1.release_count("c", 100, 7).value, m1.release_count("c", 100, 8).value);
    }

    #[test]
    fn noise_scale_tracks_epsilon() {
        // Empirical mean absolute noise ~ sensitivity/epsilon.
        let spread = |eps: f64| {
            let m = LaplaceMechanism::new(1, eps);
            (0..2_000u64)
                .map(|n| (m.release_count("c", 1_000_000, n).value - 1_000_000.0).abs())
                .sum::<f64>()
                / 2_000.0
        };
        let tight = spread(10.0);
        let loose = spread(0.1);
        assert!(loose > 50.0 * tight, "loose {loose} vs tight {tight}");
        // Laplace(b) has E|X| = b = 1/eps.
        assert!((tight - 0.1).abs() < 0.05, "tight {tight}");
    }

    #[test]
    fn counts_are_nonnegative() {
        let m = LaplaceMechanism::new(5, 0.05);
        for n in 0..500 {
            assert!(m.release_count("c", 2, n).value >= 0.0);
        }
    }

    #[test]
    fn ledger_enforces_composition() {
        let m = LaplaceMechanism::new(9, 0.5);
        let mut ledger = BudgetLedger::new(1.0);
        assert!(ledger.record(m.release_count("a", 10, 1)).is_ok());
        assert!(ledger.record(m.release_count("b", 20, 2)).is_ok());
        let err = ledger.record(m.release_count("c", 30, 3)).unwrap_err();
        assert!(err.remaining < 1e-9);
        assert_eq!(ledger.releases().len(), 2);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn sums_respect_sensitivity() {
        let m = LaplaceMechanism::new(11, 1.0);
        // Mean absolute noise ~ sensitivity / eps = 1500.
        let mean_abs = (0..2_000u64)
            .map(|n| (m.release_sum("bytes", 1e9, 1_500.0, n).value - 1e9).abs())
            .sum::<f64>()
            / 2_000.0;
        assert!((mean_abs - 1_500.0).abs() < 300.0, "mean abs {mean_abs}");
    }
}
