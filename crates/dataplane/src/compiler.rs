//! The tree→pipeline compiler: step (iii) of the paper's road to
//! deployment — "compile the deployable learning model ... into a
//! target-specific program (e.g., P4) and configure the programmable
//! switches" (§5).
//!
//! Every root-to-leaf rule of a distilled decision tree is a conjunction of
//! integer intervals over header fields; each interval expands to ternary
//! prefix blocks, and the cross-product of the per-field blocks becomes
//! TCAM entries. Tree depth therefore costs *multiplicatively* in entries —
//! the concrete mechanism behind the paper's claim that data planes cannot
//! host hundreds of concurrent tasks.

use crate::fields::{HeaderField, FIELD_ORDER};
use crate::program::{Action, PipelineProgram, TableEntry};
use crate::ternary::{range_to_ternary, TernaryMatch};
use campuslab_ml::{DecisionTree, LeafRule};
use serde::Serialize;

/// Compilation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CompileConfig {
    /// The class whose prediction means "drop" (1 = attack in the binary
    /// packet schema).
    pub drop_class: usize,
    /// Only compile drop rules whose leaf confidence reaches this gate —
    /// the paper's "if confidence in detection is at least 90%".
    pub confidence_gate: f64,
    /// Skip leaves with less training support than this (noise rules).
    pub min_support: usize,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig { drop_class: 1, confidence_gate: 0.9, min_support: 1 }
    }
}

/// What compilation produced.
#[derive(Debug, Clone, Serialize)]
pub struct CompileReport {
    pub leaves_total: usize,
    pub leaves_drop: usize,
    pub leaves_gated_out: usize,
    pub leaves_skipped_support: usize,
    /// Leaves whose bounds referenced a feature index outside the schema
    /// (a malformed or stale tree); skipped rather than panicking.
    pub leaves_malformed: usize,
    pub tcam_entries: usize,
    /// Worst single-leaf expansion factor.
    pub max_expansion: usize,
}

/// Compile a decision tree over the canonical packet-feature schema into a
/// drop/forward pipeline program.
pub fn compile_tree(
    tree: &DecisionTree,
    cfg: CompileConfig,
    name: impl Into<String>,
) -> (PipelineProgram, CompileReport) {
    let rules = tree.leaf_rules();
    let mut entries = Vec::new();
    let mut report = CompileReport {
        leaves_total: rules.len(),
        leaves_drop: 0,
        leaves_gated_out: 0,
        leaves_skipped_support: 0,
        leaves_malformed: 0,
        tcam_entries: 0,
        max_expansion: 0,
    };
    for rule in &rules {
        if rule.class != cfg.drop_class {
            continue;
        }
        if rule.support < cfg.min_support {
            report.leaves_skipped_support += 1;
            continue;
        }
        if rule.confidence < cfg.confidence_gate {
            report.leaves_gated_out += 1;
            continue;
        }
        let Some(expanded) = expand_rule(rule) else {
            report.leaves_malformed += 1;
            continue;
        };
        report.leaves_drop += 1;
        report.max_expansion = report.max_expansion.max(expanded.len());
        for matches in expanded {
            entries.push(TableEntry {
                matches,
                action: Action::Drop,
                priority: 0,
                confidence: rule.confidence,
            });
        }
    }
    report.tcam_entries = entries.len();
    (PipelineProgram::new(name, entries), report)
}

/// Expand one leaf rule into the cross-product of per-field ternary
/// blocks. Returns an empty vec for infeasible rules (empty intervals)
/// and `None` when a bound references a feature index outside the schema
/// (a malformed tree must not panic the compiler path).
fn expand_rule(rule: &LeafRule) -> Option<Vec<[TernaryMatch; FIELD_ORDER.len()]>> {
    // Per-field expansions, starting from "unconstrained".
    let mut per_field: Vec<Vec<TernaryMatch>> = vec![vec![TernaryMatch::ANY]; FIELD_ORDER.len()];
    for &(feature, lo, hi) in &rule.bounds {
        let field = HeaderField::try_from_feature_index(feature)?;
        let max = field.max_value();
        // Features are integers: `x > lo` means `x >= floor(lo) + 1`,
        // `x <= hi` means `x <= floor(hi)`.
        let lo_int = if lo.is_finite() {
            (lo.floor() as i64 + 1).max(0) as u32
        } else {
            0
        };
        let hi_int = if hi.is_finite() {
            let h = hi.floor();
            if h < 0.0 {
                return Some(Vec::new());
            }
            (h as u32).min(max)
        } else {
            max
        };
        if lo_int > hi_int || lo_int > max {
            return Some(Vec::new()); // infeasible under this field's width
        }
        per_field[feature] = range_to_ternary(lo_int, hi_int, field.bits());
    }
    // Cross product.
    let mut out: Vec<[TernaryMatch; FIELD_ORDER.len()]> =
        vec![[TernaryMatch::ANY; FIELD_ORDER.len()]];
    for (f, blocks) in per_field.iter().enumerate() {
        if blocks.len() == 1 {
            for entry in &mut out {
                entry[f] = blocks[0];
            }
            continue;
        }
        let mut next = Vec::with_capacity(out.len() * blocks.len());
        for entry in &out {
            for &b in blocks {
                let mut e = *entry;
                e[f] = b;
                next.push(e);
            }
        }
        out = next;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{fields_from_record, FieldValues};
    use campuslab_capture::{Direction, PacketRecord, TcpFlags};
    use campuslab_ml::{Classifier, Dataset, TreeConfig};
    use std::net::IpAddr;

    fn rec(proto: u8, sport: u16, len: u32, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: 0,
            direction: Direction::Inbound,
            src: IpAddr::from([203, 0, 113, 1]),
            dst: IpAddr::from([10, 1, 1, 10]),
            protocol: proto,
            src_port: sport,
            dst_port: 40_000,
            wire_len: len,
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    /// Training set where attacks are big UDP packets from port 53.
    fn training_records() -> Vec<PacketRecord> {
        let mut records = Vec::new();
        for i in 0..300u32 {
            records.push(rec(17, 53, 1_500 + (i % 400), 1)); // amplification
            records.push(rec(6, 443, 100 + (i % 1_000), 0)); // benign web
            records.push(rec(17, 53, 80 + (i % 60), 0)); // benign dns answers
        }
        records
    }

    fn feature_row(v: &FieldValues) -> Vec<f64> {
        v.iter().map(|&x| f64::from(x)).collect()
    }

    #[test]
    fn compiled_program_agrees_with_the_tree() {
        let records = training_records();
        let x: Vec<Vec<f64>> = records.iter().map(|r| feature_row(&fields_from_record(r))).collect();
        let y: Vec<usize> = records.iter().map(|r| usize::from(r.label_attack != 0)).collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let data = Dataset::new(x, y, names);
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(5));
        let (program, report) = compile_tree(
            &tree,
            CompileConfig { confidence_gate: 0.5, ..Default::default() },
            "test",
        );
        assert!(report.leaves_drop > 0);
        assert!(report.tcam_entries > 0);
        // Equivalence: for every training record, drop iff tree says 1.
        let mut rt = program.into_runtime();
        for r in &records {
            let fields = fields_from_record(r);
            let tree_says = tree.predict(&feature_row(&fields));
            let action = rt.process(&fields);
            assert_eq!(
                action == Action::Drop,
                tree_says == 1,
                "disagreement on {r:?}"
            );
        }
    }

    #[test]
    fn equivalence_on_random_field_values() {
        // Stronger: the program equals the tree on arbitrary inputs, not
        // just training data (compilation must be semantics-preserving).
        let records = training_records();
        let x: Vec<Vec<f64>> = records.iter().map(|r| feature_row(&fields_from_record(r))).collect();
        let y: Vec<usize> = records.iter().map(|r| usize::from(r.label_attack != 0)).collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let tree = DecisionTree::fit(&Dataset::new(x, y, names), TreeConfig::shallow(6));
        let (program, _) = compile_tree(
            &tree,
            CompileConfig { confidence_gate: 0.5, ..Default::default() },
            "rand",
        );
        let mut rt = program.into_runtime();
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..5_000 {
            let r = next();
            let mut fields: FieldValues = [0; FIELD_ORDER.len()];
            for (i, f) in FIELD_ORDER.iter().enumerate() {
                fields[i] = (next() as u32) & f.max_value();
            }
            let _ = r;
            let tree_says = tree.predict(&feature_row(&fields));
            let action = rt.process(&fields);
            assert_eq!(action == Action::Drop, tree_says == 1);
        }
    }

    #[test]
    fn confidence_gate_prunes_uncertain_leaves() {
        let records = training_records();
        let x: Vec<Vec<f64>> = records.iter().map(|r| feature_row(&fields_from_record(r))).collect();
        // Noisy labels so some leaves are impure.
        let y: Vec<usize> = records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if i % 11 == 0 {
                    usize::from(r.label_attack == 0)
                } else {
                    usize::from(r.label_attack != 0)
                }
            })
            .collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let tree = DecisionTree::fit(
            &Dataset::new(x, y, names),
            TreeConfig { max_depth: 3, min_samples_leaf: 50, ..Default::default() },
        );
        let (strict, strict_report) =
            compile_tree(&tree, CompileConfig { confidence_gate: 0.999, ..Default::default() }, "s");
        let (loose, loose_report) =
            compile_tree(&tree, CompileConfig { confidence_gate: 0.5, ..Default::default() }, "l");
        assert!(strict_report.leaves_gated_out > 0);
        assert!(loose.n_entries() >= strict.n_entries());
        assert!(loose_report.leaves_drop >= strict_report.leaves_drop);
    }

    #[test]
    fn deeper_trees_cost_more_entries() {
        let records = training_records();
        let x: Vec<Vec<f64>> = records.iter().map(|r| feature_row(&fields_from_record(r))).collect();
        // A label with fine structure in wire_len so depth keeps helping.
        let y: Vec<usize> = records
            .iter()
            .map(|r| usize::from((r.wire_len / 100) % 2 == 0))
            .collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let data = Dataset::new(x, y, names);
        let shallow = DecisionTree::fit(&data, TreeConfig::shallow(2));
        let deep = DecisionTree::fit(&data, TreeConfig::shallow(8));
        let cfg = CompileConfig { confidence_gate: 0.5, ..Default::default() };
        let (p_shallow, _) = compile_tree(&shallow, cfg, "shallow");
        let (p_deep, _) = compile_tree(&deep, cfg, "deep");
        assert!(
            p_deep.n_entries() > p_shallow.n_entries(),
            "deep {} vs shallow {}",
            p_deep.n_entries(),
            p_shallow.n_entries()
        );
    }

    #[test]
    fn infeasible_bounds_produce_no_entries() {
        let rule = LeafRule {
            bounds: vec![(4, 300.0, f64::INFINITY)], // ttl > 300: impossible for 8-bit field
            class: 1,
            confidence: 1.0,
            support: 10,
        };
        assert!(expand_rule(&rule).expect("feasibility, not malformedness").is_empty());
    }

    #[test]
    fn malformed_feature_index_is_counted_not_panicked() {
        // A bound referencing a feature outside the 13-field schema models
        // a stale or corrupted tree; compilation must skip the leaf and
        // report it, never index out of bounds.
        let rule = LeafRule {
            bounds: vec![(FIELD_ORDER.len() + 3, 0.0, 10.0)],
            class: 1,
            confidence: 1.0,
            support: 10,
        };
        assert!(expand_rule(&rule).is_none());
        // End to end: a tree fit against a *wider* feature schema (here 16
        // features, splitting on index 15) is exactly the stale-tree case.
        let n = 200;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row = vec![0.0; 16];
                row[15] = f64::from(i % 2);
                row
            })
            .collect();
        let y: Vec<usize> = (0..n).map(|i| (i % 2) as usize).collect();
        let names = (0..16).map(|i| format!("f{i}")).collect();
        let tree = DecisionTree::fit(&Dataset::new(x, y, names), TreeConfig::shallow(2));
        let (program, report) = compile_tree(&tree, CompileConfig::default(), "stale");
        assert!(report.leaves_malformed > 0);
        assert_eq!(report.leaves_drop, 0);
        assert_eq!(program.n_entries(), 0);
    }
}
