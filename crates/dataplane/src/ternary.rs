//! Range-to-ternary expansion: TCAMs match (value, mask) pairs, so an
//! integer range must be covered by a minimal set of aligned prefix
//! blocks. This expansion is exactly why tree depth is expensive in the
//! data plane (experiment E6).

use serde::{Deserialize, Serialize};

/// One TCAM cell: matches `x` when `x & mask == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TernaryMatch {
    pub value: u32,
    pub mask: u32,
}

impl TernaryMatch {
    /// The wildcard: matches anything.
    pub const ANY: TernaryMatch = TernaryMatch { value: 0, mask: 0 };

    /// Exact match on `v`.
    pub fn exact(v: u32, width: u32) -> Self {
        let mask = width_mask(width);
        TernaryMatch { value: v & mask, mask }
    }

    /// Whether `x` matches this cell.
    pub fn matches(&self, x: u32) -> bool {
        x & self.mask == self.value
    }
}

fn width_mask(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Cover the inclusive range `[lo, hi]` of a `width`-bit field with the
/// minimal set of aligned power-of-two blocks (the standard greedy
/// prefix-expansion; worst case `2*width - 2` entries).
pub fn range_to_ternary(lo: u32, hi: u32, width: u32) -> Vec<TernaryMatch> {
    assert!((1..=32).contains(&width));
    let field_mask = width_mask(width);
    assert!(lo <= hi, "empty range");
    assert!(hi <= field_mask, "range exceeds field width");
    if lo == 0 && hi == field_mask {
        return vec![TernaryMatch { value: 0, mask: 0 }];
    }
    let mut out = Vec::new();
    let mut at = u64::from(lo);
    let hi = u64::from(hi);
    while at <= hi {
        // Largest power-of-two block that starts at `at` (alignment) and
        // stays within the range.
        let align = if at == 0 { 1u64 << width } else { at & at.wrapping_neg() };
        let mut block = align;
        while at + block - 1 > hi {
            block >>= 1;
        }
        let block_bits = block.trailing_zeros();
        let mask = field_mask & !(((1u64 << block_bits) - 1) as u32);
        out.push(TernaryMatch { value: (at as u32) & mask, mask });
        at += block;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered(entries: &[TernaryMatch], width: u32) -> Vec<u32> {
        (0..=width_mask(width))
            .filter(|&x| entries.iter().any(|e| e.matches(x)))
            .collect()
    }

    #[test]
    fn full_range_is_one_wildcard() {
        let e = range_to_ternary(0, 255, 8);
        assert_eq!(e, vec![TernaryMatch { value: 0, mask: 0 }]);
    }

    #[test]
    fn exact_value_is_one_entry() {
        let e = range_to_ternary(53, 53, 16);
        assert_eq!(e.len(), 1);
        assert!(e[0].matches(53));
        assert!(!e[0].matches(54));
    }

    #[test]
    fn aligned_block_is_one_entry() {
        let e = range_to_ternary(64, 127, 8);
        assert_eq!(e.len(), 1);
        assert_eq!(covered(&e, 8), (64..=127).collect::<Vec<u32>>());
    }

    #[test]
    fn worst_case_range_expands_but_stays_bounded() {
        // [1, 2^16 - 2] is the classic worst case: 2*16 - 2 = 30 entries.
        let e = range_to_ternary(1, 65_534, 16);
        assert!(e.len() <= 30, "expansion {}", e.len());
        assert!(e.len() >= 16);
    }

    #[test]
    fn exhaustive_correctness_8bit() {
        // Every possible 8-bit range maps to exactly its members.
        for lo in 0..=255u32 {
            for hi in lo..=255u32 {
                let e = range_to_ternary(lo, hi, 8);
                let got = covered(&e, 8);
                let want: Vec<u32> = (lo..=hi).collect();
                assert_eq!(got, want, "range [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn entries_within_one_expansion_are_disjoint() {
        let e = range_to_ternary(100, 9_999, 16);
        for x in 0..=0xffffu32 {
            let hits = e.iter().filter(|t| t.matches(x)).count();
            assert!(hits <= 1, "value {x} hit {hits} entries");
        }
    }

    #[test]
    fn boolean_fields() {
        assert_eq!(range_to_ternary(0, 0, 1).len(), 1);
        assert_eq!(range_to_ternary(1, 1, 1).len(), 1);
        assert_eq!(range_to_ternary(0, 1, 1), vec![TernaryMatch::ANY]);
    }

    #[test]
    #[should_panic(expected = "range exceeds field width")]
    fn oversized_range_panics() {
        range_to_ternary(0, 300, 8);
    }
}
