//! The header fields a match-action pipeline can key on, and extractors
//! from both live packets and stored records.
//!
//! The field list mirrors `campuslab_features::PACKET_FEATURES` one-to-one:
//! a decision tree trained on those features compiles field-for-field into
//! pipeline matches.

use campuslab_capture::{Direction, PacketRecord};
use campuslab_netsim::{Packet, Prefix, TransportHeader};
use serde::{Deserialize, Serialize};

/// A matchable header field. Discriminants index the canonical feature
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderField {
    Protocol,
    SrcPort,
    DstPort,
    WireLen,
    Ttl,
    DirectionInbound,
    TcpSyn,
    TcpAck,
    TcpFin,
    TcpRst,
    IsUdp,
    IsTcp,
    SrcPortIsDns,
}

/// Fields in canonical (feature-schema) order.
pub const FIELD_ORDER: [HeaderField; 13] = [
    HeaderField::Protocol,
    HeaderField::SrcPort,
    HeaderField::DstPort,
    HeaderField::WireLen,
    HeaderField::Ttl,
    HeaderField::DirectionInbound,
    HeaderField::TcpSyn,
    HeaderField::TcpAck,
    HeaderField::TcpFin,
    HeaderField::TcpRst,
    HeaderField::IsUdp,
    HeaderField::IsTcp,
    HeaderField::SrcPortIsDns,
];

impl HeaderField {
    /// The field's bit width on the match key.
    pub fn bits(self) -> u32 {
        match self {
            HeaderField::Protocol | HeaderField::Ttl => 8,
            HeaderField::SrcPort | HeaderField::DstPort | HeaderField::WireLen => 16,
            _ => 1,
        }
    }

    /// Maximum representable value.
    pub fn max_value(self) -> u32 {
        (1u32 << self.bits()) - 1
    }

    /// The field for a canonical feature index.
    ///
    /// Panics on out-of-range indexes; compilation paths that consume
    /// untrusted feature indexes (a malformed or stale tree) must use
    /// [`HeaderField::try_from_feature_index`] instead.
    pub fn from_feature_index(idx: usize) -> HeaderField {
        FIELD_ORDER[idx]
    }

    /// The field for a canonical feature index, or `None` when the index
    /// falls outside the schema (a malformed program must surface as a
    /// typed condition, never a panic in the compiler path).
    pub fn try_from_feature_index(idx: usize) -> Option<HeaderField> {
        FIELD_ORDER.get(idx).copied()
    }

    /// The field's canonical index, infallibly: every `HeaderField` is in
    /// `FIELD_ORDER` by construction, so no lookup can fail.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short name matching the feature schema.
    pub fn name(self) -> &'static str {
        match self {
            HeaderField::Protocol => "protocol",
            HeaderField::SrcPort => "src_port",
            HeaderField::DstPort => "dst_port",
            HeaderField::WireLen => "wire_len",
            HeaderField::Ttl => "ttl",
            HeaderField::DirectionInbound => "direction_inbound",
            HeaderField::TcpSyn => "tcp_syn",
            HeaderField::TcpAck => "tcp_ack",
            HeaderField::TcpFin => "tcp_fin",
            HeaderField::TcpRst => "tcp_rst",
            HeaderField::IsUdp => "is_udp",
            HeaderField::IsTcp => "is_tcp",
            HeaderField::SrcPortIsDns => "src_port_is_dns",
        }
    }
}

/// A parsed match key: the field values for one packet, in canonical
/// order.
pub type FieldValues = [u32; FIELD_ORDER.len()];

/// Extracts field values from live packets at a switch ingress. Direction
/// is inferred from the campus prefix: traffic *to* a campus address is
/// inbound.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FieldExtractor {
    campus: Prefix,
}

impl FieldExtractor {
    /// An extractor for a campus with the given aggregate prefix.
    pub fn new(campus: Prefix) -> Self {
        FieldExtractor { campus }
    }

    /// Extract from a live simulator packet.
    pub fn from_packet(&self, pkt: &Packet) -> FieldValues {
        let protocol = u32::from(u8::from(pkt.network.protocol()));
        let src_port = u32::from(pkt.transport.src_port().unwrap_or(0));
        let dst_port = u32::from(pkt.transport.dst_port().unwrap_or(0));
        let (syn, ack, fin, rst) = match &pkt.transport {
            TransportHeader::Tcp(t) => (
                u32::from(t.control.syn),
                u32::from(t.control.ack),
                u32::from(t.control.fin),
                u32::from(t.control.rst),
            ),
            _ => (0, 0, 0, 0),
        };
        [
            protocol,
            src_port,
            dst_port,
            (pkt.wire_len() as u32).min(0xffff),
            u32::from(pkt.network.ttl()),
            u32::from(self.campus.contains(pkt.network.dst())),
            syn,
            ack,
            fin,
            rst,
            u32::from(protocol == 17),
            u32::from(protocol == 6),
            u32::from(src_port == 53),
        ]
    }
}

/// Extract from a stored capture record (offline evaluation path).
pub fn fields_from_record(rec: &PacketRecord) -> FieldValues {
    [
        u32::from(rec.protocol),
        u32::from(rec.src_port),
        u32::from(rec.dst_port),
        rec.wire_len.min(0xffff),
        u32::from(rec.ttl),
        u32::from(rec.direction == Direction::Inbound),
        u32::from(rec.tcp_flags.syn),
        u32::from(rec.tcp_flags.ack),
        u32::from(rec.tcp_flags.fin),
        u32::from(rec.tcp_flags.rst),
        u32::from(rec.protocol == 17),
        u32::from(rec.protocol == 6),
        u32::from(rec.src_port == 53),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
    use std::net::Ipv4Addr;

    #[test]
    fn field_widths() {
        assert_eq!(HeaderField::SrcPort.bits(), 16);
        assert_eq!(HeaderField::Protocol.bits(), 8);
        assert_eq!(HeaderField::TcpSyn.bits(), 1);
        assert_eq!(HeaderField::DstPort.max_value(), 65_535);
        assert_eq!(HeaderField::IsUdp.max_value(), 1);
    }

    #[test]
    fn field_order_matches_feature_names() {
        // The contract with campuslab-features: same order, same names.
        let expected = [
            "protocol", "src_port", "dst_port", "wire_len", "ttl",
            "direction_inbound", "tcp_syn", "tcp_ack", "tcp_fin", "tcp_rst",
            "is_udp", "is_tcp", "src_port_is_dns",
        ];
        for (i, name) in expected.iter().enumerate() {
            assert_eq!(HeaderField::from_feature_index(i).name(), *name);
        }
    }

    #[test]
    fn live_extraction_infers_direction() {
        let campus = Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16);
        let x = FieldExtractor::new(campus);
        let mut b = PacketBuilder::new();
        let inbound = b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 1, 1, 10),
            53,
            40_000,
            Payload::Synthetic(100),
            64,
            GroundTruth::default(),
        );
        let v = x.from_packet(&inbound);
        assert_eq!(v[0], 17); // protocol
        assert_eq!(v[1], 53);
        assert_eq!(v[5], 1); // inbound
        assert_eq!(v[10], 1); // is_udp
        assert_eq!(v[12], 1); // src_port_is_dns
        let outbound = b.udp_v4(
            Ipv4Addr::new(10, 1, 1, 10),
            Ipv4Addr::new(203, 0, 113, 1),
            40_000,
            53,
            Payload::Synthetic(100),
            64,
            GroundTruth::default(),
        );
        assert_eq!(x.from_packet(&outbound)[5], 0);
    }

    #[test]
    fn record_extraction_matches_live_semantics() {
        use campuslab_capture::{PacketRecord, Direction};
        use campuslab_netsim::SimTime;
        let mut b = PacketBuilder::new();
        let pkt = b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(10, 1, 1, 10),
            53,
            40_000,
            Payload::Synthetic(100),
            64,
            GroundTruth::default(),
        );
        let rec = PacketRecord::from_packet(SimTime::ZERO, Direction::Inbound, &pkt);
        let campus = Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16);
        let live = FieldExtractor::new(campus).from_packet(&pkt);
        let stored = fields_from_record(&rec);
        assert_eq!(live, stored);
    }
}
