//! The pipeline program: a prioritized ternary match-action table plus the
//! software executor that evaluates it per packet, with per-entry hit
//! counters (as real switch ASICs provide).

use crate::fields::{FieldValues, FIELD_ORDER};
use crate::ternary::TernaryMatch;
use campuslab_netsim::fxhash::FxHasher;
use serde::{Deserialize, Serialize};
use std::hash::Hasher;

/// What an entry does on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Pass the packet on.
    Forward,
    /// Drop at ingress.
    Drop,
    /// Police matching traffic to a rate with a per-entry token bucket —
    /// the gentler mitigation real operators often prefer to a hard drop.
    RateLimit { bits_per_sec: u64 },
}

/// One match-action entry: a ternary cell per field (wildcards for
/// unconstrained fields).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// One cell per canonical field, in order.
    pub matches: [TernaryMatch; FIELD_ORDER.len()],
    pub action: Action,
    /// Higher wins.
    pub priority: i32,
    /// The model confidence that produced this entry (for reports).
    pub confidence: f64,
}

impl TableEntry {
    /// A catch-all entry with the given action at the lowest priority.
    pub fn default_entry(action: Action) -> Self {
        TableEntry {
            matches: [TernaryMatch::ANY; FIELD_ORDER.len()],
            action,
            priority: i32::MIN,
            confidence: 1.0,
        }
    }

    /// Whether the entry matches a parsed packet.
    pub fn matches(&self, fields: &FieldValues) -> bool {
        self.matches
            .iter()
            .zip(fields.iter())
            .all(|(cell, &value)| cell.matches(value))
    }

    /// Number of non-wildcard cells (a proxy for key width used).
    pub fn constrained_fields(&self) -> usize {
        self.matches.iter().filter(|c| c.mask != 0).count()
    }
}

/// A compiled pipeline program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineProgram {
    /// Entries sorted by descending priority.
    pub entries: Vec<TableEntry>,
    /// Human-readable provenance ("distilled-tree depth=5 gate=0.9").
    pub name: String,
}

/// A program's deployment identity: the human-readable name plus a
/// content fingerprint. Two programs with the same version are
/// byte-equivalent match-action tables; a rollout registry keys on this,
/// so rollback can remove exactly the entries one candidate installed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProgramVersion {
    /// Provenance name (`PipelineProgram::name`).
    pub name: String,
    /// Deterministic content hash over entries (order, matches, actions,
    /// priorities, confidences) and the name.
    pub fingerprint: u64,
}

impl std::fmt::Display for ProgramVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{:08x}", self.name, self.fingerprint & 0xFFFF_FFFF)
    }
}

/// A per-entry policer: a classic token bucket over bits.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct TokenBucket {
    rate_bps: u64,
    burst_bits: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    fn new(rate_bps: u64) -> Self {
        // A 50 ms burst allowance, the common default.
        let burst_bits = (rate_bps as f64 * 0.05).max(12_000.0);
        TokenBucket { rate_bps, burst_bits, tokens: burst_bits, last_ns: 0 }
    }

    /// Try to send `bits` at `now_ns`; true = conforms (forward).
    fn conform(&mut self, now_ns: u64, bits: f64) -> bool {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate_bps as f64).min(self.burst_bits);
            self.last_ns = now_ns;
        }
        if self.tokens >= bits {
            self.tokens -= bits;
            true
        } else {
            false
        }
    }
}

/// Runtime state: the program plus hit counters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineRuntime {
    program: PipelineProgram,
    /// Token-bucket state per entry (None for non-policing entries).
    meters: Vec<Option<TokenBucket>>,
    pub hits: Vec<u64>,
    pub misses: u64,
    pub packets: u64,
    pub drops: u64,
    /// Packets dropped specifically by policers.
    pub policed: u64,
}

impl PipelineProgram {
    /// Create a program; sorts entries by priority.
    pub fn new(name: impl Into<String>, mut entries: Vec<TableEntry>) -> Self {
        entries.sort_by_key(|e| std::cmp::Reverse(e.priority));
        PipelineProgram { entries, name: name.into() }
    }

    /// Number of TCAM entries.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Deterministic content fingerprint: hashes the name and every entry
    /// (matches, action, priority, confidence bits) with the cross-platform
    /// Fx hasher, so the same program hashes identically across processes
    /// and runs — the identity a rollout registry and the filter bank key
    /// on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(self.name.as_bytes());
        h.write_usize(self.entries.len());
        for e in &self.entries {
            for cell in &e.matches {
                h.write_u32(cell.value);
                h.write_u32(cell.mask);
            }
            match e.action {
                Action::Forward => h.write_u8(0),
                Action::Drop => h.write_u8(1),
                Action::RateLimit { bits_per_sec } => {
                    h.write_u8(2);
                    h.write_u64(bits_per_sec);
                }
            }
            h.write_i32(e.priority);
            h.write_u64(e.confidence.to_bits());
        }
        h.finish()
    }

    /// The program's deployment identity (name + content fingerprint).
    pub fn version(&self) -> ProgramVersion {
        ProgramVersion { name: self.name.clone(), fingerprint: self.fingerprint() }
    }

    /// First-match lookup.
    pub fn lookup(&self, fields: &FieldValues) -> Option<(usize, Action)> {
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.matches(fields))
            .map(|(i, e)| (i, e.action))
    }

    /// A copy of this program with every Drop entry converted into a
    /// policer at `bits_per_sec` — the "rate-limit instead of drop"
    /// mitigation variant operators often prefer for lower blast radius.
    pub fn with_drops_as_policers(&self, bits_per_sec: u64) -> PipelineProgram {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut e = e.clone();
                if e.action == Action::Drop {
                    e.action = Action::RateLimit { bits_per_sec };
                }
                e
            })
            .collect();
        PipelineProgram::new(format!("{}-policed", self.name), entries)
    }

    /// Wrap into a runtime with counters.
    pub fn into_runtime(self) -> PipelineRuntime {
        let hits = vec![0; self.entries.len()];
        let meters = self
            .entries
            .iter()
            .map(|e| match e.action {
                Action::RateLimit { bits_per_sec } => Some(TokenBucket::new(bits_per_sec)),
                _ => None,
            })
            .collect();
        PipelineRuntime { program: self, meters, hits, misses: 0, packets: 0, drops: 0, policed: 0 }
    }
}

impl PipelineRuntime {
    /// Process one parsed packet; returns the action (Forward on miss,
    /// as switches default-permit unless told otherwise). Rate-limit
    /// entries act as plain Forward here because no clock is supplied;
    /// use [`PipelineRuntime::process_at`] to enforce policing.
    pub fn process(&mut self, fields: &FieldValues) -> Action {
        self.packets += 1;
        match self.program.lookup(fields) {
            Some((idx, action)) => {
                self.hits[idx] += 1;
                if action == Action::Drop {
                    self.drops += 1;
                }
                action
            }
            None => {
                self.misses += 1;
                Action::Forward
            }
        }
    }

    /// Process with a clock and packet size: rate-limit entries police via
    /// their token buckets; the returned action is the *effective* verdict
    /// (a policed-out packet returns Drop).
    pub fn process_at(&mut self, now_ns: u64, fields: &FieldValues, wire_len: u32) -> Action {
        self.packets += 1;
        match self.program.lookup(fields) {
            Some((idx, Action::RateLimit { .. })) => {
                self.hits[idx] += 1;
                // Meters are built per-entry in `into_runtime`, so a
                // policing entry always has one; treat a missing meter as
                // an unpoliced forward rather than panicking the per-packet
                // path on a malformed runtime.
                match self.meters.get_mut(idx).and_then(Option::as_mut) {
                    Some(meter) => {
                        if meter.conform(now_ns, f64::from(wire_len) * 8.0) {
                            Action::Forward
                        } else {
                            self.drops += 1;
                            self.policed += 1;
                            Action::Drop
                        }
                    }
                    None => Action::Forward,
                }
            }
            Some((idx, action)) => {
                self.hits[idx] += 1;
                if action == Action::Drop {
                    self.drops += 1;
                }
                action
            }
            None => {
                self.misses += 1;
                Action::Forward
            }
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &PipelineProgram {
        &self.program
    }

    /// Entries that never matched (dead rules — a pruning signal).
    pub fn dead_entries(&self) -> usize {
        self.hits.iter().filter(|&&h| h == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::HeaderField;

    fn entry_on(field: HeaderField, cell: TernaryMatch, action: Action, priority: i32) -> TableEntry {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[field.index()] = cell;
        TableEntry { matches, action, priority, confidence: 1.0 }
    }

    fn fields_with(field: HeaderField, value: u32) -> FieldValues {
        let mut f = [0u32; FIELD_ORDER.len()];
        f[field.index()] = value;
        f
    }

    #[test]
    fn first_match_by_priority() {
        let drop_dns = entry_on(
            HeaderField::SrcPort,
            TernaryMatch::exact(53, 16),
            Action::Drop,
            10,
        );
        let allow_all = TableEntry::default_entry(Action::Forward);
        let program = PipelineProgram::new("test", vec![allow_all, drop_dns]);
        // Sorting put the drop first.
        assert_eq!(program.entries[0].action, Action::Drop);
        let mut rt = program.into_runtime();
        assert_eq!(rt.process(&fields_with(HeaderField::SrcPort, 53)), Action::Drop);
        assert_eq!(rt.process(&fields_with(HeaderField::SrcPort, 80)), Action::Forward);
        assert_eq!(rt.drops, 1);
        assert_eq!(rt.packets, 2);
        assert_eq!(rt.hits[0], 1);
        assert_eq!(rt.hits[1], 1);
        assert_eq!(rt.dead_entries(), 0);
    }

    #[test]
    fn miss_defaults_to_forward() {
        let program = PipelineProgram::new(
            "only-drop",
            vec![entry_on(
                HeaderField::DstPort,
                TernaryMatch::exact(22, 16),
                Action::Drop,
                0,
            )],
        );
        let mut rt = program.into_runtime();
        assert_eq!(rt.process(&fields_with(HeaderField::DstPort, 443)), Action::Forward);
        assert_eq!(rt.misses, 1);
    }

    #[test]
    fn constrained_field_count() {
        let e = entry_on(HeaderField::WireLen, TernaryMatch::exact(1000, 16), Action::Drop, 0);
        assert_eq!(e.constrained_fields(), 1);
        assert_eq!(TableEntry::default_entry(Action::Forward).constrained_fields(), 0);
    }

    #[test]
    fn multi_field_entries_require_all_cells() {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[0] = TernaryMatch::exact(17, 8); // protocol = udp
        matches[1] = TernaryMatch::exact(53, 16); // src_port = 53
        let e = TableEntry { matches, action: Action::Drop, priority: 0, confidence: 0.95 };
        let mut yes = [0u32; FIELD_ORDER.len()];
        yes[0] = 17;
        yes[1] = 53;
        assert!(e.matches(&yes));
        let mut no = yes;
        no[0] = 6;
        assert!(!e.matches(&no));
    }

    #[test]
    fn rate_limit_polices_to_the_configured_rate() {
        // 1 Mbps policer against a 10 Mbps offered stream of 1250-byte
        // packets (10 kbit each @ 1 ms apart): ~10% should conform.
        let program = PipelineProgram::new(
            "police",
            vec![TableEntry::default_entry(Action::RateLimit { bits_per_sec: 1_000_000 })],
        );
        let mut rt = program.into_runtime();
        let fields = [0u32; FIELD_ORDER.len()];
        let mut forwarded = 0;
        let n = 2_000u64;
        for i in 0..n {
            if rt.process_at(i * 1_000_000, &fields, 1_250) == Action::Forward {
                forwarded += 1;
            }
        }
        let rate = forwarded as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.03, "conform rate {rate}");
        assert_eq!(rt.policed + forwarded, n);
    }

    #[test]
    fn rate_limit_allows_bursts_within_the_bucket() {
        let program = PipelineProgram::new(
            "police",
            vec![TableEntry::default_entry(Action::RateLimit { bits_per_sec: 10_000_000 })],
        );
        let mut rt = program.into_runtime();
        let fields = [0u32; FIELD_ORDER.len()];
        // Burst of 40 x 1250B = 400 kbit <= 500 kbit bucket: all conform.
        for _ in 0..40 {
            assert_eq!(rt.process_at(0, &fields, 1_250), Action::Forward);
        }
        // The 50th kills the bucket.
        let mut dropped = false;
        for _ in 0..20 {
            if rt.process_at(0, &fields, 1_250) == Action::Drop {
                dropped = true;
            }
        }
        assert!(dropped);
    }

    #[test]
    fn process_without_clock_treats_policers_as_forward() {
        let program = PipelineProgram::new(
            "police",
            vec![TableEntry::default_entry(Action::RateLimit { bits_per_sec: 8 })],
        );
        let mut rt = program.into_runtime();
        let fields = [0u32; FIELD_ORDER.len()];
        assert_eq!(rt.process(&fields), Action::RateLimit { bits_per_sec: 8 });
        assert_eq!(rt.drops, 0);
    }

    #[test]
    fn drops_convert_to_policers() {
        let program = PipelineProgram::new(
            "p",
            vec![
                TableEntry::default_entry(Action::Drop),
                entry_on(HeaderField::DstPort, TernaryMatch::exact(22, 16), Action::Forward, 5),
            ],
        );
        let policed = program.with_drops_as_policers(2_000_000);
        assert_eq!(policed.name, "p-policed");
        let actions: Vec<Action> = policed.entries.iter().map(|e| e.action).collect();
        assert!(actions.contains(&Action::RateLimit { bits_per_sec: 2_000_000 }));
        assert!(actions.contains(&Action::Forward));
        assert!(!actions.contains(&Action::Drop));
    }

    #[test]
    fn fingerprint_is_content_identity() {
        let a = PipelineProgram::new(
            "p",
            vec![entry_on(HeaderField::SrcPort, TernaryMatch::exact(53, 16), Action::Drop, 1)],
        );
        // Same content, same fingerprint — across clones and rebuilds.
        let b = PipelineProgram::new(
            "p",
            vec![entry_on(HeaderField::SrcPort, TernaryMatch::exact(53, 16), Action::Drop, 1)],
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.version(), b.version());
        // Any content drift moves the fingerprint: name, match, action,
        // priority, confidence.
        let renamed = PipelineProgram::new("q", a.entries.clone());
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let other_match = PipelineProgram::new(
            "p",
            vec![entry_on(HeaderField::SrcPort, TernaryMatch::exact(54, 16), Action::Drop, 1)],
        );
        assert_ne!(a.fingerprint(), other_match.fingerprint());
        let policed = a.with_drops_as_policers(1_000_000);
        assert_ne!(a.fingerprint(), policed.fingerprint());
        let mut conf = a.clone();
        conf.entries[0].confidence = 0.5;
        assert_ne!(a.fingerprint(), conf.fingerprint());
        // Display form is stable and human-scannable.
        assert!(a.version().to_string().starts_with("p@"));
    }

    #[test]
    fn malformed_runtime_forwards_instead_of_panicking() {
        // A runtime whose meter table was clobbered (models a malformed
        // deserialized program): the policing entry must degrade to
        // Forward, never panic the per-packet path.
        let program = PipelineProgram::new(
            "police",
            vec![TableEntry::default_entry(Action::RateLimit { bits_per_sec: 8 })],
        );
        let mut rt = program.into_runtime();
        rt.meters.clear();
        let fields = [0u32; FIELD_ORDER.len()];
        assert_eq!(rt.process_at(0, &fields, 1_500), Action::Forward);
        assert_eq!(rt.drops, 0);
    }

    #[test]
    fn serializes_round_trip() {
        let program = PipelineProgram::new(
            "p",
            vec![TableEntry::default_entry(Action::Drop)],
        );
        let json = serde_json::to_string(&program).unwrap();
        let back: PipelineProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries, program.entries);
    }
}
