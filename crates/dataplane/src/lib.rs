//! # campuslab-dataplane
//!
//! The programmable data plane substrate: a P4-flavored match-action
//! pipeline, the decision-tree→TCAM compiler (the paper's road-map step
//! (iii)), and a Tofino-like resource model that turns the paper's §2
//! scale claim into a measurable number.
//!
//! * [`fields`] — matchable header fields, 1:1 with the packet feature
//!   schema, with extractors for live packets and stored records.
//! * [`ternary`] — minimal range→ternary prefix expansion (exhaustively
//!   tested over all 8-bit ranges).
//! * [`program`] — prioritized ternary tables with an executor and hit
//!   counters.
//! * [`compiler`] — leaf rules → cross-products of ternary blocks, with a
//!   confidence gate ("drop ... if confidence ... is at least 90%").
//! * [`resources`] — stages/TCAM/table-slot envelope; answers "how many
//!   concurrent automation tasks fit?" (experiment E6).
//! * [`admission`] — FIFO tenant admission over that envelope; the
//!   plaza's arbiter for multi-tenant experimentation (experiment E18).

//!
//! ```
//! use campuslab_dataplane::{range_to_ternary, SwitchModel};
//!
//! // An aligned port range costs one TCAM cell; a ragged one expands.
//! assert_eq!(range_to_ternary(1024, 2047, 16).len(), 1);
//! assert!(range_to_ternary(1000, 2000, 16).len() > 1);
//! // And the switch has a finite envelope for concurrent tasks.
//! let switch = SwitchModel::default();
//! assert_eq!(switch.total_slots(), 96);
//! ```

pub mod fields;
pub mod ternary;
pub mod program;
pub mod compiler;
pub mod resources;
pub mod admission;

pub use admission::{AdmissionController, AdmissionDecision, TenantDemand};
pub use compiler::{compile_tree, CompileConfig, CompileReport};
pub use fields::{fields_from_record, FieldExtractor, FieldValues, HeaderField, FIELD_ORDER};
pub use program::{Action, PipelineProgram, PipelineRuntime, ProgramVersion, TableEntry};
pub use resources::{Allocation, ProgramFootprint, ResourceError, SwitchModel};
pub use ternary::{range_to_ternary, TernaryMatch};
