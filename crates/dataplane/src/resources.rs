//! A Tofino-like switch resource model: fixed stages, bounded TCAM per
//! stage, bounded logical tables per stage. Quantifies the paper's §2
//! scale claim — the data plane is "not capable of supporting ... hundreds
//! or thousands of such tasks concurrently".
//!
//! The model is deliberately coarse (real ASIC allocation involves key
//! widths, action memories, and crossbar limits) but preserves the two
//! constraints that bind first in practice: total TCAM capacity and
//! stage/table slots.

use crate::program::PipelineProgram;
use serde::Serialize;

/// The switch's resource envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SwitchModel {
    /// Match-action stages in the ingress pipeline.
    pub stages: usize,
    /// TCAM entries available per stage (at our ~85-bit key width).
    pub tcam_entries_per_stage: usize,
    /// Logical tables that can share one stage.
    pub max_tables_per_stage: usize,
}

impl Default for SwitchModel {
    fn default() -> Self {
        // Tofino-1-flavored: 12 ingress stages; a few thousand wide-key
        // TCAM entries per stage; 8 logical tables per stage.
        SwitchModel { stages: 12, tcam_entries_per_stage: 2048, max_tables_per_stage: 8 }
    }
}

/// Why a program set does not fit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ResourceError {
    /// One program alone exceeds the whole pipeline's TCAM.
    ProgramTooLarge { name: String, entries: usize, capacity: usize },
    /// The set exceeds the stage/table slots.
    OutOfSlots { needed: usize, available: usize },
    /// The set exceeds total TCAM capacity.
    OutOfTcam { needed: usize, available: usize },
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::ProgramTooLarge { name, entries, capacity } => {
                write!(f, "program {name} needs {entries} TCAM entries; pipeline holds {capacity}")
            }
            ResourceError::OutOfSlots { needed, available } => {
                write!(f, "need {needed} table slots; switch has {available}")
            }
            ResourceError::OutOfTcam { needed, available } => {
                write!(f, "need {needed} TCAM entries; switch has {available}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

/// Footprint of one program after allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProgramFootprint {
    pub name: String,
    pub tcam_entries: usize,
    /// Stage-slots consumed: `ceil(entries / per-stage)`, minimum 1.
    pub stage_slots: usize,
}

/// A successful allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Allocation {
    pub programs: Vec<ProgramFootprint>,
    pub slots_used: usize,
    pub slots_available: usize,
    pub tcam_used: usize,
    pub tcam_available: usize,
}

impl Allocation {
    /// Fraction of table slots consumed.
    pub fn slot_utilization(&self) -> f64 {
        self.slots_used as f64 / self.slots_available.max(1) as f64
    }
}

impl SwitchModel {
    /// Total TCAM entries in the pipeline.
    pub fn total_tcam(&self) -> usize {
        self.stages * self.tcam_entries_per_stage
    }

    /// Total stage/table slots.
    pub fn total_slots(&self) -> usize {
        self.stages * self.max_tables_per_stage
    }

    /// Footprint of one program on this switch.
    pub fn footprint(&self, program: &PipelineProgram) -> ProgramFootprint {
        let entries = program.n_entries();
        ProgramFootprint {
            name: program.name.clone(),
            tcam_entries: entries,
            stage_slots: entries.div_ceil(self.tcam_entries_per_stage).max(1),
        }
    }

    /// Try to place a set of concurrent programs (tasks) on the switch.
    pub fn allocate(&self, programs: &[&PipelineProgram]) -> Result<Allocation, ResourceError> {
        let mut slots_used = 0usize;
        let mut tcam_used = 0usize;
        let mut footprints = Vec::with_capacity(programs.len());
        for p in programs {
            let fp = self.footprint(p);
            if fp.tcam_entries > self.total_tcam() {
                return Err(ResourceError::ProgramTooLarge {
                    name: fp.name,
                    entries: fp.tcam_entries,
                    capacity: self.total_tcam(),
                });
            }
            slots_used += fp.stage_slots;
            tcam_used += fp.tcam_entries;
            footprints.push(fp);
        }
        if slots_used > self.total_slots() {
            return Err(ResourceError::OutOfSlots {
                needed: slots_used,
                available: self.total_slots(),
            });
        }
        if tcam_used > self.total_tcam() {
            return Err(ResourceError::OutOfTcam {
                needed: tcam_used,
                available: self.total_tcam(),
            });
        }
        Ok(Allocation {
            programs: footprints,
            slots_used,
            slots_available: self.total_slots(),
            tcam_used,
            tcam_available: self.total_tcam(),
        })
    }

    /// How many copies of `program` fit concurrently — the experiment E6
    /// "how many automation tasks can this switch actually host" number.
    pub fn max_concurrent(&self, program: &PipelineProgram) -> usize {
        let fp = self.footprint(program);
        if fp.tcam_entries > self.total_tcam() {
            return 0;
        }
        let by_slots = self.total_slots() / fp.stage_slots.max(1);
        let by_tcam = self
            .total_tcam()
            .checked_div(fp.tcam_entries)
            .unwrap_or(usize::MAX);
        by_slots.min(by_tcam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, TableEntry};

    fn program(name: &str, entries: usize) -> PipelineProgram {
        PipelineProgram::new(
            name,
            (0..entries)
                .map(|_| TableEntry::default_entry(Action::Drop))
                .collect(),
        )
    }

    #[test]
    fn small_programs_fit_many_times() {
        let sw = SwitchModel::default();
        let p = program("tiny", 50);
        // Bounded by slots: 96 slots, 1 slot each.
        assert_eq!(sw.max_concurrent(&p), 96);
        let refs: Vec<&PipelineProgram> = vec![&p; 96];
        assert!(sw.allocate(&refs).is_ok());
    }

    #[test]
    fn large_programs_hit_tcam_first() {
        let sw = SwitchModel::default();
        let p = program("big", 6_000); // 3 stage-slots, 6000 entries
        let max = sw.max_concurrent(&p);
        // TCAM bound: 24576 / 6000 = 4; slot bound: 96/3 = 32.
        assert_eq!(max, 4);
        let refs: Vec<&PipelineProgram> = vec![&p; 5];
        match sw.allocate(&refs) {
            Err(ResourceError::OutOfTcam { needed, available }) => {
                assert_eq!(needed, 30_000);
                assert_eq!(available, 24_576);
            }
            other => panic!("expected OutOfTcam, got {other:?}"),
        }
    }

    #[test]
    fn monster_program_is_rejected_alone() {
        let sw = SwitchModel::default();
        let p = program("monster", 30_000);
        assert_eq!(sw.max_concurrent(&p), 0);
        match sw.allocate(&[&p]) {
            Err(ResourceError::ProgramTooLarge { entries, capacity, .. }) => {
                assert_eq!(entries, 30_000);
                assert_eq!(capacity, 24_576);
            }
            other => panic!("expected ProgramTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn slot_exhaustion_with_many_small_tables() {
        let sw = SwitchModel { stages: 2, tcam_entries_per_stage: 1000, max_tables_per_stage: 2 };
        let p = program("t", 10);
        assert_eq!(sw.max_concurrent(&p), 4);
        let refs: Vec<&PipelineProgram> = vec![&p; 5];
        assert!(matches!(
            sw.allocate(&refs),
            Err(ResourceError::OutOfSlots { needed: 5, available: 4 })
        ));
    }

    #[test]
    fn allocation_reports_utilization() {
        let sw = SwitchModel::default();
        let p1 = program("a", 2048);
        let p2 = program("b", 100);
        let alloc = sw.allocate(&[&p1, &p2]).unwrap();
        assert_eq!(alloc.slots_used, 2);
        assert_eq!(alloc.tcam_used, 2_148);
        assert!(alloc.slot_utilization() > 0.0 && alloc.slot_utilization() < 1.0);
        assert_eq!(alloc.programs.len(), 2);
    }

    #[test]
    fn errors_render() {
        let e = ResourceError::OutOfSlots { needed: 5, available: 4 };
        assert!(e.to_string().contains("5"));
    }
}
