//! Tenant admission against the switch resource envelope.
//!
//! The plaza service admits many independent road-tests ("tenants") onto
//! one shared campus, but the dataplane budget — stage slots and TCAM —
//! is a single pool ([`SwitchModel`]). The [`AdmissionController`] is the
//! arbiter: each tenant declares a [`TenantDemand`] up front, and the
//! controller either grants it immediately, parks it in a strict-FIFO
//! queue until earlier tenants release their budget, or rejects it
//! outright (typed, never a panic) when the demand could not fit even an
//! empty switch.
//!
//! Invariants, pinned by unit tests here and a property suite in
//! `tests/admission.rs`:
//! * granted slots never exceed [`SwitchModel::total_slots`] and granted
//!   TCAM never exceeds [`SwitchModel::total_tcam`], at every step;
//! * the queue drains in exact submission order (the head blocks — no
//!   smaller tenant ever jumps a waiting larger one, so admission order
//!   is a pure function of the submission sequence);
//! * every decision is a typed [`AdmissionDecision`].

use crate::program::PipelineProgram;
use crate::resources::{ResourceError, SwitchModel};
use serde::Serialize;
use std::collections::VecDeque;

/// One tenant's declared dataplane demand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TenantDemand {
    /// Tenant name; the controller's handle for release.
    pub tenant: String,
    /// TCAM entries the tenant may install, across all its programs.
    pub tcam_entries: usize,
    /// Stage/table slots the tenant occupies.
    pub stage_slots: usize,
}

impl TenantDemand {
    /// Demand for a flat entry budget: slots follow the same
    /// `ceil(entries / per-stage)` rule as [`SwitchModel::footprint`],
    /// with the one-slot minimum (a tenant always owns a table).
    pub fn for_entries(tenant: impl Into<String>, entries: usize, switch: &SwitchModel) -> Self {
        TenantDemand {
            tenant: tenant.into(),
            tcam_entries: entries,
            stage_slots: entries
                .div_ceil(switch.tcam_entries_per_stage.max(1))
                .max(1),
        }
    }

    /// Demand covering a concrete program set plus `reserved_entries` of
    /// headroom (rules the tenant may still install mid-run — mitigation
    /// rules, rollout candidates).
    pub fn for_programs(
        tenant: impl Into<String>,
        programs: &[&PipelineProgram],
        reserved_entries: usize,
        switch: &SwitchModel,
    ) -> Self {
        let entries: usize = programs.iter().map(|p| p.n_entries()).sum();
        TenantDemand::for_entries(tenant, entries + reserved_entries, switch)
    }
}

/// The controller's typed verdict on one submission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum AdmissionDecision {
    /// Budget granted; the pool totals after the grant ride along.
    Admitted { slots_used: usize, tcam_used: usize },
    /// Parked in the FIFO queue; `position` is 0-based from the head.
    Queued { position: usize },
    /// The demand cannot fit even an empty switch: refused outright.
    Rejected(ResourceError),
}

/// FIFO admission over one switch's budget. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    switch: SwitchModel,
    admitted: Vec<TenantDemand>,
    queue: VecDeque<TenantDemand>,
}

impl AdmissionController {
    /// An empty controller over `switch`'s budget.
    pub fn new(switch: SwitchModel) -> Self {
        AdmissionController { switch, admitted: Vec::new(), queue: VecDeque::new() }
    }

    /// The budget envelope being arbitrated.
    pub fn switch(&self) -> &SwitchModel {
        &self.switch
    }

    /// Stage slots currently granted.
    pub fn slots_used(&self) -> usize {
        self.admitted.iter().map(|d| d.stage_slots).sum()
    }

    /// TCAM entries currently granted.
    pub fn tcam_used(&self) -> usize {
        self.admitted.iter().map(|d| d.tcam_entries).sum()
    }

    /// Tenants currently holding a grant, in admission order.
    pub fn admitted(&self) -> &[TenantDemand] {
        &self.admitted
    }

    /// Tenants waiting, head first.
    pub fn queued(&self) -> impl Iterator<Item = &TenantDemand> {
        self.queue.iter()
    }

    /// Number of tenants waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn fits(&self, d: &TenantDemand) -> bool {
        self.slots_used() + d.stage_slots <= self.switch.total_slots()
            && self.tcam_used() + d.tcam_entries <= self.switch.total_tcam()
    }

    /// Could `d` fit an empty switch at all? A typed error when not.
    fn feasible(&self, d: &TenantDemand) -> Result<(), ResourceError> {
        if d.tcam_entries > self.switch.total_tcam() {
            return Err(ResourceError::ProgramTooLarge {
                name: d.tenant.clone(),
                entries: d.tcam_entries,
                capacity: self.switch.total_tcam(),
            });
        }
        if d.stage_slots > self.switch.total_slots() {
            return Err(ResourceError::OutOfSlots {
                needed: d.stage_slots,
                available: self.switch.total_slots(),
            });
        }
        Ok(())
    }

    /// Submit one tenant. Infeasible demands are rejected; feasible ones
    /// are admitted when the pool has room AND nobody is waiting (strict
    /// FIFO — arrivals never overtake the queue), else queued.
    pub fn submit(&mut self, demand: TenantDemand) -> AdmissionDecision {
        if let Err(e) = self.feasible(&demand) {
            return AdmissionDecision::Rejected(e);
        }
        if self.queue.is_empty() && self.fits(&demand) {
            self.admitted.push(demand);
            AdmissionDecision::Admitted {
                slots_used: self.slots_used(),
                tcam_used: self.tcam_used(),
            }
        } else {
            self.queue.push_back(demand);
            AdmissionDecision::Queued { position: self.queue.len() - 1 }
        }
    }

    /// Free `tenant`'s grant (a no-op for unknown or queued names) and
    /// drain the queue head-first into the freed room. Returns the
    /// demands admitted by this release, in admission order.
    pub fn release(&mut self, tenant: &str) -> Vec<TenantDemand> {
        if let Some(i) = self.admitted.iter().position(|d| d.tenant == tenant) {
            self.admitted.remove(i);
        }
        self.drain_queue()
    }

    /// Admit from the queue head while the head fits; the first
    /// non-fitting head blocks everything behind it.
    fn drain_queue(&mut self) -> Vec<TenantDemand> {
        let mut newly = Vec::new();
        while let Some(head) = self.queue.front() {
            if !self.fits(head) {
                break;
            }
            let d = self.queue.pop_front().expect("front() just returned Some");
            self.admitted.push(d.clone());
            newly.push(d);
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_switch() -> SwitchModel {
        SwitchModel { stages: 2, tcam_entries_per_stage: 100, max_tables_per_stage: 2 }
    }

    #[test]
    fn demand_follows_the_footprint_rule() {
        let sw = SwitchModel::default();
        let d = TenantDemand::for_entries("t", 0, &sw);
        assert_eq!(d.stage_slots, 1, "a tenant always owns at least one table");
        let d = TenantDemand::for_entries("t", 2_049, &sw);
        assert_eq!(d.stage_slots, 2);
    }

    #[test]
    fn admit_until_full_then_queue_then_drain_fifo() {
        // 4 slots, 200 TCAM total.
        let mut ac = AdmissionController::new(small_switch());
        for name in ["a", "b", "c", "d"] {
            assert!(matches!(
                ac.submit(TenantDemand::for_entries(name, 10, &ac.switch().clone())),
                AdmissionDecision::Admitted { .. }
            ));
        }
        let sw = *ac.switch();
        assert_eq!(ac.submit(TenantDemand::for_entries("e", 10, &sw)), AdmissionDecision::Queued { position: 0 });
        assert_eq!(ac.submit(TenantDemand::for_entries("f", 10, &sw)), AdmissionDecision::Queued { position: 1 });
        // Freeing one slot admits exactly the head.
        let newly = ac.release("b");
        assert_eq!(newly.len(), 1);
        assert_eq!(newly[0].tenant, "e");
        assert_eq!(ac.queue_len(), 1);
        // Freeing another admits "f".
        assert_eq!(ac.release("a")[0].tenant, "f");
        assert_eq!(ac.queue_len(), 0);
        assert_eq!(ac.slots_used(), 4);
    }

    #[test]
    fn head_of_line_blocks_smaller_tenants_behind_it() {
        let mut ac = AdmissionController::new(small_switch());
        let sw = *ac.switch();
        // 150 TCAM admitted; a 100-TCAM head cannot fit, a 10-TCAM tenant
        // behind it could — but strict FIFO keeps it waiting.
        ac.submit(TenantDemand::for_entries("big", 150, &sw));
        ac.submit(TenantDemand::for_entries("head", 100, &sw));
        let d = ac.submit(TenantDemand::for_entries("tiny", 10, &sw));
        assert_eq!(d, AdmissionDecision::Queued { position: 1 });
        assert_eq!(ac.release("nobody").len(), 0, "no release, no drain");
        let newly = ac.release("big");
        assert_eq!(
            newly.iter().map(|d| d.tenant.as_str()).collect::<Vec<_>>(),
            ["head", "tiny"],
            "drain admits in FIFO order once the head fits"
        );
    }

    #[test]
    fn infeasible_demands_are_rejected_typed() {
        let mut ac = AdmissionController::new(small_switch());
        let sw = *ac.switch();
        match ac.submit(TenantDemand::for_entries("monster", 10_000, &sw)) {
            AdmissionDecision::Rejected(ResourceError::ProgramTooLarge { entries, capacity, .. }) => {
                assert_eq!(entries, 10_000);
                assert_eq!(capacity, 200);
            }
            other => panic!("expected typed reject, got {other:?}"),
        }
        // A rejected tenant never enters the queue.
        assert_eq!(ac.queue_len(), 0);
        // Slot infeasibility is its own type: 200 TCAM fits, but a
        // hand-built demand can still ask for more slots than exist.
        let d = TenantDemand { tenant: "slots".into(), tcam_entries: 10, stage_slots: 5 };
        assert!(matches!(
            ac.submit(d),
            AdmissionDecision::Rejected(ResourceError::OutOfSlots { needed: 5, available: 4 })
        ));
    }

    #[test]
    fn program_demand_includes_reserved_headroom() {
        let sw = SwitchModel::default();
        use crate::program::{Action, PipelineProgram, TableEntry};
        let p = PipelineProgram::new(
            "p",
            (0..50).map(|_| TableEntry::default_entry(Action::Drop)).collect(),
        );
        let d = TenantDemand::for_programs("t", &[&p], 4_046, &sw);
        assert_eq!(d.tcam_entries, 4_096);
        assert_eq!(d.stage_slots, 2);
    }
}
