//! Property suite over the plaza's admission arbiter: on random
//! submit/release sequences the controller must never over-commit the
//! switch, must drain its queue in strict FIFO order, must answer every
//! submission with a typed decision, and must never panic. A shadow model
//! (plain Vecs) tracks what *should* be admitted and queued; any
//! divergence is a bug in the controller, not the model.

use campuslab_dataplane::{AdmissionController, AdmissionDecision, SwitchModel, TenantDemand};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The big one: random interleavings of submissions (random sizes,
    /// including infeasible monsters) and releases (random victims).
    /// After EVERY op: granted slots/TCAM within the envelope, queue
    /// length agreed with the shadow model, drains strictly FIFO.
    #[test]
    fn admission_invariants_hold_over_random_op_sequences(
        ops in proptest::collection::vec((any::<bool>(), 0usize..40_000, any::<u8>()), 1..80),
    ) {
        let sw = SwitchModel::default();
        let mut ac = AdmissionController::new(sw);
        let mut next_id = 0usize;
        // Shadow model: who waits (FIFO) and who holds a grant.
        let mut fifo: Vec<String> = Vec::new();
        let mut live: Vec<String> = Vec::new();
        for (is_submit, entries, pick) in ops {
            if is_submit {
                let name = format!("t{next_id}");
                next_id += 1;
                let d = TenantDemand::for_entries(name.clone(), entries, &sw);
                let infeasible =
                    d.tcam_entries > sw.total_tcam() || d.stage_slots > sw.total_slots();
                match ac.submit(d) {
                    AdmissionDecision::Admitted { slots_used, tcam_used } => {
                        prop_assert!(!infeasible, "admitted an infeasible demand");
                        prop_assert!(fifo.is_empty(), "overtook a waiting queue");
                        prop_assert_eq!(slots_used, ac.slots_used());
                        prop_assert_eq!(tcam_used, ac.tcam_used());
                        live.push(name);
                    }
                    AdmissionDecision::Queued { position } => {
                        prop_assert!(!infeasible, "queued an infeasible demand");
                        prop_assert_eq!(position, fifo.len());
                        fifo.push(name);
                    }
                    AdmissionDecision::Rejected(_) => {
                        prop_assert!(infeasible, "rejected a feasible demand");
                    }
                }
            } else if live.is_empty() {
                // Corollary invariant: with nothing admitted, a feasible
                // queue head always fits an empty pool, so prior drains
                // must already have emptied the queue.
                prop_assert!(fifo.is_empty(), "queue waits behind an empty pool");
            } else {
                let name = live.remove((pick as usize) % live.len());
                for drained in ac.release(&name) {
                    // Strict FIFO: every drained tenant is exactly the
                    // shadow queue's front, never someone behind it.
                    prop_assert!(!fifo.is_empty(), "drained more than was queued");
                    prop_assert_eq!(&drained.tenant, &fifo.remove(0));
                    live.push(drained.tenant);
                }
            }
            // The envelope, after every single op.
            prop_assert!(ac.slots_used() <= sw.total_slots(), "slots over-committed");
            prop_assert!(ac.tcam_used() <= sw.total_tcam(), "TCAM over-committed");
            prop_assert_eq!(ac.queue_len(), fifo.len());
            prop_assert_eq!(ac.admitted().len(), live.len());
        }
    }

    /// Admission is a pure function of the submission sequence: replaying
    /// the identical sequence yields the identical decision list, byte
    /// for byte (the determinism half of the FIFO contract).
    #[test]
    fn decisions_are_a_pure_function_of_the_submission_sequence(
        sizes in proptest::collection::vec(0usize..40_000, 1..40),
    ) {
        let sw = SwitchModel::default();
        let run = || {
            let mut ac = AdmissionController::new(sw);
            sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| ac.submit(TenantDemand::for_entries(format!("t{i}"), n, &sw)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Releasing unknown or already-released names never panics, never
    /// drains anything it should not, and never disturbs the envelope.
    #[test]
    fn unknown_releases_are_harmless(
        sizes in proptest::collection::vec(1usize..30_000, 1..20),
        ghosts in proptest::collection::vec(any::<u16>(), 1..20),
    ) {
        let sw = SwitchModel::default();
        let mut ac = AdmissionController::new(sw);
        for (i, &n) in sizes.iter().enumerate() {
            let _ = ac.submit(TenantDemand::for_entries(format!("t{i}"), n, &sw));
        }
        let (slots, tcam, queued) = (ac.slots_used(), ac.tcam_used(), ac.queue_len());
        for g in ghosts {
            // Ghost names: never submitted, so every release is a no-op
            // (the queue head, if any, still does not fit).
            let newly = ac.release(&format!("ghost{g}"));
            prop_assert!(newly.is_empty(), "a ghost release drained the queue");
        }
        prop_assert_eq!(ac.slots_used(), slots);
        prop_assert_eq!(ac.tcam_used(), tcam);
        prop_assert_eq!(ac.queue_len(), queued);
    }
}
