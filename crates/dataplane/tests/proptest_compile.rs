//! Property tests for the compilation chain: on random trees and random
//! packets, the compiled pipeline must agree with the tree exactly — the
//! semantics-preservation contract behind the paper's road-map step (iii).

use campuslab_dataplane::{
    compile_tree, range_to_ternary, Action, CompileConfig, FieldValues, FIELD_ORDER,
};
use campuslab_ml::{Classifier, Dataset, DecisionTree, TreeConfig};
use proptest::prelude::*;

fn feature_row(v: &FieldValues) -> Vec<f64> {
    v.iter().map(|&x| f64::from(x)).collect()
}

/// Random field vectors respecting each field's width.
fn arb_fields() -> impl Strategy<Value = FieldValues> {
    proptest::array::uniform13(any::<u32>()).prop_map(|raw| {
        let mut out = [0u32; FIELD_ORDER.len()];
        for (i, f) in FIELD_ORDER.iter().enumerate() {
            out[i] = raw[i] & f.max_value();
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Train a tree on random labeled field vectors, compile it with no
    /// confidence gate, and check agreement on fresh random packets.
    #[test]
    fn compiled_program_always_equals_the_tree(
        train in proptest::collection::vec((arb_fields(), any::<bool>()), 30..150),
        probes in proptest::collection::vec(arb_fields(), 100),
    ) {
        let x: Vec<Vec<f64>> = train.iter().map(|(v, _)| feature_row(v)).collect();
        let y: Vec<usize> = train.iter().map(|(_, l)| usize::from(*l)).collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let mut data = Dataset::new(x, y, names);
        data.n_classes = 2;
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(5));
        let (program, _) = compile_tree(
            &tree,
            CompileConfig { drop_class: 1, confidence_gate: 0.0, min_support: 0 },
            "prop",
        );
        let mut rt = program.into_runtime();
        for fields in &probes {
            let tree_says = tree.predict(&feature_row(fields)) == 1;
            let dropped = rt.process(fields) == Action::Drop;
            prop_assert_eq!(tree_says, dropped, "fields {:?}", fields);
        }
    }

    /// Range expansion covers exactly the requested interval for random
    /// 16-bit ranges (the port/length fields).
    #[test]
    fn range_expansion_is_exact_16bit(a in any::<u16>(), b in any::<u16>(), probes in proptest::collection::vec(any::<u16>(), 200)) {
        let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
        let cells = range_to_ternary(lo, hi, 16);
        // Worst-case bound from the classic result.
        prop_assert!(cells.len() <= 30);
        for &p in &probes {
            let p = u32::from(p);
            let member = (lo..=hi).contains(&p);
            let hits = cells.iter().filter(|c| c.matches(p)).count();
            prop_assert_eq!(hits > 0, member, "p={} range=[{},{}]", p, lo, hi);
            prop_assert!(hits <= 1, "overlapping cells for {}", p);
        }
    }

    /// Compiling with a gate never *adds* drops relative to gate zero.
    #[test]
    fn gates_only_remove_entries(
        train in proptest::collection::vec((arb_fields(), any::<bool>()), 30..100),
    ) {
        let x: Vec<Vec<f64>> = train.iter().map(|(v, _)| feature_row(v)).collect();
        let y: Vec<usize> = train.iter().map(|(_, l)| usize::from(*l)).collect();
        let names: Vec<String> = FIELD_ORDER.iter().map(|f| f.name().to_string()).collect();
        let mut data = Dataset::new(x, y, names);
        data.n_classes = 2;
        let tree = DecisionTree::fit(&data, TreeConfig::shallow(4));
        let mut prev = usize::MAX;
        for gate in [0.0, 0.5, 0.9, 0.99, 0.999] {
            let (program, _) = compile_tree(
                &tree,
                CompileConfig { drop_class: 1, confidence_gate: gate, min_support: 0 },
                "gate",
            );
            prop_assert!(program.n_entries() <= prev, "entries grew with the gate");
            prev = program.n_entries();
        }
    }
}
