//! # CampusLab
//!
//! A full-system reproduction of *"An Effort to Democratize Networking
//! Research in the Era of AI/ML"* (Gupta, Mac-Stoker & Willinger,
//! HotNets'19): a campus network treated simultaneously as a **data
//! source** — privacy-preserving collection into an indexed data store —
//! and as a **testbed** — where AI/ML-based network-automation tools are
//! developed, distilled, compiled into the data plane, road-tested, and
//! explained to operators.
//!
//! The platform decomposes into substrate crates, re-exported here:
//!
//! | module | role |
//! |---|---|
//! | [`wire`] | packet wire formats (Ethernet/IP/UDP/TCP/ICMP/DNS) |
//! | [`netsim`] | deterministic packet-level campus network simulator |
//! | [`traffic`] | labeled workload + attack generation |
//! | [`capture`] | border monitoring: rings, flows, metadata, pcap |
//! | [`datastore`] | the indexed campus data store |
//! | [`privacy`] | prefix-preserving anonymization + governance policy |
//! | [`features`] | packet/flow/window feature engineering |
//! | [`ml`] | from-scratch models: tree, forest, logistic, MLP |
//! | [`xai`] | model extraction (distillation) + evidence lists |
//! | [`dataplane`] | P4-style pipeline, tree→TCAM compiler, Tofino-like resources |
//! | [`control`] | Figure 2's fast control loop and slow development loop |
//! | [`resolver`] | ResolverLab: a fault-tolerant caching DNS resolver service |
//! | [`testbed`] | scenarios, road tests, cross-campus protocol, trust reports |
//! | [`plaza`] | TenantPlaza: multi-tenant experimentation-as-a-service |
//!
//! ## The platform in one pass
//!
//! [`Platform`] wires the whole Figure-1/Figure-2 story together:
//!
//! ```
//! use campuslab::{Platform, testbed::Scenario};
//!
//! let platform = Platform::new(Scenario::small());
//! // Part 1: the campus as data source.
//! let data = platform.collect();
//! assert!(data.packets.len() > 100);
//! // Part 2: develop on the store, then road-test on the live campus.
//! let dev = platform.develop(&data);
//! assert!(dev.fidelity > 0.8);            // student closely approximates teacher
//! assert!(dev.program.n_entries() > 0);   // and compiles to the switch
//! let outcome = platform.road_test_switch(&dev);
//! assert!(outcome.suppression() > 0.5);
//! ```

pub use campuslab_capture as capture;
pub use campuslab_control as control;
pub use campuslab_dataplane as dataplane;
pub use campuslab_datastore as datastore;
pub use campuslab_features as features;
pub use campuslab_ml as ml;
pub use campuslab_netsim as netsim;
pub use campuslab_obs as obs;
pub use campuslab_plaza as plaza;
pub use campuslab_privacy as privacy;
pub use campuslab_resolver as resolver;
pub use campuslab_testbed as testbed;
pub use campuslab_traffic as traffic;
pub use campuslab_wire as wire;
pub use campuslab_xai as xai;

use campuslab_control::{run_development_loop, DevLoopConfig, DevLoopResult};
use campuslab_datastore::DataStore;
use campuslab_features::{window_dataset, LabelMode, WindowConfig};
use campuslab_ml::{DecisionTree, TreeConfig};
use campuslab_testbed::{
    build_store, collect, road_test, CollectedData, RoadTestConfig, RoadTestOutcome, Scenario,
};

/// The one-stop platform handle: a scenario plus the configuration of the
/// development loop that will run over its collected data.
pub struct Platform {
    pub scenario: Scenario,
    pub dev_config: DevLoopConfig,
}

impl Platform {
    /// A platform around a scenario with default development settings.
    pub fn new(scenario: Scenario) -> Self {
        Platform { scenario, dev_config: DevLoopConfig::default() }
    }

    /// Part 1 (Figure 1, left): run the campus, capture at the border,
    /// return every record the monitoring plane produced.
    pub fn collect(&self) -> CollectedData {
        collect(&self.scenario)
    }

    /// Land collected data in a fresh indexed data store.
    pub fn store(&self, data: &CollectedData) -> DataStore {
        build_store(data)
    }

    /// Figure 2's slow loop: black box → distilled tree → compiled program.
    pub fn develop(&self, data: &CollectedData) -> DevLoopResult {
        run_development_loop(&data.packets, &self.dev_config)
    }

    /// Train the control-plane window model on the collected data
    /// (used by the Controller/Cloud placements).
    pub fn train_window_model(&self, data: &CollectedData) -> DecisionTree {
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        DecisionTree::fit(&wd, TreeConfig::shallow(4))
    }

    /// Part 2 (Figure 1, right): road-test the developed model with the
    /// compiled rules pre-installed in the border switch.
    pub fn road_test_switch(&self, dev: &DevLoopResult) -> RoadTestOutcome {
        road_test(
            &self.scenario,
            dev.program.clone(),
            None,
            RoadTestConfig { placement: control::Placement::Switch, ..Default::default() },
        )
    }

    /// Road-test with the detector at the given placement tier; needs the
    /// window model trained from collected data.
    pub fn road_test_at(
        &self,
        dev: &DevLoopResult,
        window_model: DecisionTree,
        placement: control::Placement,
    ) -> RoadTestOutcome {
        road_test(
            &self.scenario,
            dev.program.clone(),
            Some(Box::new(window_model)),
            RoadTestConfig { placement, ..Default::default() },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_end_to_end() {
        let platform = Platform::new(Scenario::small());
        let data = platform.collect();
        let ds = platform.store(&data);
        assert_eq!(ds.packet_count(), data.packets.len());
        let dev = platform.develop(&data);
        assert!(dev.fidelity > 0.8);
        let outcome = platform.road_test_switch(&dev);
        assert!(outcome.suppression() > 0.5, "suppression {}", outcome.suppression());
    }

    #[test]
    fn placements_are_available_from_the_facade() {
        let platform = Platform::new(Scenario::small());
        let data = platform.collect();
        let dev = platform.develop(&data);
        let wm = platform.train_window_model(&data);
        let outcome = platform.road_test_at(&dev, wm, control::Placement::Controller);
        assert!(outcome.time_to_mitigation.is_some());
    }
}
