//! `campuslab-suite` is the workspace-root package hosting the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! The library surface lives in the [`campuslab`] facade crate.
pub use campuslab;
