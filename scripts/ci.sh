#!/bin/sh
# The checks a change must pass before merging. Run from the repo root.
set -eu

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
