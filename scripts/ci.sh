#!/bin/sh
# The checks a change must pass before merging. Run from the repo root.
set -eu

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# The chaos layer's determinism and windowing invariants are load-bearing
# for every robustness claim: gate on them explicitly.
cargo test -q -p campuslab-netsim --test chaos

# E14 smoke run: the chaos sweep must complete, stay deterministic under
# the parallel runner, and keep the calm run as an upper bound.
out=$(cargo run -q --release -p campuslab-bench --bin e14_chaos)
echo "$out"
echo "$out" | grep -q "parallel runner byte-identical to sequential: yes"
echo "$out" | grep -q "calm bounds mayhem (suppression and delivery): yes"
