#!/bin/sh
# The checks a change must pass before merging. Run from the repo root.
set -eu

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# A property failure writes its case index into a proptest-regressions/
# file; that reproducer must be committed alongside the fix. An untracked
# or modified regression file here means a failure was observed but its
# recording never made it into the tree.
regr_dirty=$( (git ls-files --others --exclude-standard -- '*proptest-regressions*'; \
               git diff --name-only -- '*proptest-regressions*') | sort -u)
if [ -n "$regr_dirty" ]; then
    echo "error: proptest recorded failures that are not committed:" >&2
    echo "$regr_dirty" >&2
    echo "fix the property (or commit the reproducer) before merging" >&2
    exit 1
fi

# Line-coverage floor, gated on cargo-llvm-cov being installed (the tool
# is optional tooling, not a build dependency; CI images that carry it
# enforce the floor, bare containers skip with a notice).
if cargo llvm-cov --version >/dev/null 2>&1; then
    cargo llvm-cov --workspace --summary-only --fail-under-lines 67
else
    echo "notice: cargo-llvm-cov not installed; skipping coverage floor" >&2
fi

# Never-panic fuzz smoke: every untrusted-input parser (wire dns/ipv4/
# ipv6/tcp/udp/icmp/arp/ethernet and capture pcap) takes 10k
# deterministic cases per target — structured corpora plus corruption
# and truncation operators — with zero panics and stable
# parse->encode->parse round trips. The vendored proptest shim is
# seeded and shrink-free, so a failure here reproduces exactly.
CAMPUSLAB_FUZZ_CASES=10000 cargo test -q --release -p campuslab-wire --test fuzz_wire
CAMPUSLAB_FUZZ_CASES=10000 cargo test -q --release -p campuslab-capture --test fuzz_pcap

# The chaos layer's determinism and windowing invariants are load-bearing
# for every robustness claim: gate on them explicitly.
cargo test -q -p campuslab-netsim --test chaos

# The datastore's differential and determinism suites are load-bearing
# for every E3 search claim: indexed results must equal the scan on
# arbitrary inputs, and worker count must never change the bytes.
cargo test -q -p campuslab-datastore --test differential --test par_ingest

# E14 smoke run: the chaos sweep must complete, stay deterministic under
# the parallel runner, and keep the calm run as an upper bound.
out=$(cargo run -q --release -p campuslab-bench --bin e14_chaos)
echo "$out"
echo "$out" | grep -q "parallel runner byte-identical to sequential: yes"
echo "$out" | grep -q "calm bounds mayhem (suppression and delivery): yes"

# E15 gates: the guarded-deployment bundle must replay byte-for-byte
# against its committed golden under both the sequential and the parallel
# runner, the guarded run itself must stay bit-deterministic, and a smoke
# run must show the full story: shadow veto, canary rollback on
# circuit-broken give-ups, and bounded SLO recovery on known-good.
cargo test -q -p campuslab-bench --test golden_replay e15_rollout_guard_replays_byte_for_byte
cargo test -q -p campuslab-testbed --lib rollout::tests::guarded_run_is_deterministic
out=$(cargo run -q --release -p campuslab-bench --bin e15_rollout_guard)
echo "$out"
echo "$out" | grep -q "shadow vetoed the wildcard before any enforcement: yes"
echo "$out" | grep -q "canary rolled back on circuit-broken install give-ups: yes"
echo "$out" | grep -q "known-good restored SLOs within 2s of sim-time: yes"

# E16 gates: the resolver water-torture bundle must replay byte-for-byte
# against its committed golden (the ShardSim gates below replay it again
# under 1 and 4 shards), the resolver scenario run must stay
# bit-deterministic, and a smoke run must show the full story: the flood
# shed by rate limiting, typed degradation instead of death, cache-hit
# collapse and recovery, abandoned clients surfacing as rollout-guard
# rollback evidence, and the border defense mitigating the resolver.
cargo test -q -p campuslab-bench --test golden_replay e16_resolver_replays_byte_for_byte
cargo test -q -p campuslab-testbed --lib resolverlab::tests::resolver_run_is_deterministic
out=$(cargo run -q --release -p campuslab-bench --bin e16_resolver)
echo "$out"
echo "$out" | grep -q "per-client rate limiting shed the flood bulk: yes"
echo "$out" | grep -q "starved resolver degraded (stale/ServFail), never died: yes"
echo "$out" | grep -q "cache-hit rate collapsed under flood and recovered after: yes"
echo "$out" | grep -q "abandoned clients became rollout-guard rollback evidence: yes"
echo "$out" | grep -q "controller detected the flood and mitigated the resolver: yes"

# E17 gates: the drift bundle must replay byte-for-byte against its
# committed golden (the ShardSim gates below replay it again under 1 and
# 4 shards; the extra line here covers 8), the drift road test must stay
# bit-deterministic, and a smoke run must show the full always-on story:
# a drift episode opened by the rotation, a drift-triggered retrain
# committed through the guard's ladder, mitigation with SLOs green — and
# the TTM sanity law: the defended time-to-mitigation strictly below the
# undefended (censored-at-run-end) one.
cargo test -q -p campuslab-bench --test golden_replay e17_driftpilot_replays_byte_for_byte
CAMPUSLAB_SHARDS=8 cargo test -q -p campuslab-bench --test golden_replay e17_driftpilot_replays_byte_for_byte
cargo test -q -p campuslab-testbed --lib driftpilot::tests::drift_run_is_deterministic
out=$(cargo run -q --release -p campuslab-bench --bin e17_driftpilot)
echo "$out"
echo "$out" | grep -q "pilot opened a drift episode after the port rotation: yes"
echo "$out" | grep -q "a retrained candidate was committed and the deployed lineage moved: yes"
echo "$out" | grep -q "drift was mitigated with SLOs green before the run ended: yes"
echo "$out" | grep -q "defended TTM beats the undefended (censored) TTM: yes"
echo "$out" | grep -q "the defended campus passed fewer attack packets: yes"

# E18 gates: the multi-tenant plaza bundle must replay byte-for-byte
# against its committed golden (the ShardSim gates below replay it again
# under 1 and 4 shards; the extra line here covers 8), the
# tenant-isolation differential suite must prove solo == co-scheduled
# bytes under the interleaved, parallel, 4-shard and 8-shard executors,
# the admission arbiter must hold its property suite against the shadow
# model, and a smoke run must show the full story: typed admission, a
# private shadow veto, FIFO queue drain, and inline solo-vs-co checks.
cargo test -q -p campuslab-bench --test golden_replay e18_tenant_plaza_replays_byte_for_byte
CAMPUSLAB_SHARDS=8 cargo test -q -p campuslab-bench --test golden_replay e18_tenant_plaza_replays_byte_for_byte
cargo test -q --release -p campuslab-plaza --test isolation
CAMPUSLAB_SHARDS=4 cargo test -q --release -p campuslab-plaza --test isolation
CAMPUSLAB_SHARDS=8 cargo test -q --release -p campuslab-plaza --test isolation
cargo test -q -p campuslab-dataplane --test admission
out=$(cargo run -q --release -p campuslab-bench --bin e18_tenant_plaza)
echo "$out"
echo "$out" | grep -q "warden's private guard vetoed the wildcard candidate in shadow: yes"
echo "$out" | grep -q "warden's bytes are identical solo vs co-scheduled: yes"
echo "$out" | grep -q "beacon's capture + datastore view ignores the chaos neighbor: yes"
echo "$out" | grep -q "drumlin was queued FIFO, drained on release, and still matches its solo bytes: yes"
echo "$out" | grep -q "monster got a typed rejection and never touched the campus: yes"

# E19 gates: the PhoenixRun bundle must replay byte-for-byte against its
# committed golden (the ShardSim gates below replay it again under 1 and
# 4 shards; the extra line here covers 8), the kill-anywhere contract
# must hold in-crate (every checkpoint boundary resumes byte-identically
# and the windowed session equals the one-shot road test), the random
# scenario x random kill point differential must pass, the WAL must
# recover a torn tail to the last good prefix with typed errors, and a
# smoke run must show the full story: a clean kill-point sweep, typed
# decoder verdicts on every crash-shaped corruption, and lossless
# sealed-segment recovery.
cargo test -q -p campuslab-bench --test golden_replay e19_phoenix_replays_byte_for_byte
CAMPUSLAB_SHARDS=8 cargo test -q -p campuslab-bench --test golden_replay e19_phoenix_replays_byte_for_byte
cargo test -q --release -p campuslab-testbed --lib phoenix::tests::kill_at_every_boundary_resumes_byte_identically
cargo test -q --release -p campuslab-testbed --lib phoenix::tests::windowed_session_equals_drift_road_test
cargo test -q --release -p campuslab-testbed --test phoenix_diff
cargo test -q --release -p campuslab-datastore --lib wal::
out=$(cargo run -q --release -p campuslab-bench --bin e19_phoenix)
echo "$out"
echo "$out" | grep -q "every kill point resumed byte-identically: yes"
echo "$out" | grep -q "corrupt checkpoints all map to typed errors: yes"
echo "$out" | grep -q "torn WAL tail recovered to the last good prefix, sealed frames intact: yes"

# The never-panic fuzz discipline extends to the crash-recovery decoders:
# the checkpoint envelope (truncation, bit flips, version skew, byte
# soup) and the WAL tail scanner (every cut point, deterministic
# single-bit flips) must reject corruption with typed errors only.
CAMPUSLAB_FUZZ_CASES=2000 cargo test -q --release -p campuslab-testbed --lib phoenix::tests::envelope_decoder_never_panics_on_corrupt_input
CAMPUSLAB_FUZZ_CASES=10000 cargo test -q --release -p campuslab-datastore --lib wal::tests::tail_scanner_never_panics_on_corrupt_images

# Phoenix overhead gate: the committed bench snapshot must exist, and a
# fresh CRITERION_FAST run must keep the drift run with one mid-campaign
# checkpoint *freeze* within 5% of the checkpoint-free baseline — the
# freeze is what the running simulation pays; the envelope encode is off
# the hot path and tracked separately as checkpoint_encode_9s.
# Seconds-scale runs on shared boxes drift a few percent, so like the
# simulator gate this retries up to three times: a clean box passes
# first try, a real regression fails all attempts.
test -f crates/bench/BENCH_phoenix.json
bench_json=$(mktemp)
phoenix_ok=0
for attempt in 1 2 3; do
    BENCH_JSON="$bench_json" CRITERION_FAST=1 cargo bench -q -p campuslab-bench --bench phoenix >/dev/null
    if python3 - "$bench_json" <<'EOF'
import json, sys
results = {r["name"]: r["ns_per_iter"] for r in json.load(open(sys.argv[1]))}
plain = results["phoenix/drift_run_plain"]
ckpt = results["phoenix/drift_run_checkpointed"]
overhead = ckpt / plain - 1.0
print(f"checkpoint overhead: {overhead:+.1%} (plain {plain:.0f} ns, checkpointed {ckpt:.0f} ns)")
if overhead > 0.05:
    sys.exit("error: mid-run checkpoint overhead exceeds 5%")
EOF
    then phoenix_ok=1; break; fi
    echo "notice: phoenix overhead gate attempt $attempt failed; retrying" >&2
done
rm -f "$bench_json"
if [ "$phoenix_ok" -ne 1 ]; then
    echo "error: phoenix overhead gate failed on all attempts" >&2
    exit 1
fi

# Plaza overhead gate: the committed bench snapshot must exist, and a
# fresh CRITERION_FAST run of the plaza group must keep the amortized
# per-tenant cost of the 64-tenant fleet within 1.5x of the solo
# baseline (the scheduler amortizes fixed costs, so the steady-state
# ratio is ~1.0; 1.5x leaves noise headroom while catching any
# per-neighbor coupling that would make fleets super-linear).
test -f crates/bench/BENCH_plaza.json
bench_json=$(mktemp)
BENCH_JSON="$bench_json" CRITERION_FAST=1 cargo bench -q -p campuslab-bench --bench plaza >/dev/null
python3 - "$bench_json" <<'EOF'
import json, sys
results = {r["name"]: r["ns_per_iter"] for r in json.load(open(sys.argv[1]))}
solo = results["plaza/run_tenants_1"]
fleet = results["plaza/run_tenants_64"]
ratio = (fleet / 64) / solo
print(f"plaza per-tenant: solo {solo:.0f} ns, 64-fleet {fleet / 64:.0f} ns/tenant ({ratio:.2f}x)")
if ratio > 1.5:
    sys.exit("error: 64-tenant plaza per-tenant overhead exceeds 1.5x the solo baseline")
EOF
rm -f "$bench_json"

# Simulator perf gates, from fresh CRITERION_FAST runs of the group.
# (a) Observatory overhead: the instrumented event loop must stay within
#     5% of the same run with the obs sink gated off (a real regression
#     means obs bumps grew beyond plain u64 adds).
# (b) ShardSim: the committed snapshot must exist, and the 8-shard engine
#     must beat the sequential loop on the campus second by a margin the
#     runner can actually deliver: 3x with >=8 cores, 2x with 4-7 cores
#     (the theoretical ceiling on exactly 4 -- possibly shared/throttled --
#     cores is ~4x before coordination overhead, so demanding 3x there
#     gates on machine capability, not regressions). A runner under 4
#     cores has no parallelism to harvest, so there the sharded run must
#     merely stay within 30% of sequential (pure coordination overhead).
# Shared CI boxes drift several percent in speed on a seconds scale —
# comparable to threshold (a) itself — so the gate retries the whole
# group up to three times and passes if any run clears both bars: a
# clean box passes first try, a noisy box within three, while a real
# regression fails all attempts.
test -f crates/bench/BENCH_netsim.json
bench_json=$(mktemp)
perf_ok=0
for attempt in 1 2 3; do
    BENCH_JSON="$bench_json" CRITERION_FAST=1 cargo bench -q -p campuslab-bench --bench simulator >/dev/null
    if python3 - "$bench_json" <<'EOF'
import json, os, sys
results = {r["name"]: r["ns_per_iter"] for r in json.load(open(sys.argv[1]))}
on = results["simulator/run_1s_campus_second"]
off = results["simulator/run_1s_campus_second_obs_off"]
overhead = on / off - 1.0
print(f"obs overhead: {overhead:+.1%} (on {on:.0f} ns, off {off:.0f} ns)")
if overhead > 0.05:
    sys.exit("error: Observatory instrumentation overhead exceeds 5%")
shard = results["simulator/run_1s_campus_second_sharded"]
cores = os.cpu_count() or 1
ratio = on / shard
print(f"sharded campus second: sequential {on:.0f} ns, 8-shard {shard:.0f} ns "
      f"({ratio:.2f}x, {cores} cores)")
need = 3.0 if cores >= 8 else 2.0 if cores >= 4 else None
if need is not None:
    if ratio < need:
        sys.exit(f"error: sharded engine {ratio:.2f}x < required {need:.1f}x on {cores} cores")
elif shard > on * 1.30:
    sys.exit("error: sharded engine regressed past the low-core overhead floor")
EOF
    then perf_ok=1; break; fi
    echo "notice: simulator perf gate attempt $attempt failed; retrying" >&2
done
rm -f "$bench_json"
if [ "$perf_ok" -ne 1 ]; then
    echo "error: simulator perf gates failed on all attempts" >&2
    exit 1
fi

# E3 search gate: the committed bench snapshot must exist (it is the
# artifact EXPERIMENTS.md cites), and a fresh run of the datastore group
# must keep the segment index at least 5x faster than the naive scan on
# the selective host query. CRITERION_FAST keeps the window small; the
# steady-state ratio is ~100x, so 5x leaves ample headroom for noise
# while still catching an index that silently degrades to a scan.
test -f crates/bench/BENCH_datastore.json
bench_json=$(mktemp)
BENCH_JSON="$bench_json" CRITERION_FAST=1 cargo bench -q -p campuslab-bench --bench datastore >/dev/null
python3 - "$bench_json" <<'EOF'
import json, sys
results = {r["name"]: r["ns_per_iter"] for r in json.load(open(sys.argv[1]))}
indexed = results["datastore/indexed_host_query_200k"]
scan = results["datastore/scan_host_query_200k"]
ratio = scan / indexed
print(f"datastore host query: indexed {indexed:.0f} ns, scan {scan:.0f} ns ({ratio:.0f}x)")
if ratio < 5.0:
    sys.exit("error: segment index no longer beats the full scan by 5x")
EOF
rm -f "$bench_json"

# ShardSim determinism gate: the golden experiment bundles must replay
# byte-for-byte under the sharded engine — 1 shard and 4 shards, and for
# the 4-shard case both the inline executor (CAMPUSLAB_JOBS=1) and a
# multi-threaded worker pool — exactly as they do sequentially. The
# differential property suite rides along.
CAMPUSLAB_SHARDS=1 cargo test -q -p campuslab-bench --test golden_replay
CAMPUSLAB_SHARDS=4 CAMPUSLAB_JOBS=1 cargo test -q -p campuslab-bench --test golden_replay
CAMPUSLAB_SHARDS=4 CAMPUSLAB_JOBS=4 cargo test -q -p campuslab-bench --test golden_replay
cargo test -q -p campuslab-netsim --test proptest_shard --test shard_workers
